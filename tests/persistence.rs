//! Integration tests for the `accfg-store` persistence layer: compiled
//! modules and learned EWMA cost state round-trip through both store
//! backends byte-faithfully (on arbitrary cache contents, via proptest),
//! a corrupt store tail is dropped — not fatal — with everything before
//! it intact, and the typed layers compose with the log store exactly as
//! the serving runtime uses them.

use configuration_wall::core::pipeline::OptLevel;
use configuration_wall::runtime::{
    build_module, encode_module, load_costs, load_modules, save_costs, save_modules, CacheKey,
    CostRow, CostSnapshotEntry, ModuleCache, COST_ROWS, COST_ROW_AGNOSTIC, WARMTH_BUCKETS,
};
use configuration_wall::store::{LogStore, MemStore};
use configuration_wall::targets::AcceleratorDescriptor;
use configuration_wall::workloads::mixed_serving_classes;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

/// A fresh temp-file path for one test's store (removed up front so a
/// previous run's file cannot leak state in).
fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("accfg_persistence_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{name}_{}.store", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn descriptor_for(name: &str) -> AcceleratorDescriptor {
    match name {
        "gemmini" => AcceleratorDescriptor::gemmini(),
        "opengemm" => AcceleratorDescriptor::opengemm(),
        other => panic!("unknown platform {other}"),
    }
}

/// Builds the modules for the picked (class, opt) pairs and restores
/// them into a fresh cache — the in-memory state a cold serve ends with.
fn cache_from_picks(picks: &[(usize, u8)]) -> ModuleCache {
    let classes = mixed_serving_classes();
    let opts = [
        OptLevel::Base,
        OptLevel::Dedup,
        OptLevel::Overlap,
        OptLevel::All,
    ];
    let mut cache = ModuleCache::new();
    for &(class, opt) in picks {
        let class = &classes[class % classes.len()];
        let desc = descriptor_for(&class.accelerator);
        let module = build_module(&desc, class.spec, opts[opt as usize % opts.len()])
            .expect("module builds");
        cache.restore(module);
    }
    cache
}

/// Canonical byte form of a cache's contents, for equality across
/// snapshot orderings.
fn canonical(cache: &ModuleCache) -> Vec<Vec<u8>> {
    let mut encoded: Vec<Vec<u8>> = cache.snapshot().iter().map(|m| encode_module(m)).collect();
    encoded.sort();
    encoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any module-cache contents survive save → load → restore into a
    /// fresh cache with byte-identical compiled artifacts (key, layout,
    /// program, plan, cost model — everything the dispatcher consumes).
    #[test]
    fn module_cache_round_trips_through_a_store(
        picks in prop::collection::vec((0usize..6, 0u8..4), 1..8),
    ) {
        let original = cache_from_picks(&picks);
        let mut store = MemStore::new();
        let saved = save_modules(&mut store, &original).expect("save modules");
        prop_assert_eq!(saved as usize, original.len());

        let pool = [
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ];
        let bases: Vec<&AcceleratorDescriptor> = pool.iter().collect();
        let mut restored = ModuleCache::new();
        for module in load_modules(&store, &bases).expect("load modules") {
            prop_assert!(restored.restore(module));
        }
        prop_assert_eq!(canonical(&original), canonical(&restored));
    }

    /// Arbitrary learned cost rows — the agnostic row plus every
    /// frequency-keyed row — survive save → reopen → load through the
    /// on-disk log store, raw fixed-point EWMA words included.
    #[test]
    fn cost_rows_round_trip_through_a_log_store(
        rows in prop::collection::vec(
            (
                0usize..6,
                0usize..2,
                prop::collection::vec(
                    -1i64..5_000_000,
                    (COST_ROWS * WARMTH_BUCKETS)..(COST_ROWS * WARMTH_BUCKETS + 1),
                ),
            ),
            1..12,
        ),
        case in 0u32..u32::MAX,
    ) {
        let classes = mixed_serving_classes();
        let platforms = ["gemmini", "opengemm"];
        // later duplicates of a (platform, key) pair overwrite earlier
        // ones in the store, so collapse them the same way up front
        let mut expected: HashMap<(String, CacheKey), CostSnapshotEntry> = HashMap::new();
        for (class, platform, words) in &rows {
            let mut buckets: CostRow = [[0; WARMTH_BUCKETS]; COST_ROWS];
            for (row, chunk) in buckets.iter_mut().zip(words.chunks(WARMTH_BUCKETS)) {
                row.copy_from_slice(chunk);
            }
            let (class, platform) = (*class, *platform);
            let class = &classes[class];
            let key = CacheKey {
                accelerator: class.accelerator.clone(),
                spec: class.spec,
                opt: OptLevel::All,
            };
            let platform = platforms[platform].to_string();
            expected.insert(
                (platform.clone(), key.clone()),
                (platform, key, buckets),
            );
        }
        let entries: Vec<CostSnapshotEntry> = expected.into_values().collect();

        let path = temp_store(&format!("cost_rows_{case}"));
        {
            let mut store = LogStore::open(&path).expect("open store");
            save_costs(&mut store, &entries).expect("save costs");
        }
        let reopened = LogStore::open(&path).expect("reopen store");
        prop_assert!(reopened.recovery().is_none());
        let loaded = load_costs(&reopened).expect("load costs");

        let sort_key = |(p, k, _): &CostSnapshotEntry| (p.clone(), format!("{k:?}"));
        let mut want = entries;
        want.sort_by_key(&sort_key);
        let mut got = loaded;
        got.sort_by_key(&sort_key);
        prop_assert_eq!(want, got);
        let _ = std::fs::remove_file(&path);
    }
}

/// A corrupt tail (a torn final append) is dropped with a recovery
/// report, every record before it is intact, the file is truncated back
/// to the valid prefix, and the store keeps serving appends afterwards.
#[test]
fn truncated_store_tail_is_dropped_not_fatal() {
    let path = temp_store("torn_tail");
    let cache = cache_from_picks(&[(0, 3), (3, 3)]);
    let spare = cache_from_picks(&[(5, 3)]);
    {
        let mut store = LogStore::open(&path).expect("open store");
        assert_eq!(save_modules(&mut store, &cache).expect("save"), 2);
    }
    let valid_len = std::fs::metadata(&path).expect("stat").len();

    // a torn append: header bytes that promise a payload the crash never
    // wrote (any of truncated header / truncated payload / bad checksum
    // takes this same recovery path — the store unit tests pin each)
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open for corruption");
    file.write_all(b"torn-append").expect("append garbage");
    drop(file);

    let mut store = LogStore::open(&path).expect("recovering open");
    let recovery = store.recovery().expect("tail corruption reported");
    assert_eq!(recovery.offset, valid_len);
    assert_eq!(std::fs::metadata(&path).expect("stat").len(), valid_len);

    // everything before the tear survived…
    let pool = [
        AcceleratorDescriptor::gemmini(),
        AcceleratorDescriptor::opengemm(),
    ];
    let bases: Vec<&AcceleratorDescriptor> = pool.iter().collect();
    assert_eq!(load_modules(&store, &bases).expect("load").len(), 2);

    // …and the truncated store accepts new appends that persist cleanly
    assert_eq!(save_modules(&mut store, &spare).expect("save more"), 1);
    drop(store);
    let clean = LogStore::open(&path).expect("clean reopen");
    assert!(clean.recovery().is_none());
    assert_eq!(load_modules(&clean, &bases).expect("load").len(), 3);
    let _ = std::fs::remove_file(&path);
}

/// The cost codec's fixed-point words are platform-name keyed, so a row
/// learned on one pool seeds only pools that carry a platform of that
/// name — unknown names are skipped, not errors (a fleet store may span
/// differently provisioned pools).
#[test]
fn unseen_bucket_sentinels_survive_the_round_trip() {
    let classes = mixed_serving_classes();
    let key = CacheKey {
        accelerator: classes[0].accelerator.clone(),
        spec: classes[0].spec,
        opt: OptLevel::All,
    };
    // agnostic bucket 0 and one cold-mode bucket observed, the rest
    // unseen (-1 sentinel): exactly what a steady-state repeat-only
    // stream learns
    let mut buckets: CostRow = [[-1i64; WARMTH_BUCKETS]; COST_ROWS];
    buckets[COST_ROW_AGNOSTIC][0] = 9_216; // 36 cycles in 8-bit fixed point
    buckets[COST_ROW_AGNOSTIC + 1][0] = 9_216;
    let entries = vec![("gemmini".to_string(), key, buckets)];
    let mut store = MemStore::new();
    save_costs(&mut store, &entries).expect("save");
    let loaded = load_costs(&store).expect("load");
    assert_eq!(loaded, entries);
}

/// A store file written before frequency-keyed refinement (values carry
/// only the agnostic warmth buckets) still warm-starts a new process:
/// the short value decodes with every keyed row filled by unseen
/// sentinels, and the next flush upgrades it to the keyed format in
/// place.
#[test]
fn old_format_cost_store_files_keep_loading() {
    let classes = mixed_serving_classes();
    let key = CacheKey {
        accelerator: classes[0].accelerator.clone(),
        spec: classes[0].spec,
        opt: OptLevel::All,
    };
    let agnostic: [i64; WARMTH_BUCKETS] = std::array::from_fn(|b| (b as i64 + 1) * 256);
    // hand-write the pre-keyed-refinement value: eight raw i64 words
    let value: Vec<u8> = agnostic.iter().flat_map(|w| w.to_le_bytes()).collect();
    let store_key = configuration_wall::runtime::persist::cost_key_bytes("gemmini", &key);

    let path = temp_store("old_format_cost");
    {
        let mut store = LogStore::open(&path).expect("open store");
        use configuration_wall::store::KeyValueStore;
        store.put(&store_key, &value).expect("put old-format row");
    }
    let reopened = LogStore::open(&path).expect("reopen store");
    let loaded = load_costs(&reopened).expect("old format loads");
    assert_eq!(loaded.len(), 1);
    let (platform, loaded_key, buckets) = &loaded[0];
    assert_eq!(platform, "gemmini");
    assert_eq!(loaded_key, &key);
    assert_eq!(buckets[COST_ROW_AGNOSTIC], agnostic);
    for row in &buckets[COST_ROW_AGNOSTIC + 1..] {
        assert_eq!(row, &[-1i64; WARMTH_BUCKETS]);
    }
    drop(reopened);

    // flushing the loaded entry upgrades the value to the keyed format
    {
        let mut store = LogStore::open(&path).expect("reopen to upgrade");
        save_costs(&mut store, &loaded).expect("save upgraded");
    }
    let upgraded = LogStore::open(&path).expect("reopen upgraded");
    assert!(upgraded.recovery().is_none());
    assert_eq!(load_costs(&upgraded).expect("load upgraded"), loaded);
    let _ = std::fs::remove_file(&path);
}
