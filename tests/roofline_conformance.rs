//! Measured results must obey the roofline model — the cross-validation the
//! paper performs in Section 6.2.1 (Figure 12), as executable assertions.

use accfg_bench::{run_gemmini, run_opengemm, GemminiFlavor};
use configuration_wall::core::pipeline::OptLevel;
use configuration_wall::roofline::ConfigRoofline;

const OPENGEMM_PEAK: f64 = 1024.0;
const GEMMINI_PEAK: f64 = 512.0;

#[test]
fn measured_performance_never_exceeds_peak() {
    for size in [16, 64] {
        for level in OptLevel::ALL_LEVELS {
            let m = run_opengemm(size, level);
            assert!(
                m.perf() < OPENGEMM_PEAK,
                "size={size} level={level:?}: {} !< peak",
                m.perf()
            );
        }
    }
    for flavor in [GemminiFlavor::CBaseline, GemminiFlavor::Accfg] {
        let m = run_gemmini(64, flavor);
        assert!(m.perf() < GEMMINI_PEAK);
        assert!(m.attainable_sequential(GEMMINI_PEAK) < GEMMINI_PEAK);
    }
}

#[test]
fn measured_performance_respects_effective_roofline() {
    // Equation 3 with the *measured* effective bandwidth is an upper bound
    // on what a serial schedule can achieve; measured performance includes
    // launch overhead and loop drains, so it must sit at or below it.
    for size in [16, 32, 64] {
        let m = run_opengemm(size, OptLevel::Base);
        let roofline = ConfigRoofline {
            peak: OPENGEMM_PEAK,
            config_bandwidth: m.bw_eff(),
        };
        let bound = roofline.attainable_sequential(m.i_oc());
        assert!(
            m.perf() <= bound * 1.0001,
            "size={size}: measured {} exceeds Eq.3 bound {bound}",
            m.perf()
        );
    }
}

#[test]
fn dedup_raises_operation_intensity() {
    // Section 4.7: redundant setup elimination moves the point to the right
    for size in [32, 64, 128] {
        let base = run_opengemm(size, OptLevel::Base);
        let dedup = run_opengemm(size, OptLevel::Dedup);
        assert!(
            dedup.i_oc() > base.i_oc() * 1.2,
            "size={size}: dedup I_OC {} not clearly above base {}",
            dedup.i_oc(),
            base.i_oc()
        );
        assert!(dedup.perf() > base.perf());
    }
}

#[test]
fn overlap_keeps_operation_intensity_roughly_constant() {
    // Section 4.7: overlap changes neither ops nor setup bytes — the point
    // moves (essentially) straight up. Rotation does add one full prologue
    // configuration per strip plus a speculative epilogue write, so at
    // small sizes I_OC dips slightly; the movement is still an order of
    // magnitude smaller than deduplication's rightward jump.
    for size in [32, 64, 128] {
        let base = run_opengemm(size, OptLevel::Base);
        let overlap = run_opengemm(size, OptLevel::Overlap);
        let dedup = run_opengemm(size, OptLevel::Dedup);
        let ratio = overlap.i_oc() / base.i_oc();
        assert!(
            (0.7..=1.15).contains(&ratio),
            "size={size}: overlap moved I_OC by {ratio}"
        );
        let dedup_move = (dedup.i_oc() / base.i_oc() - 1.0).abs();
        assert!(
            (ratio - 1.0).abs() < dedup_move / 2.0,
            "size={size}: overlap's I_OC movement should be small next to dedup's"
        );
        assert!(overlap.perf() > base.perf(), "size={size}");
    }
}

#[test]
fn all_combines_both_movements() {
    for size in [32, 64] {
        let base = run_opengemm(size, OptLevel::Base);
        let dedup = run_opengemm(size, OptLevel::Dedup);
        let overlap = run_opengemm(size, OptLevel::Overlap);
        let all = run_opengemm(size, OptLevel::All);
        // the paper's arrow 3: the biggest speedup comes from both
        assert!(
            all.perf() >= dedup.perf().max(overlap.perf()),
            "size={size}"
        );
        // and it inherits dedup's intensity gain
        assert!(all.i_oc() > base.i_oc() * 1.2, "size={size}");
    }
}

#[test]
fn sequential_bound_is_tight_for_gemmini_proxy() {
    // the Fig. 10 proxy equals Eq. 3 exactly by construction; sanity-check
    // the plumbing end to end
    let m = run_gemmini(64, GemminiFlavor::CBaseline);
    let roofline = ConfigRoofline {
        peak: GEMMINI_PEAK,
        config_bandwidth: m.bw_eff(),
    };
    let direct = roofline.attainable_sequential(m.i_oc());
    assert!((direct - m.attainable_sequential(GEMMINI_PEAK)).abs() < 1e-9);
}

#[test]
fn knee_point_brackets_the_opengemm_sweep() {
    // small sizes sit left of the effective knee (config bound), large ones
    // right of it (compute bound) — the wall exists and is crossed
    let small = run_opengemm(16, OptLevel::Base);
    let large = run_opengemm(256, OptLevel::Base);
    let roofline = ConfigRoofline {
        peak: OPENGEMM_PEAK,
        config_bandwidth: small.bw_eff(),
    };
    assert!(small.i_oc() < roofline.knee());
    assert!(large.i_oc() > roofline.knee() / 4.0);
    assert!(large.perf() / OPENGEMM_PEAK > 0.4);
    assert!(small.perf() / OPENGEMM_PEAK < 0.1);
}
