//! Property-based tests over the compiler stack (proptest).
//!
//! Random accfg programs are generated from a parameterized family covering
//! straight-line code, loops with mixed invariant/varying fields, branches,
//! and annotated/unannotated foreign calls. Invariants:
//!
//! 1. the optimization pipeline preserves the *launch trace* (the register
//!    file the accelerator observes at every launch) — the paper's
//!    correctness criterion;
//! 2. printed IR parses back to IR that prints identically (round-trip);
//! 3. every pipeline output still passes the verifier and the accfg
//!    discipline lint;
//! 4. deduplication never increases the number of configuration writes.

use configuration_wall::core::pipeline::{pipeline, OptLevel};
use configuration_wall::core::{interpret, verify_discipline, AccelFilter};
use configuration_wall::ir::{
    parse_module, print_module, verify, Effects, FuncBuilder, Module, Type,
};
use proptest::prelude::*;

/// One field written by a setup: the value's provenance decides whether the
/// passes may deduplicate or hoist it.
#[derive(Debug, Clone, Copy)]
enum FieldKind {
    /// A compile-time constant (foldable, hoistable, dedupable).
    Const(i8),
    /// A function argument (invariant, hoistable, dedupable).
    Arg(bool),
    /// Derived from the loop induction variable (must be rewritten per
    /// iteration; never hoistable).
    IvDerived(i8),
}

#[derive(Debug, Clone)]
struct LoopSegment {
    trip: i64,
    fields: Vec<(usize, FieldKind)>,
}

#[derive(Debug, Clone)]
enum Segment {
    /// A straight-line setup/launch/await cluster.
    Straight(Vec<(usize, FieldKind)>),
    /// A tiled loop of clusters.
    Loop(LoopSegment),
    /// A conditional cluster in both branches with different constants.
    Branchy { field: usize, t: i8, f: i8 },
    /// A foreign call; `annotated` means `#accfg.effects<none>`.
    Foreign { annotated: bool },
}

const FIELD_NAMES: [&str; 5] = ["addr", "size", "stride", "mode", "scale"];

fn field_kind() -> impl Strategy<Value = FieldKind> {
    prop_oneof![
        any::<i8>().prop_map(FieldKind::Const),
        any::<bool>().prop_map(FieldKind::Arg),
        any::<i8>().prop_map(FieldKind::IvDerived),
    ]
}

fn fields() -> impl Strategy<Value = Vec<(usize, FieldKind)>> {
    prop::collection::vec((0usize..FIELD_NAMES.len(), field_kind()), 1..4).prop_map(|mut v| {
        // one write per field name within a single setup
        v.sort_by_key(|(i, _)| *i);
        v.dedup_by_key(|(i, _)| *i);
        v
    })
}

fn segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        fields().prop_map(Segment::Straight),
        (1i64..5, fields()).prop_map(|(trip, fields)| Segment::Loop(LoopSegment { trip, fields })),
        (0usize..FIELD_NAMES.len(), any::<i8>(), any::<i8>())
            .prop_map(|(field, t, f)| Segment::Branchy { field, t, f }),
        any::<bool>().prop_map(|annotated| Segment::Foreign { annotated }),
    ]
}

fn program() -> impl Strategy<Value = Vec<Segment>> {
    prop::collection::vec(segment(), 1..6)
}

/// Materializes a generated program as accfg IR over `f(arg0, arg1, cond)`.
fn build(segments: &[Segment]) -> Module {
    let mut m = Module::new();
    let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64, Type::I64, Type::I1]);
    let field_value =
        |b: &mut FuncBuilder<'_>, kind: FieldKind, iv: Option<accfg_ir::ValueId>| match kind {
            FieldKind::Const(c) => b.const_index(i64::from(c)),
            FieldKind::Arg(second) => args[usize::from(second)],
            FieldKind::IvDerived(c) => match iv {
                Some(iv) => {
                    let k = b.const_index(i64::from(c));
                    b.muli(iv, k)
                }
                None => b.const_index(i64::from(c).wrapping_mul(3)),
            },
        };
    let emit_cluster =
        |b: &mut FuncBuilder<'_>, fs: &[(usize, FieldKind)], iv: Option<accfg_ir::ValueId>| {
            let resolved: Vec<(&str, accfg_ir::ValueId)> = fs
                .iter()
                .map(|&(i, kind)| (FIELD_NAMES[i], field_value(b, kind, iv)))
                .collect();
            let s = b.setup("acc", &resolved);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
        };
    for seg in segments {
        match seg {
            Segment::Straight(fs) => emit_cluster(&mut b, fs, None),
            Segment::Loop(l) => {
                let lb = b.const_index(0);
                let ub = b.const_index(l.trip);
                let one = b.const_index(1);
                b.build_for(lb, ub, one, vec![], |b, iv, _| {
                    emit_cluster(b, &l.fields, Some(iv));
                    vec![]
                });
            }
            Segment::Branchy { field, t, f } => {
                let tv = b.const_index(i64::from(*t));
                let fv = b.const_index(i64::from(*f));
                let chosen = b.build_if(args[2], |_| vec![tv], |_| vec![fv]);
                let resolved = vec![(FIELD_NAMES[*field], chosen[0])];
                let s = b.setup("acc", &resolved);
                let t = b.launch("acc", s);
                b.await_token("acc", t);
            }
            Segment::Foreign { annotated } => {
                let effects = annotated.then_some(Effects::None);
                b.opaque("foreign", vec![], vec![], effects);
            }
        }
    }
    b.ret(vec![]);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pipeline_preserves_launch_traces(segments in program(), a in -64i64..64, c in 0i64..2) {
        let module = build(&segments);
        let args = [a, a.wrapping_add(17), c];
        let reference = interpret(&module, "f", &args, 1_000_000).unwrap();
        for level in OptLevel::ALL_LEVELS {
            let mut m = build(&segments);
            pipeline(level, AccelFilter::All).run(&mut m).unwrap();
            verify(&m).unwrap();
            verify_discipline(&m).unwrap();
            let t = interpret(&m, "f", &args, 1_000_000).unwrap();
            prop_assert_eq!(&t.launches, &reference.launches, "level={:?}", level);
        }
    }

    #[test]
    fn dedup_never_increases_dynamic_writes(segments in program(), a in -64i64..64) {
        let args = [a, a ^ 5, 1];
        let mut base = build(&segments);
        pipeline(OptLevel::Base, AccelFilter::All).run(&mut base).unwrap();
        let base_trace = interpret(&base, "f", &args, 1_000_000).unwrap();

        let mut deduped = build(&segments);
        pipeline(OptLevel::Dedup, AccelFilter::All).run(&mut deduped).unwrap();
        let dedup_trace = interpret(&deduped, "f", &args, 1_000_000).unwrap();

        prop_assert!(dedup_trace.setup_writes <= base_trace.setup_writes);
    }

    #[test]
    fn printer_parser_round_trip(segments in program()) {
        let module = build(&segments);
        let printed = print_module(&module);
        let reparsed = parse_module(&printed).expect("printed IR parses");
        verify(&reparsed).expect("reparsed IR verifies");
        prop_assert_eq!(print_module(&reparsed), printed);
    }

    #[test]
    fn round_trip_survives_optimization(segments in program()) {
        let mut module = build(&segments);
        pipeline(OptLevel::All, AccelFilter::All).run(&mut module).unwrap();
        let printed = print_module(&module);
        let reparsed = parse_module(&printed).expect("optimized IR parses");
        prop_assert_eq!(print_module(&reparsed), printed);
    }
}
