//! Torn-tail fuzzing for `accfg-store`: a `LogStore` file truncated or
//! bit-flipped at an arbitrary offset must reopen without panicking and
//! recover exactly the longest valid prefix of its log.
//!
//! The model: each applied operation appends exactly one record (values
//! are made unique per op so the identical-value elision never kicks in),
//! and the file offset after each append is recorded. A corruption at
//! offset `c` therefore has a *known* set of surviving records — every
//! record wholly before `c` — and the recovered index must equal the
//! fold of exactly those operations. Reopening a recovered store must be
//! clean (the corrupt tail was truncated away) and yield the same index.
//!
//! This harness shook out a real recovery bug: a file shorter than the
//! 8-byte magic that was a strict prefix of it (a torn initial create)
//! returned `BadMagic` instead of recovering an empty store.

use configuration_wall::store::{KeyValueStore, LogStore, StoreError, MAGIC};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("accfg_store_fuzz");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{tag}_{}_{case}.store", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

const KEYS: usize = 6;

fn key_of(k: usize) -> Vec<u8> {
    format!("key/{k}").into_bytes()
}

/// One record as applied: its key, and `Some(value)` for a put or `None`
/// for a remove.
type AppliedOp = (Vec<u8>, Option<Vec<u8>>);

/// Applies the script, recording the file length after every applied
/// record. Removes of absent keys are skipped (they would be elided and
/// break the one-op-one-record bookkeeping).
fn build_store(path: &PathBuf, ops: &[(usize, bool)]) -> (Vec<u64>, Vec<AppliedOp>) {
    let mut store = LogStore::open(path).expect("fresh store opens");
    assert!(store.recovery().is_none());
    let mut boundaries = vec![MAGIC.len() as u64];
    let mut applied: Vec<AppliedOp> = Vec::new();
    let mut live = [false; KEYS];
    for (i, &(k, is_remove)) in ops.iter().enumerate() {
        let k = k % KEYS;
        let key = key_of(k);
        if is_remove {
            if !live[k] {
                continue;
            }
            live[k] = false;
            store.remove(&key).expect("remove");
            applied.push((key, None));
        } else {
            live[k] = true;
            // unique value per op: the identical-value elision never fires
            let value = format!("value-{i}").into_bytes();
            store.put(&key, &value).expect("put");
            applied.push((key, Some(value)));
        }
        store.sync().expect("sync");
        let len = std::fs::metadata(path).expect("metadata").len();
        assert_ne!(len, *boundaries.last().unwrap(), "op {i} appended nothing");
        boundaries.push(len);
    }
    (boundaries, applied)
}

/// The index a replay of the first `records` applied ops produces.
fn expected_index(applied: &[AppliedOp], records: usize) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut index = BTreeMap::new();
    for (key, value) in &applied[..records] {
        match value {
            Some(value) => index.insert(key.clone(), value.clone()),
            None => index.remove(key),
        };
    }
    index
}

/// Asserts `store` holds exactly `expected` (keys and values).
fn assert_store_matches(store: &LogStore, expected: &BTreeMap<Vec<u8>, Vec<u8>>, context: &str) {
    let keys = store.keys_with_prefix(b"");
    let want: Vec<Vec<u8>> = expected.keys().cloned().collect();
    assert_eq!(keys, want, "{context}: key sets differ");
    for (key, value) in expected {
        assert_eq!(store.get(key), Some(value.as_slice()), "{context}");
    }
}

/// Longest valid record prefix: number of applied records whose bytes lie
/// wholly before `offset`.
fn intact_records(boundaries: &[u64], offset: u64) -> usize {
    boundaries[1..].iter().filter(|&&end| end <= offset).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncation_recovers_the_longest_valid_prefix(
        ops in prop::collection::vec((0usize..KEYS, any::<bool>()), 1..16),
        cut in any::<u64>(),
    ) {
        let path = temp_store("trunc");
        let (boundaries, applied) = build_store(&path, &ops);
        let len = *boundaries.last().unwrap();
        let cut = cut % (len + 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();

        let store = LogStore::open(&path).expect("truncation never hard-fails");
        if cut < MAGIC.len() as u64 {
            // a strict prefix of the magic is a torn initial create:
            // recovered as an empty store (cut == 0 is a *clean* create)
            prop_assert_eq!(store.recovery().is_some(), cut > 0);
            prop_assert!(store.is_empty());
        } else {
            let records = intact_records(&boundaries, cut);
            let clean = boundaries.contains(&cut);
            prop_assert_eq!(store.recovery().is_none(), clean, "cut={}", cut);
            assert_store_matches(&store, &expected_index(&applied, records), "after recovery");
            // the corrupt tail was truncated away
            prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), boundaries[records]);
        }
        let expected: Vec<Vec<u8>> = store.keys_with_prefix(b"");
        drop(store);
        // a recovered store reopens clean, with the same contents
        let reopened = LogStore::open(&path).expect("recovered store reopens");
        prop_assert!(reopened.recovery().is_none());
        prop_assert_eq!(reopened.keys_with_prefix(b""), expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flips_recover_or_reject_but_never_panic(
        ops in prop::collection::vec((0usize..KEYS, any::<bool>()), 1..16),
        at in any::<u64>(),
        bit in 0u32..8,
    ) {
        let path = temp_store("flip");
        let (boundaries, applied) = build_store(&path, &ops);
        let len = *boundaries.last().unwrap();
        let at = at % len;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[at as usize] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        if at < MAGIC.len() as u64 {
            // a corrupted magic is a foreign file, not a torn tail
            prop_assert!(matches!(
                LogStore::open(&path),
                Err(StoreError::BadMagic { .. })
            ));
        } else {
            // the record containing the flip (and everything after it) is
            // lost; every record wholly before it survives
            let store = LogStore::open(&path).expect("record corruption never hard-fails");
            prop_assert!(store.recovery().is_some());
            let records = intact_records(&boundaries, at);
            assert_store_matches(&store, &expected_index(&applied, records), "after flip");
            prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), boundaries[records]);
            let expected: Vec<Vec<u8>> = store.keys_with_prefix(b"");
            drop(store);
            let reopened = LogStore::open(&path).expect("recovered store reopens");
            prop_assert!(reopened.recovery().is_none());
            prop_assert_eq!(reopened.keys_with_prefix(b""), expected);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_magic_prefix_recovers_an_empty_store(cut in 1u64..8) {
        // the regression this harness caught: a torn initial create left
        // a strict prefix of the magic on disk and reopen hard-failed
        let path = temp_store("magic");
        drop(LogStore::open(&path).expect("fresh store opens"));
        let bytes = std::fs::read(&path).unwrap();
        prop_assert_eq!(bytes.as_slice(), MAGIC.as_slice());
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();

        let store = LogStore::open(&path).expect("torn magic must recover");
        prop_assert!(store.recovery().is_some());
        prop_assert!(store.is_empty());
        drop(store);
        prop_assert!(LogStore::open(&path).expect("reopen").recovery().is_none());
        let _ = std::fs::remove_file(&path);
    }
}
