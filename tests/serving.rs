//! Integration tests for the `accfg-runtime` serving layer: functional
//! correctness at scale, the ≥30% configuration-write reduction of
//! config-affinity dispatch, the tail-latency bounds of queue-depth-aware
//! affinity and cycle-cost routing (on uniform *and* heterogeneous
//! pools), and the property that the resident-aware policies never write
//! more setup registers than the FIFO baseline — on arbitrary open-loop
//! *and* bursty streams.

use configuration_wall::prelude::*;
use configuration_wall::runtime::{Policy, ServeReport};
use configuration_wall::workloads::{
    mixed_platform_classes, mixed_serving_classes, shape_heavy_classes, BurstyConfig, TrafficClass,
    TrafficRequest,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn runtime() -> Runtime {
    Runtime::new(
        PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ])
        .with_workers_per_accelerator(2),
    )
}

/// The heterogeneous pool of `serve_bench`'s `hetero` stream: same
/// capacity as [`runtime`] (2 workers/family), but each family pairs its
/// base platform with a differently provisioned variant.
fn hetero_runtime() -> Runtime {
    Runtime::new(
        PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ])
        .with_workers_per_accelerator(2)
        .with_variant("gemmini", AcceleratorDescriptor::gemmini_turbo())
        .with_variant("opengemm", AcceleratorDescriptor::opengemm_lite()),
    )
}

/// The timing-model pool of `serve_bench`'s `contention` stream: the two
/// base platforms with their reference contention budgets and DVFS tables
/// enabled — same capacity as [`runtime`], but dispatch cost now depends
/// on each worker's load.
fn contention_runtime() -> Runtime {
    Runtime::new(
        PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini().with_reference_timing(),
            AcceleratorDescriptor::opengemm().with_reference_timing(),
        ])
        .with_workers_per_accelerator(2),
    )
}

fn serve(rt: &mut Runtime, stream: &[TrafficRequest], policy: Policy) -> ServeReport {
    rt.serve(
        stream,
        &ServeConfig {
            policy,
            ..ServeConfig::default()
        },
    )
    .expect("serve succeeds")
}

/// Serve reports for the canonical mixed 4k stream (4,000 requests, mean
/// gap 200, seed `0xC0FFEE`), computed once and shared by the three tests
/// that pin bars on it. Every serve is deterministic — the shared fixture
/// only deduplicates work, it cannot change any report. None of the
/// consuming tests read module-cache statistics, so serving all seven
/// configurations off one runtime is safe.
struct Mixed4k {
    fifo: ServeReport,
    elide: ServeReport,
    affinity: ServeReport,
    cost: ServeReport,
    /// fifo+elide with `max_batch: 8` and the default cutoff.
    batched: ServeReport,
    /// fifo+elide with `max_batch: 8` and the cutoff disabled.
    uncapped: ServeReport,
    /// The `refine_cost: false` ablation under the default policy.
    unrefined: ServeReport,
}

fn mixed_4k() -> &'static Mixed4k {
    static FIXTURE: OnceLock<Mixed4k> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let stream = TrafficConfig {
            classes: mixed_serving_classes(),
            requests: 4_000,
            mean_gap: 200,
            seed: 0xC0FFEE,
        }
        .open_loop_stream()
        .unwrap();
        let mut rt = runtime();
        let fifo = serve(&mut rt, &stream, Policy::Fifo);
        let elide = serve(&mut rt, &stream, Policy::FifoElide);
        let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);
        let cost = serve(&mut rt, &stream, Policy::Cost);
        let batched = rt
            .serve(
                &stream,
                &ServeConfig {
                    policy: Policy::FifoElide,
                    max_batch: 8,
                    ..ServeConfig::default()
                },
            )
            .expect("serve succeeds");
        let uncapped = rt
            .serve(
                &stream,
                &ServeConfig {
                    policy: Policy::FifoElide,
                    max_batch: 8,
                    batch_cutoff: None,
                    ..ServeConfig::default()
                },
            )
            .expect("serve succeeds");
        let unrefined = rt
            .serve(
                &stream,
                &ServeConfig {
                    refine_cost: false,
                    ..ServeConfig::default()
                },
            )
            .expect("serve succeeds");
        Mixed4k {
            fifo,
            elide,
            affinity,
            cost,
            batched,
            uncapped,
            unrefined,
        }
    })
}

/// The acceptance-criteria run: ≥10,000 requests across both accelerator
/// descriptors, functionally checked, with config-affinity cutting setup
/// register writes by ≥30% against the FIFO baseline. Fully deterministic:
/// fixed stream seed, simulated clocks only.
#[test]
fn serve_10k_requests_across_both_platforms() {
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 10_000,
        mean_gap: 200,
        seed: 0xBEEF,
    }
    .open_loop_stream()
    .unwrap();
    assert!(stream.iter().any(|r| r.accelerator == "gemmini"));
    assert!(stream.iter().any(|r| r.accelerator == "opengemm"));

    let mut rt = runtime();
    let fifo = serve(&mut rt, &stream, Policy::Fifo);
    let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);

    for report in [&fifo, &affinity] {
        assert_eq!(report.metrics.requests, 10_000);
        assert_eq!(report.metrics.check_failures, 0, "functional check failed");
        assert_eq!(report.metrics.sim_failures, 0, "simulation failed");
        assert_eq!(report.completions.len(), 10_000);
    }
    // every request actually launched its tiles
    assert!(affinity.metrics.launches >= 10_000);
    // the six shapes compiled once; everything else hit the module cache
    assert_eq!(fifo.metrics.cache.misses, 6);
    assert_eq!(affinity.metrics.cache.misses, 0);

    let savings = affinity.metrics.write_savings_vs(&fifo.metrics);
    assert!(
        savings >= 0.30,
        "config-affinity saved only {:.1}% of setup writes ({} vs {})",
        100.0 * savings,
        affinity.metrics.setup_writes,
        fifo.metrics.setup_writes
    );
    // config bytes shrink with the writes
    assert!(affinity.metrics.config_bytes < fifo.metrics.config_bytes);
}

/// Affinity dispatch must preserve results: the same stream served under
/// both policies produces the same launch counts and no check failures,
/// while cycles only improve.
#[test]
fn policies_agree_functionally() {
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 600,
        mean_gap: 100,
        seed: 77,
    }
    .open_loop_stream()
    .unwrap();
    let mut rt = runtime();
    let fifo = serve(&mut rt, &stream, Policy::Fifo);
    let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);
    assert_eq!(fifo.metrics.launches, affinity.metrics.launches);
    assert_eq!(fifo.metrics.check_failures, 0);
    assert_eq!(affinity.metrics.check_failures, 0);
    assert!(affinity.metrics.sim_cycles <= fifo.metrics.sim_cycles);
}

/// The tail-latency acceptance bounds of the resident-aware policies on
/// the canonical mixed stream: affinity's p99 stays within 1.15× of
/// round-robin-with-elision while still cutting ≥ 50% of setup writes
/// against the cold FIFO baseline, and `cost` — which on a uniform pool
/// must not give up anything affinity's write scoring wins — holds p99
/// within 1.10× with the same ≥ 50% savings bar. (The full 12k-request
/// crossover characterization lives in `serve_bench` /
/// `BENCH_runtime.json`.)
#[test]
fn affinity_and_cost_tail_latency_stay_near_round_robin() {
    let fx = mixed_4k();
    let (fifo, elide) = (&fx.fifo, &fx.elide);
    for (policy, report, p99_bound) in [
        (Policy::ConfigAffinity, &fx.affinity, 1.15),
        (Policy::Cost, &fx.cost, 1.10),
    ] {
        assert_eq!(report.metrics.check_failures, 0);
        let p99_ratio = report.metrics.latency.p99 as f64 / elide.metrics.latency.p99 as f64;
        assert!(
            p99_ratio <= p99_bound,
            "{} p99 {} vs fifo+elide p99 {} ({p99_ratio:.2}x)",
            policy.label(),
            report.metrics.latency.p99,
            elide.metrics.latency.p99
        );
        let savings = report.metrics.write_savings_vs(&fifo.metrics);
        assert!(
            savings >= 0.50,
            "{} write savings {:.1}%",
            policy.label(),
            100.0 * savings
        );
    }
}

/// With shapes ≫ workers no static partition keeps every worker warm, so
/// routing decides what elision can reuse; affinity must still beat plain
/// elision on writes and hold the p99 bound there.
#[test]
fn shape_heavy_stream_keeps_both_properties() {
    let stream = TrafficConfig {
        classes: shape_heavy_classes(),
        requests: 2_000,
        mean_gap: 400,
        seed: 0x5EED,
    }
    .open_loop_stream()
    .unwrap();
    let mut rt = runtime();
    let elide = serve(&mut rt, &stream, Policy::FifoElide);
    let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);
    assert!(affinity.metrics.setup_writes <= elide.metrics.setup_writes);
    assert!(
        affinity.metrics.latency.p99 as f64 <= 1.15 * elide.metrics.latency.p99 as f64,
        "affinity p99 {} vs elide p99 {}",
        affinity.metrics.latency.p99,
        elide.metrics.latency.p99
    );
    // per-class accounting covers the whole stream
    let per_class_total: u64 = affinity.metrics.per_class.iter().map(|c| c.requests).sum();
    assert_eq!(per_class_total, 2_000);
    assert!(affinity.metrics.per_class.len() >= 8);
}

/// Bursty (on/off) arrivals are deterministic end to end: the generator
/// reproduces the stream and two serves of it produce identical metrics,
/// latencies, and queue-depth histograms.
#[test]
fn bursty_serving_is_reproducible() {
    let cfg = BurstyConfig {
        classes: mixed_serving_classes(),
        requests: 1_500,
        burst_len: 24,
        burst_gap: 60,
        idle_gap: 12_000,
        seed: 0xB0257,
    };
    let stream = cfg.stream().unwrap();
    assert_eq!(stream, cfg.stream().unwrap());
    let run = || {
        let mut rt = runtime();
        let report = serve(&mut rt, &stream, Policy::ConfigAffinity);
        assert_eq!(report.metrics.check_failures, 0);
        (report.metrics.clone(), report.latencies.clone())
    };
    let (metrics_a, latencies_a) = run();
    let (metrics_b, latencies_b) = run();
    assert_eq!(metrics_a, metrics_b);
    assert_eq!(latencies_a, latencies_b);
    assert_eq!(metrics_a.queue_depth, metrics_b.queue_depth);
    assert_eq!(metrics_a.queue_depth.total(), 1_500);
}

/// The batching acceptance bound: with the queue-depth-aware batch
/// cutoff, `fifo+elide+batch` keeps its write savings (≥ 50% vs the cold
/// FIFO baseline) *without* the tail-latency price uncapped coalescing
/// paid — p99 within 1.10× of unbatched round-robin-with-elision. The
/// cutoff stops a batch as soon as the target worker's estimated
/// outstanding cycles reach the slack horizon, so deep queues can no
/// longer build behind a popular shape.
#[test]
fn batch_cutoff_recovers_the_tail_and_keeps_the_writes() {
    let fx = mixed_4k();
    let (fifo, elide, batched) = (&fx.fifo, &fx.elide, &fx.batched);
    assert!(batched.metrics.batched_requests > 0);
    let p99_ratio = batched.metrics.latency.p99 as f64 / elide.metrics.latency.p99 as f64;
    assert!(
        p99_ratio <= 1.10,
        "fifo+elide+batch p99 {} vs fifo+elide p99 {} ({p99_ratio:.2}x)",
        batched.metrics.latency.p99,
        elide.metrics.latency.p99
    );
    let savings = batched.metrics.write_savings_vs(&fifo.metrics);
    assert!(savings >= 0.50, "write savings {:.1}%", 100.0 * savings);

    // ablation: the same batching with the cutoff disabled writes no
    // less, so the cutoff costs nothing on the write side
    assert!(fx.uncapped.metrics.batched_requests >= batched.metrics.batched_requests);
}

/// The online-refinement acceptance bound: on the canonical mixed stream
/// the EWMA-refined cycle estimates beat the static analytic anchors, and
/// the refined error shrinks as the run warms up (the second half of the
/// stream predicts better than the first).
#[test]
fn ewma_refinement_beats_static_anchors_on_mixed() {
    let fx = mixed_4k();
    let report = &fx.affinity;
    let p = report.metrics.prediction;
    assert_eq!(p.samples, 4_000);
    assert!(
        p.ewma_abs_error < p.anchor_abs_error,
        "ewma error {} !< anchor error {}",
        p.ewma_abs_error,
        p.anchor_abs_error
    );
    // warm-run convergence: per-request refined error, in stream order
    let errs: Vec<u64> = report
        .predictions
        .iter()
        .map(|s| s.ewma.abs_diff(s.observed))
        .collect();
    let (first, second) = errs.split_at(errs.len() / 2);
    let sum = |half: &[u64]| half.iter().sum::<u64>();
    assert!(
        sum(second) <= sum(first),
        "late-half error {} > early-half error {}",
        sum(second),
        sum(first)
    );

    // the ablation with refinement disabled reports equal errors for both
    // predictors, pinned so the comparison in BENCH_runtime.json is
    // meaningful
    assert_eq!(
        fx.unrefined.metrics.prediction.ewma_abs_error,
        fx.unrefined.metrics.prediction.anchor_abs_error
    );
}

/// The timing-model acceptance bars: with the reference contention + DVFS
/// models enabled, dispatch cost is load-dependent in ways the analytic
/// anchors cannot see, so (a) anchor prediction error on the `contention`
/// stream is at least an order of magnitude above the identity-timing
/// mixed stream's, (b) the online EWMA still halves it (or better), and
/// (c) cycle-cost routing — whose completion estimates *do* learn the
/// load-dependent costs — gives up nothing on the tail against affinity.
#[test]
fn contention_stream_exercises_the_refiner() {
    // baseline: the canonical mixed stream on the identity-timing pool,
    // where dispatch cost is near-linear in writes and anchors are tight
    let mixed = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 2_000,
        mean_gap: 200,
        seed: 0xC0FFEE,
    }
    .open_loop_stream()
    .unwrap();
    let mut identity_rt = runtime();
    let baseline = serve(&mut identity_rt, &mixed, Policy::ConfigAffinity);
    assert_eq!(baseline.metrics.contention_cycles, 0);
    assert_eq!(baseline.metrics.freq_launches, [0, 0, 0]);

    // the contention stream: same mix, tighter arrivals, reference timing
    // (serve_bench's `contention` stream at a reduced request count)
    let contention = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 2_000,
        mean_gap: 120,
        seed: 0xC047E47,
    }
    .open_loop_stream()
    .unwrap();
    let mut rt = contention_runtime();
    let affinity = serve(&mut rt, &contention, Policy::ConfigAffinity);
    let cost = serve(&mut rt, &contention, Policy::Cost);
    for report in [&affinity, &cost] {
        assert_eq!(report.metrics.check_failures, 0);
        assert_eq!(report.metrics.sim_failures, 0);
    }

    // the timing model actually fired: host config traffic contended with
    // tile streams, and every launch ran in some DVFS state
    assert!(affinity.metrics.contention_cycles > 0);
    assert_eq!(
        affinity.metrics.freq_launches.iter().sum::<u64>(),
        affinity.metrics.launches
    );

    // (a) anchors are honest but wrong under load
    let base_mae = baseline.metrics.prediction.anchor_mae();
    let cont_mae = affinity.metrics.prediction.anchor_mae();
    assert!(
        cont_mae >= 10.0 * base_mae,
        "contention anchor MAE {cont_mae:.1} < 10x identity mixed MAE {base_mae:.1}"
    );
    // (b) the refiner closes at least half of the gap
    for report in [&affinity, &cost] {
        let p = report.metrics.prediction;
        assert!(
            2 * p.ewma_abs_error <= p.anchor_abs_error,
            "ewma MAE {:.1} > 0.5x anchor MAE {:.1}",
            p.ewma_mae(),
            p.anchor_mae()
        );
    }
    // (c) routing on learned completion costs holds the tail
    assert!(
        cost.metrics.latency.p99 <= affinity.metrics.latency.p99,
        "cost p99 {} vs affinity p99 {}",
        cost.metrics.latency.p99,
        affinity.metrics.latency.p99
    );
    // and the elision guarantee survives the richer timing
    let fifo = serve(&mut rt, &contention, Policy::Fifo);
    assert!(affinity.metrics.setup_writes <= fifo.metrics.setup_writes);
    assert!(cost.metrics.setup_writes <= fifo.metrics.setup_writes);
}

/// Serving under the timing model stays a pure function of the request
/// stream: two serves produce bit-identical reports, DVFS history and
/// contention push-back included.
#[test]
fn timed_serving_is_reproducible() {
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 500,
        mean_gap: 120,
        seed: 0x7E57,
    }
    .open_loop_stream()
    .unwrap();
    let run = |policy| {
        let mut rt = contention_runtime();
        serve(&mut rt, &stream, policy)
    };
    for policy in [Policy::ConfigAffinity, Policy::Cost, Policy::Thermal] {
        let a = run(policy);
        let b = run(policy);
        assert_eq!(a.metrics, b.metrics, "{}", policy.label());
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.predictions, b.predictions);
    }
}

/// The frequency-aware scheduling acceptance bars, pinned at serve_bench
/// scale (the full 12,000-request `contention` stream):
///
/// (a) `thermal` — which prices every candidate at the DVFS mode the
///     tracker's shadow automaton predicts and pushes traffic-heavy
///     dispatches out of contended busy windows — must hold the tail at
///     least as well as `cost`, whose mode-agnostic estimates chase
///     averaged costs across frequency states;
/// (b) frequency-keyed EWMA refinement must land strictly inside the
///     mode-agnostic rows it falls back to: scoring each retired
///     dispatch's keyed prediction against the observed cycles, summed
///     over the per-mode breakdown, beats the agnostic refinement error
///     (the 2.3-cycle residual the mode-blind rows plateau at — the
///     residual *is* the per-mode cost spread the keyed rows resolve).
///
/// `cost`'s own bars on `mixed` and `hetero` are pinned by
/// `affinity_and_cost_tail_latency_stay_near_round_robin` and
/// `cost_beats_affinity_on_heterogeneous_pools`; the frequency machinery
/// leaves every existing policy's routing bit-identical, so those tests
/// double as the no-regression guard.
#[test]
fn thermal_beats_cost_on_the_contention_tail() {
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 12_000,
        mean_gap: 120,
        seed: 0xC047E47,
    }
    .open_loop_stream()
    .unwrap();
    let mut rt = contention_runtime();
    let cost = serve(&mut rt, &stream, Policy::Cost);
    let thermal = serve(&mut rt, &stream, Policy::Thermal);
    for report in [&cost, &thermal] {
        assert_eq!(report.metrics.check_failures, 0);
        assert_eq!(report.metrics.sim_failures, 0);
        assert_eq!(report.metrics.requests, 12_000);
    }

    // (a) frequency-state-aware routing holds the contended tail
    assert!(
        thermal.metrics.latency.p99 <= cost.metrics.latency.p99,
        "thermal p99 {} vs cost p99 {}",
        thermal.metrics.latency.p99,
        cost.metrics.latency.p99
    );

    // (b) keyed refinement beats the agnostic rows on both serves; the
    // per-mode breakdown partitions exactly the retired sample set
    for report in [&cost, &thermal] {
        let agnostic = report.metrics.prediction;
        let keyed_samples: u64 = report
            .metrics
            .freq_prediction
            .iter()
            .map(|p| p.samples)
            .sum();
        let keyed_error: u64 = report
            .metrics
            .freq_prediction
            .iter()
            .map(|p| p.ewma_abs_error)
            .sum();
        assert_eq!(keyed_samples, agnostic.samples, "{}", report.metrics.policy);
        assert!(
            keyed_error < agnostic.ewma_abs_error,
            "{}: keyed ewma error {} !< agnostic ewma error {}",
            report.metrics.policy,
            keyed_error,
            agnostic.ewma_abs_error
        );
        // the stream actually exercised more than one frequency state,
        // or the comparison above would be vacuous
        let active_modes = report
            .metrics
            .freq_prediction
            .iter()
            .filter(|p| p.samples > 0)
            .count();
        assert!(active_modes >= 2, "{}", report.metrics.policy);
    }
}

/// The load-slack horizon is per-run configuration: a custom
/// `ServeConfig::load_slack` serves deterministically and keeps the
/// elision guarantee, and the default reproduces `LOAD_SLACK_CYCLES`.
#[test]
fn load_slack_is_a_serving_knob() {
    use configuration_wall::runtime::LOAD_SLACK_CYCLES;
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 1_000,
        mean_gap: 200,
        seed: 0x51ACC,
    }
    .open_loop_stream()
    .unwrap();
    let serve_slack = |slack: u64, policy| {
        let mut rt = runtime();
        rt.serve(
            &stream,
            &ServeConfig {
                policy,
                load_slack: slack,
                batch_cutoff: Some(slack),
                ..ServeConfig::default()
            },
        )
        .expect("serve succeeds")
    };
    let fifo = serve_slack(128, Policy::Fifo);
    let tight = serve_slack(128, Policy::ConfigAffinity);
    assert_eq!(tight.metrics.check_failures, 0);
    assert!(tight.metrics.setup_writes <= fifo.metrics.setup_writes);
    // deterministic under a custom horizon
    let again = serve_slack(128, Policy::ConfigAffinity);
    assert_eq!(tight.metrics, again.metrics);
    assert_eq!(tight.latencies, again.latencies);
    // the default value is the old constant: explicit 256 == default
    let explicit = serve_slack(LOAD_SLACK_CYCLES, Policy::ConfigAffinity);
    let mut rt = runtime();
    let default = rt
        .serve(&stream, &ServeConfig::default())
        .expect("serve succeeds");
    assert_eq!(explicit.metrics, default.metrics);
    assert_eq!(explicit.latencies, default.latencies);
}

/// The heterogeneous-pool acceptance bar: on the mixed-platform stream
/// over a pool pairing each family's base platform with a differently
/// provisioned variant, cycle-cost routing must beat write-count affinity
/// on affinity's own metric — setup writes — because per-platform
/// completion estimates keep shape placements stable where affinity's
/// provisioning-blind score ping-pongs them across the slack horizon.
#[test]
fn cost_beats_affinity_on_heterogeneous_pools() {
    let stream = TrafficConfig {
        classes: mixed_platform_classes(),
        requests: 1_000,
        mean_gap: 300,
        seed: 0x4E7E60,
    }
    .open_loop_stream()
    .unwrap();
    let mut rt = hetero_runtime();
    let fifo = serve(&mut rt, &stream, Policy::Fifo);
    let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);
    let cost = serve(&mut rt, &stream, Policy::Cost);
    for report in [&fifo, &affinity, &cost] {
        assert_eq!(report.metrics.check_failures, 0);
        assert_eq!(report.metrics.sim_failures, 0);
    }
    assert!(
        cost.metrics.setup_writes <= affinity.metrics.setup_writes,
        "cost wrote {} setup registers, affinity {}",
        cost.metrics.setup_writes,
        affinity.metrics.setup_writes
    );
    // and the elision guarantee still bounds both against cold FIFO
    assert!(affinity.metrics.setup_writes <= fifo.metrics.setup_writes);
    assert!(cost.metrics.setup_writes <= fifo.metrics.setup_writes);
    // routing by predicted completion must not cost the tail anything
    // relative to affinity on this pool
    assert!(
        cost.metrics.latency.p99 <= affinity.metrics.latency.p99,
        "cost p99 {} vs affinity p99 {}",
        cost.metrics.latency.p99,
        affinity.metrics.latency.p99
    );
}

/// The `cost` policy is deterministic end to end on a heterogeneous pool:
/// two serves of the same stream produce byte-identical reports (metrics,
/// latencies, and per-request prediction samples).
#[test]
fn cost_policy_is_deterministic_on_heterogeneous_pools() {
    let stream = TrafficConfig {
        classes: mixed_platform_classes(),
        requests: 400,
        mean_gap: 150,
        seed: 0xD0C,
    }
    .open_loop_stream()
    .unwrap();
    let run = || {
        let mut rt = hetero_runtime();
        serve(&mut rt, &stream, Policy::Cost)
    };
    let a = run();
    let b = run();
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.latencies, b.latencies);
    assert_eq!(a.predictions, b.predictions);
    for (x, y) in a.completions.iter().zip(&b.completions) {
        assert_eq!(x.worker, y.worker);
        assert_eq!(x.emitted_writes, y.emitted_writes);
        assert_eq!(x.counters.cycles, y.counters.cycles);
    }
}

/// A fresh temp-file path for one test's warm-start store (removed up
/// front so a previous run's file cannot leak state in).
fn temp_store(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("accfg_serving_tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{name}_{}.store", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The contention stream at test scale (serve_bench's warm-start stream
/// at a reduced request count).
fn contention_stream(requests: usize) -> Vec<TrafficRequest> {
    TrafficConfig {
        classes: mixed_serving_classes(),
        requests,
        mean_gap: 120,
        seed: 0xC047E47,
    }
    .open_loop_stream()
    .unwrap()
}

/// The persistent warm-start acceptance bars, pinned on the contention
/// stream (where the anchors drift the most, so restored EWMA state is
/// worth the most): a cold store-backed serve flushes its compiled
/// modules and learned cost rows; a fresh runtime restoring them pays
/// **zero** compile builds, seeds its refiner before the first request,
/// and predicts at least as well as the cold run's full-stream EWMA —
/// an order of magnitude inside the static anchors. A store-less serve
/// of the same stream is bit-identical to the cold store-backed one
/// (persistence observes the serve, it never perturbs it).
#[test]
fn warm_start_restores_modules_and_cost_state() {
    let stream = contention_stream(2_000);
    let store = temp_store("warm_start");
    let cfg = ServeConfig {
        policy: Policy::ConfigAffinity,
        store: Some(store.clone()),
        ..ServeConfig::default()
    };

    let mut cold_rt = contention_runtime();
    let cold = cold_rt.serve(&stream, &cfg).expect("cold serve succeeds");
    let cold_stats = cold.metrics.warm_start.expect("store runs report stats");
    assert_eq!(cold_stats.modules_restored, 0);
    assert_eq!(cold_stats.ewma_entries_seeded, 0);
    assert_eq!(cold.metrics.cache.misses, 6, "six shapes compile cold");

    // the store changed nothing about the serve itself: a store-less run
    // of the same stream is bit-identical (modulo the provenance field)
    let mut plain_rt = contention_runtime();
    let plain = serve(&mut plain_rt, &stream, Policy::ConfigAffinity);
    assert!(plain.metrics.warm_start.is_none());
    let mut cold_scrubbed = cold.metrics.clone();
    cold_scrubbed.warm_start = None;
    assert_eq!(cold_scrubbed, plain.metrics);
    assert_eq!(cold.latencies, plain.latencies);
    assert_eq!(cold.predictions, plain.predictions);

    // a fresh process restoring the store starts warm
    let mut warm_rt = contention_runtime();
    let warm = warm_rt.serve(&stream, &cfg).expect("warm serve succeeds");
    let warm_stats = warm.metrics.warm_start.expect("store runs report stats");
    assert_eq!(warm_stats.modules_restored, 6);
    assert_eq!(warm_stats.builds_avoided, 6);
    assert!(warm_stats.ewma_entries_seeded > 0);
    assert_eq!(warm.metrics.check_failures, 0);
    assert_eq!(
        warm.metrics.cache.misses, 0,
        "restored modules must satisfy every shape"
    );

    // prediction bars: seeded EWMA state predicts no worse than the cold
    // run's full-stream learning, and lands an order of magnitude inside
    // the static anchors (cold: anchor MAE ~184, ewma MAE ~14; warm
    // ewma MAE ~5 at this scale)
    let (cold_p, warm_p) = (cold.metrics.prediction, warm.metrics.prediction);
    assert!(
        warm_p.ewma_abs_error <= cold_p.ewma_abs_error,
        "warm ewma MAE {:.1} worse than cold {:.1}",
        warm_p.ewma_mae(),
        cold_p.ewma_mae()
    );
    assert!(
        warm_p.ewma_mae() <= 0.1 * cold_p.anchor_mae(),
        "warm ewma MAE {:.1} not inside 0.1x cold anchor MAE {:.1}",
        warm_p.ewma_mae(),
        cold_p.anchor_mae()
    );
    let _ = std::fs::remove_file(&store);
}

/// The determinism contract of the store files themselves: two identical
/// cold → warm sequences against two paths leave byte-identical store
/// files (canonical codec, sorted flush order, and unchanged-value
/// append elision — so fleet stores can be content-compared).
#[test]
fn warm_start_store_files_are_byte_identical() {
    let stream = contention_stream(600);
    let run_sequence = |path: &std::path::Path| {
        let cfg = ServeConfig {
            policy: Policy::ConfigAffinity,
            store: Some(path.to_path_buf()),
            ..ServeConfig::default()
        };
        for _ in 0..2 {
            let mut rt = contention_runtime();
            let report = rt.serve(&stream, &cfg).expect("serve succeeds");
            assert_eq!(report.metrics.check_failures, 0);
        }
    };
    let (a, b) = (temp_store("bytes_a"), temp_store("bytes_b"));
    run_sequence(&a);
    run_sequence(&b);
    let (bytes_a, bytes_b) = (
        std::fs::read(&a).expect("read store a"),
        std::fs::read(&b).expect("read store b"),
    );
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "store files diverged across runs");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

/// Sums `accfg-analyze`'s static counters over a stream's raw per-class
/// modules — exactly the modules the serving runtime compiles — weighted
/// by each class's request count. Returns `(static_writes, elidable
/// bound)`. `static_writes` counts only *guaranteed* write executions, so
/// it never exceeds what a run of the raw module actually writes.
fn stream_static_totals(stream: &[TrafficRequest]) -> (u64, u64) {
    use configuration_wall::analyze::lint_module;
    let mut classes: Vec<(String, MatmulSpec, u64)> = Vec::new();
    for req in stream {
        match classes
            .iter_mut()
            .find(|(a, s, _)| *a == req.accelerator && *s == req.spec)
        {
            Some((_, _, n)) => *n += 1,
            None => classes.push((req.accelerator.clone(), req.spec, 1)),
        }
    }
    let (mut static_writes, mut bound) = (0u64, 0u64);
    for (accel, spec, n) in &classes {
        let desc = match accel.as_str() {
            "gemmini" => AcceleratorDescriptor::gemmini(),
            "opengemm" => AcceleratorDescriptor::opengemm(),
            other => panic!("unknown accelerator `{other}`"),
        };
        let report = lint_module(&matmul_ir(&desc, spec));
        static_writes += n * report.static_writes;
        bound += n * report.elidable_bound;
    }
    (static_writes, bound)
}

/// The static-vs-dynamic elision bar: per stream, the static
/// elidable-write lower bound (value-resident write executions
/// `accfg-analyze` proves on the *raw* per-class modules) must not exceed
/// the write savings any eliding policy actually measures — raw writes
/// minus emitted writes. The compiler's dedup/hoist passes plus dispatch
/// elision together must capture at least everything the analysis proves
/// resident, on every stream the benchmark serves.
#[test]
fn static_elidable_bound_never_exceeds_measured_elision() {
    let uniform_streams = [
        (
            "mixed",
            TrafficConfig {
                classes: mixed_serving_classes(),
                requests: 2_000,
                mean_gap: 200,
                seed: 0xC0FFEE,
            },
        ),
        (
            "shape_heavy",
            TrafficConfig {
                classes: shape_heavy_classes(),
                requests: 1_000,
                mean_gap: 400,
                seed: 0x5EED,
            },
        ),
    ];
    let mut checks: Vec<(&str, Vec<TrafficRequest>, Runtime)> = uniform_streams
        .into_iter()
        .map(|(name, cfg)| (name, cfg.open_loop_stream().unwrap(), runtime()))
        .collect();
    checks.push((
        "hetero",
        TrafficConfig {
            classes: mixed_platform_classes(),
            requests: 1_000,
            mean_gap: 300,
            seed: 0x4E7E60,
        }
        .open_loop_stream()
        .unwrap(),
        hetero_runtime(),
    ));
    for (name, stream, mut rt) in checks {
        let (static_writes, bound) = stream_static_totals(&stream);
        assert!(bound > 0, "{name}: trivial bound proves nothing");
        for policy in [Policy::FifoElide, Policy::ConfigAffinity, Policy::Cost] {
            let report = serve(&mut rt, &stream, policy);
            assert_eq!(report.metrics.check_failures, 0);
            let emitted = report.metrics.setup_writes;
            assert!(
                emitted + bound <= static_writes,
                "{name}/{}: static bound {bound} > measured savings {} \
                 (raw static writes {static_writes}, emitted {emitted})",
                policy.label(),
                static_writes.saturating_sub(emitted),
            );
        }
    }
}

/// Serving is deterministic end to end: two runs of the same stream give
/// identical metrics and latencies.
#[test]
fn serving_is_reproducible() {
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 500,
        mean_gap: 80,
        seed: 5,
    }
    .open_loop_stream()
    .unwrap();
    let run = || {
        let mut rt = runtime();
        let report = serve(&mut rt, &stream, Policy::ConfigAffinity);
        (report.metrics.clone(), report.latencies.clone())
    };
    assert_eq!(run(), run());
}

/// A weighted-mix strategy over the serving shape classes.
fn class_picks() -> impl Strategy<Value = Vec<usize>> {
    let classes = mixed_serving_classes().len();
    prop::collection::vec(0usize..classes, 20..120)
}

/// A weighted-mix strategy over the mixed-platform (heterogeneous-pool)
/// shape classes; streams are kept shorter because the mix is
/// compute-heavier.
fn hetero_class_picks() -> impl Strategy<Value = Vec<usize>> {
    let classes = mixed_platform_classes().len();
    prop::collection::vec(0usize..classes, 20..56)
}

fn stream_from_picks(
    classes: &[TrafficClass],
    picks: &[usize],
    mean_gap: u64,
    seed: u64,
) -> Vec<TrafficRequest> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &c)| TrafficRequest {
            id: i as u64,
            accelerator: classes[c].accelerator.clone(),
            spec: classes[c].spec,
            arrival: i as u64 * mean_gap,
            seed: seed ^ (i as u64),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any deterministic request stream, config-affinity routing never
    /// writes more setup registers than the FIFO baseline — a warm-start
    /// dispatch can only elide writes a cold dispatch performs.
    #[test]
    fn affinity_never_writes_more_than_fifo(
        picks in class_picks(),
        gap in 1u64..400,
        seed in any::<u64>(),
    ) {
        let stream = stream_from_picks(&mixed_serving_classes(), &picks, gap, seed);
        let mut rt = runtime();
        let fifo = serve(&mut rt, &stream, Policy::Fifo);
        let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);
        prop_assert_eq!(fifo.metrics.check_failures, 0);
        prop_assert_eq!(affinity.metrics.check_failures, 0);
        prop_assert!(
            affinity.metrics.setup_writes <= fifo.metrics.setup_writes,
            "affinity wrote {} setup registers, fifo {}",
            affinity.metrics.setup_writes,
            fifo.metrics.setup_writes
        );
        // per-request, the warm dispatch never exceeds the cold cost
        for c in &affinity.completions {
            prop_assert!(c.emitted_writes <= c.cold_writes);
        }
    }

    /// Over *heterogeneous* pools, both resident-aware policies keep the
    /// elision guarantee on arbitrary open-loop streams: whatever the
    /// provisioning mix does to routing, neither `affinity` nor `cost`
    /// ever emits more setup writes than the cold FIFO baseline.
    #[test]
    fn resident_policies_never_write_more_than_fifo_on_hetero_pools(
        picks in hetero_class_picks(),
        gap in 1u64..400,
        seed in any::<u64>(),
    ) {
        let stream = stream_from_picks(&mixed_platform_classes(), &picks, gap, seed);
        let mut rt = hetero_runtime();
        let fifo = serve(&mut rt, &stream, Policy::Fifo);
        for policy in [Policy::ConfigAffinity, Policy::Cost] {
            let report = serve(&mut rt, &stream, policy);
            prop_assert_eq!(report.metrics.check_failures, 0);
            prop_assert!(
                report.metrics.setup_writes <= fifo.metrics.setup_writes,
                "{} wrote {} setup registers, fifo {}",
                policy.label(),
                report.metrics.setup_writes,
                fifo.metrics.setup_writes
            );
            for c in &report.completions {
                prop_assert!(c.emitted_writes <= c.cold_writes);
            }
        }
    }

    /// The same heterogeneous-pool guarantee under bursty (on/off)
    /// arrivals — the arrival process that drives queue-pressure (and
    /// with it cross-variant rerouting) hardest.
    #[test]
    fn resident_policies_never_write_more_than_fifo_on_hetero_bursty_streams(
        requests in 20usize..56,
        burst_len in 1usize..24,
        burst_gap in 0u64..100,
        idle_gap in 0u64..20_000,
        seed in any::<u64>(),
    ) {
        let stream = BurstyConfig {
            classes: mixed_platform_classes(),
            requests,
            burst_len,
            burst_gap,
            idle_gap,
            seed,
        }
        .stream()
        .unwrap();
        let mut rt = hetero_runtime();
        let fifo = serve(&mut rt, &stream, Policy::Fifo);
        for policy in [Policy::ConfigAffinity, Policy::Cost] {
            let report = serve(&mut rt, &stream, policy);
            prop_assert_eq!(report.metrics.check_failures, 0);
            prop_assert!(
                report.metrics.setup_writes <= fifo.metrics.setup_writes,
                "{} wrote {} setup registers, fifo {}",
                policy.label(),
                report.metrics.setup_writes,
                fifo.metrics.setup_writes
            );
            for c in &report.completions {
                prop_assert!(c.emitted_writes <= c.cold_writes);
            }
        }
    }

    /// Online cost refinement stays a pure function of the request
    /// stream: two serves of any stream produce bit-identical metrics and
    /// prediction samples. And refinement *converges*: replaying the same
    /// request sequence a second time (a warm run, every warmth bucket
    /// observed) predicts no worse than the cold first pass.
    #[test]
    fn ewma_refinement_is_deterministic_and_converges(
        picks in class_picks(),
        gap in 1u64..400,
        seed in any::<u64>(),
    ) {
        let doubled: Vec<usize> = picks.iter().chain(&picks).copied().collect();
        let stream = stream_from_picks(&mixed_serving_classes(), &doubled, gap, seed);
        let run = || {
            let mut rt = runtime();
            rt.serve(&stream, &ServeConfig::default()).expect("serve succeeds")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.metrics, &b.metrics);
        prop_assert_eq!(&a.predictions, &b.predictions);
        prop_assert_eq!(&a.latencies, &b.latencies);
        // predicted-vs-observed error shrinks in expectation as the run
        // warms: the replayed half must not predict worse than the first
        let errs: Vec<u64> = a
            .predictions
            .iter()
            .map(|s| s.ewma.abs_diff(s.observed))
            .collect();
        let (first, second) = errs.split_at(picks.len());
        let (cold, warm) = (
            first.iter().sum::<u64>(),
            second.iter().sum::<u64>(),
        );
        prop_assert!(warm <= cold, "warm-half error {warm} > cold-half error {cold}");
    }

    /// The same guarantee under bursty (on/off) arrivals — the arrival
    /// process that drives queue-depth-aware scoring hardest, so routing
    /// decisions differ most from the open-loop case. Elision, not
    /// routing, owns the bound, so it must hold regardless.
    #[test]
    fn affinity_never_writes_more_than_fifo_on_bursty_streams(
        requests in 20usize..120,
        burst_len in 1usize..32,
        burst_gap in 0u64..100,
        idle_gap in 0u64..20_000,
        seed in any::<u64>(),
    ) {
        let stream = BurstyConfig {
            classes: mixed_serving_classes(),
            requests,
            burst_len,
            burst_gap,
            idle_gap,
            seed,
        }
        .stream()
        .unwrap();
        let mut rt = runtime();
        let fifo = serve(&mut rt, &stream, Policy::Fifo);
        let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);
        prop_assert_eq!(fifo.metrics.check_failures, 0);
        prop_assert_eq!(affinity.metrics.check_failures, 0);
        prop_assert!(
            affinity.metrics.setup_writes <= fifo.metrics.setup_writes,
            "affinity wrote {} setup registers, fifo {}",
            affinity.metrics.setup_writes,
            fifo.metrics.setup_writes
        );
        for c in &affinity.completions {
            prop_assert!(c.emitted_writes <= c.cold_writes);
        }
    }

    /// The `thermal` policy is deterministic end to end on arbitrary
    /// reference-timing streams: two serves of the same stream produce
    /// bit-identical reports, shadow-mirror history included.
    #[test]
    fn thermal_is_deterministic_on_reference_timing_streams(
        picks in class_picks(),
        gap in 1u64..400,
        seed in any::<u64>(),
    ) {
        let stream = stream_from_picks(&mixed_serving_classes(), &picks, gap, seed);
        let run = || {
            let mut rt = contention_runtime();
            serve(&mut rt, &stream, Policy::Thermal)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.metrics, &b.metrics);
        prop_assert_eq!(&a.latencies, &b.latencies);
        prop_assert_eq!(&a.predictions, &b.predictions);
    }

    /// The elision guarantee survives frequency-aware routing: on
    /// arbitrary reference-timing streams `thermal` never emits more
    /// setup writes than the cold FIFO baseline — heat steering changes
    /// *where* dispatches land, never what a warm dispatch may skip.
    #[test]
    fn thermal_never_writes_more_than_fifo_on_reference_timing_streams(
        picks in class_picks(),
        gap in 1u64..400,
        seed in any::<u64>(),
    ) {
        let stream = stream_from_picks(&mixed_serving_classes(), &picks, gap, seed);
        let mut rt = contention_runtime();
        let fifo = serve(&mut rt, &stream, Policy::Fifo);
        let thermal = serve(&mut rt, &stream, Policy::Thermal);
        prop_assert_eq!(fifo.metrics.check_failures, 0);
        prop_assert_eq!(thermal.metrics.check_failures, 0);
        prop_assert!(
            thermal.metrics.setup_writes <= fifo.metrics.setup_writes,
            "thermal wrote {} setup registers, fifo {}",
            thermal.metrics.setup_writes,
            fifo.metrics.setup_writes
        );
        for c in &thermal.completions {
            prop_assert!(c.emitted_writes <= c.cold_writes);
        }
    }
}

/// The autotuner's pinned bar: the committed `TUNED.json` knobs for the
/// canonical mixed stream strictly dominate the default serving
/// configuration at the scale they were tuned at — no worse on p99 *and*
/// setup writes, strictly better on at least one. The default side is the
/// Mixed4k affinity report (`ServeConfig::default()` *is* affinity at the
/// default slack), the tuned side re-serves the same 4,000-request stream
/// under the table's knobs on a fresh runtime over the tuned pool.
#[test]
fn tuned_mixed_knobs_dominate_the_default_configuration() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/TUNED.json");
    let text = std::fs::read_to_string(path).expect("committed TUNED.json exists");
    let rows = accfg_bench::tune::parse_table(&text).expect("committed TUNED.json parses");
    let knobs = rows
        .iter()
        .find(|(name, _)| name == "mixed")
        .map(|(_, knobs)| *knobs)
        .expect("TUNED.json has a mixed row");

    let stream = accfg_bench::streams::mixed_stream(4_000);
    let default = &mixed_4k().affinity.metrics;
    let mut rt = Runtime::new(knobs.apply_pool(&accfg_bench::streams::uniform_pool()));
    let tuned = rt
        .serve(&stream, &knobs.serve_config())
        .expect("tuned serve succeeds")
        .metrics;
    assert_eq!(tuned.check_failures, 0, "tuned serve failed checks");
    assert_eq!(tuned.sim_failures, 0, "tuned serve failed simulation");
    assert!(
        tuned.latency.p99 <= default.latency.p99
            && tuned.setup_writes <= default.setup_writes
            && (tuned.latency.p99 < default.latency.p99
                || tuned.setup_writes < default.setup_writes),
        "tuned knobs do not dominate the default: p99 {} vs {}, writes {} vs {}",
        tuned.latency.p99,
        default.latency.p99,
        tuned.setup_writes,
        default.setup_writes
    );
}
