//! Integration tests for the `accfg-runtime` serving layer: functional
//! correctness at scale, the ≥30% configuration-write reduction of
//! config-affinity dispatch, and the property that affinity routing never
//! writes more setup registers than the FIFO baseline.

use configuration_wall::prelude::*;
use configuration_wall::runtime::{Policy, ServeReport};
use configuration_wall::workloads::{mixed_serving_classes, TrafficClass, TrafficRequest};
use proptest::prelude::*;

fn runtime() -> Runtime {
    Runtime::new(
        PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ])
        .with_workers_per_accelerator(2),
    )
}

fn serve(rt: &mut Runtime, stream: &[TrafficRequest], policy: Policy) -> ServeReport {
    rt.serve(
        stream,
        &ServeConfig {
            policy,
            ..ServeConfig::default()
        },
    )
    .expect("serve succeeds")
}

/// The acceptance-criteria run: ≥10,000 requests across both accelerator
/// descriptors, functionally checked, with config-affinity cutting setup
/// register writes by ≥30% against the FIFO baseline. Fully deterministic:
/// fixed stream seed, simulated clocks only.
#[test]
fn serve_10k_requests_across_both_platforms() {
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 10_000,
        mean_gap: 200,
        seed: 0xBEEF,
    }
    .open_loop_stream()
    .unwrap();
    assert!(stream.iter().any(|r| r.accelerator == "gemmini"));
    assert!(stream.iter().any(|r| r.accelerator == "opengemm"));

    let mut rt = runtime();
    let fifo = serve(&mut rt, &stream, Policy::Fifo);
    let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);

    for report in [&fifo, &affinity] {
        assert_eq!(report.metrics.requests, 10_000);
        assert_eq!(report.metrics.check_failures, 0, "functional check failed");
        assert_eq!(report.metrics.sim_failures, 0, "simulation failed");
        assert_eq!(report.completions.len(), 10_000);
    }
    // every request actually launched its tiles
    assert!(affinity.metrics.launches >= 10_000);
    // the six shapes compiled once; everything else hit the module cache
    assert_eq!(fifo.metrics.cache.misses, 6);
    assert_eq!(affinity.metrics.cache.misses, 0);

    let savings = affinity.metrics.write_savings_vs(&fifo.metrics);
    assert!(
        savings >= 0.30,
        "config-affinity saved only {:.1}% of setup writes ({} vs {})",
        100.0 * savings,
        affinity.metrics.setup_writes,
        fifo.metrics.setup_writes
    );
    // config bytes shrink with the writes
    assert!(affinity.metrics.config_bytes < fifo.metrics.config_bytes);
}

/// Affinity dispatch must preserve results: the same stream served under
/// both policies produces the same launch counts and no check failures,
/// while cycles only improve.
#[test]
fn policies_agree_functionally() {
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 600,
        mean_gap: 100,
        seed: 77,
    }
    .open_loop_stream()
    .unwrap();
    let mut rt = runtime();
    let fifo = serve(&mut rt, &stream, Policy::Fifo);
    let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);
    assert_eq!(fifo.metrics.launches, affinity.metrics.launches);
    assert_eq!(fifo.metrics.check_failures, 0);
    assert_eq!(affinity.metrics.check_failures, 0);
    assert!(affinity.metrics.sim_cycles <= fifo.metrics.sim_cycles);
}

/// Serving is deterministic end to end: two runs of the same stream give
/// identical metrics and latencies.
#[test]
fn serving_is_reproducible() {
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: 500,
        mean_gap: 80,
        seed: 5,
    }
    .open_loop_stream()
    .unwrap();
    let run = || {
        let mut rt = runtime();
        let report = serve(&mut rt, &stream, Policy::ConfigAffinity);
        (report.metrics.clone(), report.latencies.clone())
    };
    assert_eq!(run(), run());
}

/// A weighted-mix strategy over the serving shape classes.
fn class_picks() -> impl Strategy<Value = Vec<usize>> {
    let classes = mixed_serving_classes().len();
    prop::collection::vec(0usize..classes, 20..120)
}

fn stream_from_picks(picks: &[usize], mean_gap: u64, seed: u64) -> Vec<TrafficRequest> {
    let classes: Vec<TrafficClass> = mixed_serving_classes();
    picks
        .iter()
        .enumerate()
        .map(|(i, &c)| TrafficRequest {
            id: i as u64,
            accelerator: classes[c].accelerator.clone(),
            spec: classes[c].spec,
            arrival: i as u64 * mean_gap,
            seed: seed ^ (i as u64),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any deterministic request stream, config-affinity routing never
    /// writes more setup registers than the FIFO baseline — a warm-start
    /// dispatch can only elide writes a cold dispatch performs.
    #[test]
    fn affinity_never_writes_more_than_fifo(
        picks in class_picks(),
        gap in 1u64..400,
        seed in any::<u64>(),
    ) {
        let stream = stream_from_picks(&picks, gap, seed);
        let mut rt = runtime();
        let fifo = serve(&mut rt, &stream, Policy::Fifo);
        let affinity = serve(&mut rt, &stream, Policy::ConfigAffinity);
        prop_assert_eq!(fifo.metrics.check_failures, 0);
        prop_assert_eq!(affinity.metrics.check_failures, 0);
        prop_assert!(
            affinity.metrics.setup_writes <= fifo.metrics.setup_writes,
            "affinity wrote {} setup registers, fifo {}",
            affinity.metrics.setup_writes,
            fifo.metrics.setup_writes
        );
        // per-request, the warm dispatch never exceeds the cold cost
        for c in &affinity.completions {
            prop_assert!(c.emitted_writes <= c.cold_writes);
        }
    }
}
