//! Differential testing of the parallel serve engine against the
//! deterministic oracle.
//!
//! The single-threaded simulated-clock loop (`ServeMode::Deterministic`)
//! is the *oracle*: its per-request outcomes define correct behaviour.
//! The sharded parallel engine (`ServeMode::Parallel`) must reproduce
//! those outcomes exactly — writes, cycles, latencies, prediction
//! samples, routing — at every thread budget. This suite pins that
//! contract over every `serve_bench` stream × policy pair (at reduced
//! request counts), and property-tests it over random streams, pool
//! shapes, slack horizons, and batch settings with the thread budget
//! varied across 1/2/8.

use configuration_wall::prelude::*;
use configuration_wall::runtime::{measured_class_service_times, Policy, ServeMode, ServeReport};
use configuration_wall::workloads::{
    mixed_platform_classes, mixed_serving_classes, shape_heavy_classes, BurstyConfig,
    ClosedLoopConfig, TrafficClass, TrafficRequest,
};
use proptest::prelude::*;

/// The thread budgets the contract is pinned at: fully serial, fewer
/// executors than workers, and one executor per worker with headroom.
const THREADS: [usize; 3] = [1, 2, 8];

const POLICIES: [Policy; 5] = [
    Policy::Fifo,
    Policy::FifoElide,
    Policy::ConfigAffinity,
    Policy::Cost,
    Policy::Thermal,
];

fn uniform_pool() -> PoolConfig {
    PoolConfig::new(vec![
        AcceleratorDescriptor::gemmini(),
        AcceleratorDescriptor::opengemm(),
    ])
    .with_workers_per_accelerator(2)
}

fn hetero_pool() -> PoolConfig {
    PoolConfig::new(vec![
        AcceleratorDescriptor::gemmini(),
        AcceleratorDescriptor::opengemm(),
    ])
    .with_workers_per_accelerator(2)
    .with_variant("gemmini", AcceleratorDescriptor::gemmini_turbo())
    .with_variant("opengemm", AcceleratorDescriptor::opengemm_lite())
}

fn contention_pool() -> PoolConfig {
    PoolConfig::new(vec![
        AcceleratorDescriptor::gemmini().with_reference_timing(),
        AcceleratorDescriptor::opengemm().with_reference_timing(),
    ])
    .with_workers_per_accelerator(2)
}

/// Outcome-by-outcome equality: aggregate metrics (module-cache
/// provenance included — both serves run on fresh runtimes), per-request
/// latencies and prediction samples, and per-request completions down to
/// routing, emitted/cold writes, and simulated cycles.
fn assert_identical(oracle: &ServeReport, parallel: &ServeReport, context: &str) {
    assert_eq!(
        oracle.metrics, parallel.metrics,
        "{context}: metrics diverge"
    );
    assert_eq!(
        oracle.latencies, parallel.latencies,
        "{context}: latencies diverge"
    );
    assert_eq!(
        oracle.predictions, parallel.predictions,
        "{context}: prediction samples diverge"
    );
    assert_eq!(oracle.completions.len(), parallel.completions.len());
    for (slot, (o, p)) in oracle
        .completions
        .iter()
        .zip(&parallel.completions)
        .enumerate()
    {
        assert_eq!(
            o.worker, p.worker,
            "{context}: request {slot} routed differently"
        );
        assert_eq!(
            o.emitted_writes, p.emitted_writes,
            "{context}: request {slot} emitted different writes"
        );
        assert_eq!(
            o.cold_writes, p.cold_writes,
            "{context}: request {slot} reports different cold writes"
        );
        assert_eq!(
            o.counters.cycles, p.counters.cycles,
            "{context}: request {slot} took different cycles"
        );
        assert_eq!(
            o.check_error.is_none(),
            p.check_error.is_none(),
            "{context}: request {slot} check outcomes diverge"
        );
        assert_eq!(
            o.sim_error.is_none(),
            p.sim_error.is_none(),
            "{context}: request {slot} sim outcomes diverge"
        );
    }
}

/// Serves `stream` under `cfg` on the oracle once, then on the parallel
/// engine at each thread budget in `threads` — every serve on a fresh
/// runtime, so cache statistics match — and asserts each parallel report
/// is identical to the oracle's.
fn serve_both(
    pool: &PoolConfig,
    stream: &[TrafficRequest],
    cfg: &ServeConfig,
    threads: &[usize],
    context: &str,
) {
    let oracle = Runtime::new(pool.clone())
        .serve(stream, cfg)
        .expect("oracle serve succeeds");
    for &t in threads {
        let parallel = Runtime::new(pool.clone())
            .serve(
                stream,
                &ServeConfig {
                    mode: ServeMode::Parallel { threads: t },
                    ..cfg.clone()
                },
            )
            .expect("parallel serve succeeds");
        assert_identical(&oracle, &parallel, &format!("{context} x{t}"));
    }
}

/// Every policy × thread budget over one stream.
fn check_stream(name: &str, pool: PoolConfig, stream: &[TrafficRequest], threads: &[usize]) {
    for policy in POLICIES {
        let cfg = ServeConfig {
            policy,
            ..ServeConfig::default()
        };
        serve_both(
            &pool,
            stream,
            &cfg,
            threads,
            &format!("{name}/{}", policy.label()),
        );
    }
}

fn open_loop(
    classes: Vec<TrafficClass>,
    requests: usize,
    mean_gap: u64,
    seed: u64,
) -> Vec<TrafficRequest> {
    TrafficConfig {
        classes,
        requests,
        mean_gap,
        seed,
    }
    .open_loop_stream()
    .expect("valid mix")
}

#[test]
fn mixed_stream_matches() {
    // the flagship stream gets the full thread sweep; the other streams
    // pin the inline (1) and shared-executor (2) paths and leave the
    // wide budget to the proptests and the CI differential smoke
    check_stream(
        "mixed",
        uniform_pool(),
        &open_loop(mixed_serving_classes(), 400, 200, 0xC0FFEE),
        &THREADS,
    );
}

#[test]
fn mixed_stream_matches_with_batching() {
    // the batch scan is the one decision that reads ahead in the group's
    // arrival order — pin it separately from the plain per-policy sweep
    let stream = open_loop(mixed_serving_classes(), 400, 200, 0xC0FFEE);
    for policy in [Policy::FifoElide, Policy::ConfigAffinity] {
        let cfg = ServeConfig {
            policy,
            max_batch: 8,
            ..ServeConfig::default()
        };
        serve_both(
            &uniform_pool(),
            &stream,
            &cfg,
            &[2, 8],
            &format!("mixed+batch/{}", policy.label()),
        );
    }
}

#[test]
fn shape_heavy_stream_matches() {
    check_stream(
        "shape_heavy",
        uniform_pool(),
        &open_loop(shape_heavy_classes(), 300, 400, 0x5EED),
        &[1, 2],
    );
}

#[test]
fn bursty_stream_matches() {
    let stream = BurstyConfig {
        classes: mixed_serving_classes(),
        requests: 300,
        burst_len: 24,
        burst_gap: 60,
        idle_gap: 12_000,
        seed: 0xB0257,
    }
    .stream()
    .expect("valid bursty mix");
    check_stream("bursty", uniform_pool(), &stream, &[1, 2]);
}

fn closed_loop_config(requests: usize) -> ClosedLoopConfig {
    ClosedLoopConfig {
        classes: mixed_serving_classes(),
        requests,
        clients: 12,
        think_time: 400,
        service_estimate: 250,
        seed: 0xC105ED,
    }
}

#[test]
fn closed_loop_stream_matches() {
    let stream = closed_loop_config(300)
        .stream()
        .expect("valid closed-loop mix");
    check_stream("closed_loop", uniform_pool(), &stream, &[1, 2]);
}

#[test]
fn closed_loop_measured_stream_matches() {
    // calibrated exactly as serve_bench builds the stream: measured mean
    // service times from a fifo+elide serve of the static-estimate stream
    let cfg = closed_loop_config(300);
    let calibration_stream = cfg.stream().expect("valid closed-loop mix");
    let calibration = Runtime::new(uniform_pool())
        .serve(
            &calibration_stream,
            &ServeConfig {
                policy: Policy::FifoElide,
                ..ServeConfig::default()
            },
        )
        .expect("calibration serve succeeds");
    let service_times = measured_class_service_times(
        &cfg.classes,
        &calibration_stream,
        &calibration,
        cfg.service_estimate,
    );
    let stream = cfg
        .stream_with_service_times(&service_times)
        .expect("valid measured closed-loop mix");
    check_stream("closed_loop_measured", uniform_pool(), &stream, &[1, 2]);
}

#[test]
fn hetero_stream_matches() {
    check_stream(
        "hetero",
        hetero_pool(),
        &open_loop(mixed_platform_classes(), 300, 300, 0x4E7E60),
        &[1, 2],
    );
}

#[test]
fn contention_stream_matches() {
    // the reference timing models (contention + DVFS) make observed
    // cycles load-dependent — the hardest stream for the refiner, and
    // therefore for outcome equality through the shards' observe order
    check_stream(
        "contention",
        contention_pool(),
        &open_loop(mixed_serving_classes(), 250, 120, 0xC047E47),
        &[1, 2],
    );
}

fn stream_from_picks(
    classes: &[TrafficClass],
    picks: &[usize],
    mean_gap: u64,
    seed: u64,
) -> Vec<TrafficRequest> {
    picks
        .iter()
        .enumerate()
        .map(|(i, &c)| TrafficRequest {
            id: i as u64,
            accelerator: classes[c].accelerator.clone(),
            spec: classes[c].spec,
            arrival: i as u64 * mean_gap,
            seed: seed ^ (i as u64),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The contract holds on arbitrary open-loop streams over arbitrary
    /// pool shapes (1–3 workers per family, optionally heterogeneous),
    /// slack horizons, and batch settings, at every thread budget.
    #[test]
    fn parallel_matches_the_oracle_on_random_streams(
        picks in prop::collection::vec(0usize..6, 20..100),
        gap in 1u64..400,
        seed in any::<u64>(),
        workers in 1usize..4,
        hetero in any::<bool>(),
        slack in 64u64..1024,
        max_batch in 1usize..8,
        policy_idx in 0usize..5,
        threads_idx in 0usize..3,
    ) {
        let stream = stream_from_picks(&mixed_serving_classes(), &picks, gap, seed);
        let mut pool = PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ])
        .with_workers_per_accelerator(workers);
        if hetero && workers >= 2 {
            pool = pool
                .with_variant("gemmini", AcceleratorDescriptor::gemmini_turbo())
                .with_variant("opengemm", AcceleratorDescriptor::opengemm_lite());
        }
        let cfg = ServeConfig {
            policy: POLICIES[policy_idx],
            load_slack: slack,
            batch_cutoff: Some(slack),
            max_batch,
            ..ServeConfig::default()
        };
        serve_both(&pool, &stream, &cfg, &[THREADS[threads_idx]], "random open-loop");
    }

    /// The same property under bursty arrivals — deep queues make the
    /// shards' completion-pull and retire order work hardest.
    #[test]
    fn parallel_matches_the_oracle_on_random_bursty_streams(
        requests in 20usize..80,
        burst_len in 1usize..24,
        burst_gap in 0u64..100,
        idle_gap in 0u64..20_000,
        seed in any::<u64>(),
        policy_idx in 0usize..5,
        threads_idx in 0usize..3,
    ) {
        let stream = BurstyConfig {
            classes: mixed_serving_classes(),
            requests,
            burst_len,
            burst_gap,
            idle_gap,
            seed,
        }
        .stream()
        .unwrap();
        let cfg = ServeConfig {
            policy: POLICIES[policy_idx],
            ..ServeConfig::default()
        };
        serve_both(&uniform_pool(), &stream, &cfg, &[THREADS[threads_idx]], "random bursty");
    }
}
