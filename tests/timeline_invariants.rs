//! Property tests for [`Timeline`] invariants.
//!
//! The renderer (and every consumer of `cycles_of` / `end`) assumes that
//! each lane's spans are sorted, half-open and nonempty, non-overlapping,
//! and that adjacent same-activity spans have been merged. Those
//! assumptions were previously untested; here they are checked over
//! arbitrary recorded runs — both synthetic record sequences and real
//! traced machine executions under the rich timing model.

use configuration_wall::sim::{
    regmap, AccelParams, AccelSim, Activity, ContentionParams, DvfsParams, HostModel, Machine,
    ProgramBuilder, Span, Timeline, TimingModel,
};
use proptest::prelude::*;

/// Asserts the renderer's lane invariants.
fn check_lane(lane: &[Span], what: &str) {
    for s in lane {
        assert!(s.start < s.end, "{what}: empty or inverted span {s:?}");
    }
    for w in lane.windows(2) {
        assert!(
            w[0].end <= w[1].start,
            "{what}: unsorted or overlapping spans {w:?}"
        );
        assert!(
            w[0].end < w[1].start || w[0].activity != w[1].activity,
            "{what}: unmerged adjacent same-activity spans {w:?}"
        );
    }
}

fn check_timeline(t: &Timeline) {
    check_lane(&t.host, "host");
    check_lane(&t.accel, "accel");
    // end() is the maximum recorded end
    let max_end = t
        .host
        .iter()
        .chain(&t.accel)
        .map(|s| s.end)
        .max()
        .unwrap_or(0);
    assert_eq!(t.end(), max_end);
    // cycles_of sums exactly the matching spans
    for activity in [
        Activity::Calc,
        Activity::Config,
        Activity::Stall,
        Activity::Busy,
    ] {
        let lane = if activity == Activity::Busy {
            &t.accel
        } else {
            &t.host
        };
        let expected: u64 = lane
            .iter()
            .filter(|s| s.activity == activity)
            .map(|s| s.end - s.start)
            .sum();
        assert_eq!(t.cycles_of(activity), expected, "{activity:?}");
    }
    // rendering never panics, at narrow and wide widths
    for width in [1usize, 7, 72] {
        let _ = t.render(width);
    }
}

/// A machine whose timing model exercises contention push-back and DVFS
/// transitions (tight thresholds so short property runs hit every state).
fn timed_machine() -> Machine {
    let timing = TimingModel {
        contention: Some(ContentionParams {
            budget_bytes_per_cycle: 8,
            accel_bytes_per_cycle: 6,
        }),
        dvfs: Some(DvfsParams {
            warm_busy_cycles: 24,
            boost_busy_cycles: 96,
            cooldown_idle_cycles: 512,
            speed_pct: [50, 100, 150],
        }),
    };
    let mut m = Machine::new(
        HostModel::snitch_like(),
        AccelSim::with_timing(AccelParams::opengemm_like(), timing),
        0x20000,
    );
    for addr in 0..0x1000u64 {
        m.mem.write_i8(0x100 + addr, 1).unwrap();
        m.mem.write_i8(0x1100 + addr, 1).unwrap();
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary in-order record sequences (the only way the machine
    /// feeds a timeline) always leave both lanes sorted, half-open,
    /// non-overlapping, and merged.
    #[test]
    fn recorded_runs_keep_lane_invariants(
        events in prop::collection::vec((0u8..4, 0u64..60, 0u64..12), 1..80),
    ) {
        let mut t = Timeline::new();
        let mut host_cursor = 0u64;
        let mut accel_cursor = 0u64;
        for &(kind, len, gap) in &events {
            match kind {
                0..=2 => {
                    let activity = match kind {
                        0 => Activity::Calc,
                        1 => Activity::Config,
                        _ => Activity::Stall,
                    };
                    let start = host_cursor + gap;
                    // zero-length records must be dropped, not stored
                    t.record_host(start, start + len, activity);
                    host_cursor = start + len;
                }
                _ => {
                    let start = accel_cursor + gap;
                    t.record_accel(start, start + len);
                    // the contention model may stretch the last window
                    let stretched = start + len + (gap % 3);
                    t.extend_accel(stretched);
                    accel_cursor = accel_cursor.max(stretched);
                }
            }
        }
        check_timeline(&t);
    }

    /// Timelines traced from real machine executions — random tile
    /// sequences with and without awaits between them, under contention
    /// and DVFS — satisfy the same invariants, and their lane sums agree
    /// with the machine's counters.
    #[test]
    fn traced_machine_runs_keep_lane_invariants(
        tiles in prop::collection::vec((0usize..3, 0u8..2), 1..6),
    ) {
        let sizes = [4i64, 16, 32];
        let mut p = ProgramBuilder::new();
        let r = p.reg();
        for (i, &(size_pick, await_after)) in tiles.iter().enumerate() {
            let size = sizes[size_pick];
            for (csr, v) in [
                (regmap::A_ADDR, 0x100),
                (regmap::B_ADDR, 0x1100),
                (regmap::C_ADDR, 0x2100 + 0x1000 * i as i64),
                (regmap::M, size),
                (regmap::N, size),
                (regmap::K, size),
                (regmap::STRIDE_A, size),
                (regmap::STRIDE_B, size),
                (regmap::STRIDE_C, 4 * size),
            ] {
                p.li(r, v);
                p.csr_write(csr, r);
            }
            p.launch();
            // without an await, the next tile's writes overlap this busy
            // window and the contention model stretches it
            if await_after == 1 {
                p.await_idle();
            }
        }
        p.await_idle();
        p.halt();
        let program = p.finish();

        let mut m = timed_machine();
        let mut t = Timeline::new();
        let c = m.run_traced(&program, 1_000_000, &mut t).unwrap();
        check_timeline(&t);
        prop_assert_eq!(t.cycles_of(Activity::Config), c.config_cycles);
        prop_assert_eq!(t.cycles_of(Activity::Calc), c.calc_cycles);
        prop_assert_eq!(t.cycles_of(Activity::Stall), c.stall_cycles);
        prop_assert_eq!(t.cycles_of(Activity::Busy), m.accel.stats.busy_cycles);
        prop_assert_eq!(t.end(), c.cycles);
        prop_assert_eq!(t.contention_cycles(), c.contention_cycles);
        prop_assert_eq!(c.launches, tiles.len() as u64);
    }
}
