//! Cross-crate integration tests: the full Figure 8 pipeline from workload
//! generation to simulated execution on both evaluation platforms.

use configuration_wall::core::pipeline::{pipeline, OptLevel};
use configuration_wall::core::{verify_discipline, AccelFilter};
use configuration_wall::prelude::*;
use configuration_wall::sim::Counters;
use configuration_wall::workloads::{
    check_result, fill_inputs, gemmini_ws_ir, matmul_ir, tiled_collapsed_ir, tiled_nested_ir,
};

fn run(
    desc: &AcceleratorDescriptor,
    spec: &MatmulSpec,
    module: configuration_wall::ir::Module,
    level: OptLevel,
) -> Counters {
    let mut module = module;
    let filter = if desc.supports_overlap() {
        AccelFilter::All
    } else {
        AccelFilter::Only(vec![])
    };
    pipeline(level, filter).run(&mut module).expect("pipeline");
    configuration_wall::ir::verify(&module).expect("verifies");
    verify_discipline(&module).expect("accfg discipline preserved");
    let layout = MatmulLayout::at(0x1000, spec);
    let prog = compile(
        &module,
        "matmul",
        desc,
        &[layout.a_addr, layout.b_addr, layout.c_addr],
    )
    .expect("lowers");
    let mut machine = Machine::new(
        desc.host.clone(),
        AccelSim::new(desc.accel.clone()),
        layout.end as usize,
    );
    fill_inputs(&mut machine.mem, spec, &layout, 0xAB).expect("inputs");
    let counters = machine.run(&prog, 1_000_000_000).expect("simulates");
    check_result(&machine.mem, spec, &layout).expect("correct result");
    counters
}

#[test]
fn opengemm_all_levels_functional_and_ordered() {
    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::opengemm_paper(32).unwrap();
    let base = run(&desc, &spec, matmul_ir(&desc, &spec), OptLevel::Base);
    let dedup = run(&desc, &spec, matmul_ir(&desc, &spec), OptLevel::Dedup);
    let overlap = run(&desc, &spec, matmul_ir(&desc, &spec), OptLevel::Overlap);
    let all = run(&desc, &spec, matmul_ir(&desc, &spec), OptLevel::All);

    // every level launches the same tiles
    for c in [&dedup, &overlap, &all] {
        assert_eq!(c.launches, base.launches);
    }
    // dedup strictly reduces configuration instructions
    assert!(dedup.insts_config < base.insts_config);
    // overlap produces genuinely overlapped cycles
    assert!(overlap.overlap_cycles > base.overlap_cycles);
    // cycle ordering: all <= dedup <= base and all <= overlap <= base
    assert!(dedup.cycles < base.cycles);
    assert!(overlap.cycles < base.cycles);
    assert!(all.cycles <= dedup.cycles);
    assert!(all.cycles <= overlap.cycles);
}

#[test]
fn gemmini_dedup_wins_but_no_overlap_possible() {
    let desc = AcceleratorDescriptor::gemmini();
    let spec = MatmulSpec::gemmini_paper(128).unwrap();
    let base = run(&desc, &spec, gemmini_ws_ir(&desc, &spec), OptLevel::Base);
    let dedup = run(&desc, &spec, gemmini_ws_ir(&desc, &spec), OptLevel::Dedup);
    // sequential-configuration hardware: overlap is filtered out, so the
    // "All" level degenerates to dedup
    let all = run(&desc, &spec, gemmini_ws_ir(&desc, &spec), OptLevel::All);
    assert!(dedup.cycles < base.cycles);
    assert_eq!(all.cycles, dedup.cycles);
    assert_eq!(base.overlap_cycles, 0);
    assert_eq!(all.overlap_cycles, 0);
}

#[test]
fn collapsed_and_nested_loops_agree_functionally() {
    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::new((32, 32, 32), (8, 8, 8)).unwrap();
    for level in OptLevel::ALL_LEVELS {
        let collapsed = run(&desc, &spec, tiled_collapsed_ir(&desc, &spec), level);
        let nested = run(&desc, &spec, tiled_nested_ir(&desc, &spec), level);
        assert_eq!(collapsed.launches, nested.launches, "level={level:?}");
    }
}

#[test]
fn cross_target_results_are_identical() {
    // the same logical matmul computes the same C on both platforms
    let size = 64;
    let og_desc = AcceleratorDescriptor::opengemm();
    let og_spec = MatmulSpec::opengemm_paper(size).unwrap();
    let gm_desc = AcceleratorDescriptor::gemmini();
    let gm_spec = MatmulSpec::gemmini_paper(size).unwrap();

    let og_layout = MatmulLayout::at(0x1000, &og_spec);
    let gm_layout = MatmulLayout::at(0x1000, &gm_spec);
    assert_eq!(og_layout, gm_layout); // same problem, same placement

    let get_c = |desc: &AcceleratorDescriptor,
                 spec: &MatmulSpec,
                 module: configuration_wall::ir::Module| {
        let mut module = module;
        pipeline(OptLevel::Dedup, AccelFilter::All)
            .run(&mut module)
            .unwrap();
        let layout = MatmulLayout::at(0x1000, spec);
        let prog = compile(
            &module,
            "matmul",
            desc,
            &[layout.a_addr, layout.b_addr, layout.c_addr],
        )
        .unwrap();
        let mut machine = Machine::new(
            desc.host.clone(),
            AccelSim::new(desc.accel.clone()),
            layout.end as usize,
        );
        fill_inputs(&mut machine.mem, spec, &layout, 0xCAFE).unwrap();
        machine.run(&prog, 1_000_000_000).unwrap();
        machine
            .mem
            .read_i32_slice(layout.c_addr as u64, (spec.m * spec.n) as usize)
            .unwrap()
    };
    let og_c = get_c(&og_desc, &og_spec, matmul_ir(&og_desc, &og_spec));
    let gm_c = get_c(&gm_desc, &gm_spec, gemmini_ws_ir(&gm_desc, &gm_spec));
    assert_eq!(og_c, gm_c);
}

#[test]
fn optimizations_never_change_config_bytes_observed_at_launch() {
    // the interpreter-level oracle, applied to the real workload IR: every
    // optimization level produces identical launch traces
    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::opengemm_paper(16).unwrap();
    let layout = MatmulLayout::at(0x1000, &spec);
    let args = [layout.a_addr, layout.b_addr, layout.c_addr];
    let reference =
        configuration_wall::core::interpret(&matmul_ir(&desc, &spec), "matmul", &args, 10_000_000)
            .unwrap();
    for level in OptLevel::ALL_LEVELS {
        let mut m = matmul_ir(&desc, &spec);
        pipeline(level, AccelFilter::All).run(&mut m).unwrap();
        let t = configuration_wall::core::interpret(&m, "matmul", &args, 10_000_000).unwrap();
        assert_eq!(t.launches, reference.launches, "level={level:?}");
    }
}

/// Per-pass translation validation over every real pipeline: each rewrite
/// of each optimization level, on both platforms and all three loop
/// structures, must preserve the reaching configuration state of every
/// launch (the abstract analogue of the interpreter oracle above, proven
/// for all inputs at once).
#[test]
fn every_pipeline_pass_translation_validates_on_real_workloads() {
    use configuration_wall::analyze::pass_validator;
    let og_desc = AcceleratorDescriptor::opengemm();
    let og_spec = MatmulSpec::opengemm_paper(32).unwrap();
    let gm_desc = AcceleratorDescriptor::gemmini();
    let gm_spec = MatmulSpec::gemmini_paper(128).unwrap();
    let cases = [
        ("opengemm/matmul", &og_desc, matmul_ir(&og_desc, &og_spec)),
        (
            "opengemm/nested",
            &og_desc,
            tiled_nested_ir(&og_desc, &og_spec),
        ),
        (
            "opengemm/collapsed",
            &og_desc,
            tiled_collapsed_ir(&og_desc, &og_spec),
        ),
        ("gemmini/matmul", &gm_desc, matmul_ir(&gm_desc, &gm_spec)),
        ("gemmini/ws", &gm_desc, gemmini_ws_ir(&gm_desc, &gm_spec)),
    ];
    for (name, desc, module) in cases {
        for level in OptLevel::ALL_LEVELS {
            let mut m = module.clone();
            let filter = if desc.supports_overlap() {
                AccelFilter::All
            } else {
                AccelFilter::Only(vec![])
            };
            let mut pm = pipeline(level, filter);
            pm.validate_each(pass_validator());
            pm.run(&mut m)
                .unwrap_or_else(|e| panic!("{name} at {level:?} failed validation: {e}"));
        }
    }
}

/// A deliberately-broken pass — every integer constant smashed to 0, which
/// is valid IR with changed semantics — must be rejected by translation
/// validation with a per-launch diff naming the accelerator, the field,
/// and the expected/actual abstract values.
#[test]
fn broken_pass_is_caught_with_a_named_launch_diff() {
    use configuration_wall::analyze::{pass_validator, validate_translation, ValidationError};
    use configuration_wall::ir::{Attribute, Changed, Module, Opcode, Pass, PassManager};

    struct ConstSmashPass;
    impl Pass for ConstSmashPass {
        fn name(&self) -> &str {
            "const-smash"
        }
        fn run(&self, m: &mut Module) -> Changed {
            for func in m.funcs().to_vec() {
                for op in m.walk_collect(func) {
                    if m.op(op).opcode == Opcode::Constant {
                        m.set_attr(op, "value", Attribute::Int(0));
                    }
                }
            }
            Changed::Yes
        }
    }

    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::opengemm_paper(16).unwrap();
    let before = matmul_ir(&desc, &spec);

    // through the pipeline hook: the run aborts, attributed to the pass
    let mut smashed = before.clone();
    let mut pm = PassManager::new();
    pm.add(ConstSmashPass);
    pm.validate_each(pass_validator());
    let err = pm.run(&mut smashed).expect_err("smash must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("const-smash"), "{msg}");
    assert!(msg.contains("Known(const 0)"), "{msg}");

    // and the structured diff names everything needed to debug it
    let err = validate_translation(&before, &smashed).expect_err("diffs");
    let ValidationError::FieldDiffs(diffs) = &err else {
        panic!("expected per-launch field diffs, got {err}");
    };
    let diff = &diffs[0];
    assert_eq!(diff.accelerator, "opengemm");
    assert!(!diff.field.is_empty());
    assert!(
        diff.expected.starts_with("Known(const "),
        "{}",
        diff.expected
    );
    assert_eq!(diff.actual, "Known(const 0)");
    assert_ne!(diff.expected, diff.actual);
}

#[test]
fn larger_problems_are_less_configuration_bound() {
    // the core thesis: I_OC grows with size, performance approaches peak
    let desc = AcceleratorDescriptor::opengemm();
    let mut last_perf = 0.0;
    for size in [16, 32, 64, 128] {
        let spec = MatmulSpec::opengemm_paper(size).unwrap();
        let c = run(&desc, &spec, matmul_ir(&desc, &spec), OptLevel::All);
        let perf = c.ops_per_cycle(spec.total_ops() as u64);
        assert!(perf > last_perf, "size={size}: {perf} !> {last_perf}");
        last_perf = perf;
    }
    assert!(last_perf < desc.accel.peak_ops_per_cycle() as f64);
}
