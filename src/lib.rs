//! # configuration-wall
//!
//! A from-scratch Rust reproduction of *"The Configuration Wall:
//! Characterization and Elimination of Accelerator Configuration Overhead"*
//! (ASPLOS 2026): the configuration roofline model, the `accfg` compiler
//! abstraction with its deduplication and overlap optimizations, and the
//! simulated Gemmini-like / OpenGeMM-like evaluation platforms.
//!
//! This facade crate re-exports the workspace:
//!
//! - [`ir`] — MLIR-style SSA IR substrate (ops, builder, printer/parser,
//!   verifier, generic passes)
//! - [`core`] — the `accfg` dialect and its optimization passes
//! - [`analyze`] — static configuration-state analysis: reaching-config
//!   abstract interpretation, config-write lints, and per-pass
//!   translation validation
//! - [`sim`] — the cycle-level host + accelerator co-simulator
//! - [`targets`] — accelerator descriptors and IR → instruction lowering
//! - [`roofline`] — Equations 1–5 of the paper
//! - [`workloads`] — tiled-matmul IR generators, reference results, and
//!   request-stream traffic generation
//! - [`runtime`] — the config-affinity serving runtime: compiled-module
//!   cache, resident-state-aware dispatch, and pooled simulated workers
//! - [`store`] — the dependency-free append-only log store backing
//!   persistent warm starts (compiled modules + learned cost state)
//!
//! See the `examples/` directory for runnable end-to-end walkthroughs and
//! `crates/bench` for the binaries regenerating every table and figure.
//!
//! ```
//! use configuration_wall::prelude::*;
//!
//! let desc = AcceleratorDescriptor::opengemm();
//! let spec = MatmulSpec::opengemm_paper(16)?;
//! let mut module = matmul_ir(&desc, &spec);
//! pipeline(OptLevel::All, AccelFilter::All).run(&mut module).unwrap();
//! assert!(desc.supports_overlap());
//! # Ok::<(), configuration_wall::workloads::SpecError>(())
//! ```

#![warn(missing_docs)]

pub use accfg as core;
pub use accfg_analyze as analyze;
pub use accfg_ir as ir;
pub use accfg_roofline as roofline;
pub use accfg_runtime as runtime;
pub use accfg_sim as sim;
pub use accfg_store as store;
pub use accfg_targets as targets;
pub use accfg_workloads as workloads;

/// The most common imports for building, optimizing, lowering, and running
/// an accelerator kernel.
pub mod prelude {
    pub use accfg::pipeline::{pipeline, OptLevel};
    pub use accfg::{interpret, AccelFilter};
    pub use accfg_ir::{FuncBuilder, Module, PassManager, Type};
    pub use accfg_roofline::{ConfigRoofline, ProcessorRoofline, Roofsurface};
    pub use accfg_runtime::{Policy, PoolConfig, Runtime, ServeConfig, ServeMode};
    pub use accfg_sim::{AccelParams, AccelSim, HostModel, Machine, TimingModel};
    pub use accfg_targets::{compile, AcceleratorDescriptor};
    pub use accfg_workloads::{matmul_ir, MatmulLayout, MatmulSpec, TrafficConfig};
}
