//! The reaching-configuration-state engine.
//!
//! A forward abstract interpretation over the structured IR mirroring the
//! concrete semantics of `accfg::interp`: configuration registers persist
//! per accelerator across setups, launches observe the accelerator's whole
//! register file, and ops with unknown side effects poison every register
//! (the interpreter's `CLOBBER_POISON`). Branches of `scf.if` join, and
//! `scf.for` bodies run to a fixpoint over the back-edge — the same
//! shrinking-intersection semantics as `accfg::dedup`'s `known_fields`,
//! generalized from "state visible to one setup" to "register file visible
//! to every launch".

use accfg::{accelerator, setup_fields, state_effect, StateEffect};
use accfg_ir::analysis::value_visible_at;
use accfg_ir::{Module, OpId, Opcode, ValueDef, ValueId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Abstract value of one configuration field at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// Every path's last write to the field was SSA value `v`.
    Known(ValueId),
    /// The field holds a well-defined value on every path, but not a
    /// single SSA value (branch or loop join, or partial writes).
    Divergent,
    /// An op with unknown side effects may have overwritten the field
    /// since its last setup write.
    Clobbered,
}

impl AbsVal {
    fn join(a: AbsVal, b: AbsVal) -> AbsVal {
        match (a, b) {
            (AbsVal::Known(x), AbsVal::Known(y)) if x == y => AbsVal::Known(x),
            (AbsVal::Clobbered, _) | (_, AbsVal::Clobbered) => AbsVal::Clobbered,
            _ => AbsVal::Divergent,
        }
    }
}

/// An SSA value resolved to a symbol comparable across two modules (SSA
/// ids are meaningless across a rewrite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolved {
    /// An `arith.constant`.
    Const(i64),
    /// The n-th argument of the enclosing function.
    Arg(usize),
    /// Anything else: a computed value.
    Opaque,
}

/// Resolves `v` to a cross-module-comparable symbol.
pub fn resolve(m: &Module, v: ValueId) -> Resolved {
    match m.value(v).def {
        ValueDef::OpResult { op, .. } if m.op(op).opcode == Opcode::Constant => {
            match m.int_attr(op, "value") {
                Some(c) => Resolved::Const(c),
                None => Resolved::Opaque,
            }
        }
        ValueDef::BlockArg { block, index } => match m.block_parent_op(block) {
            Some(parent) if m.op(parent).opcode == Opcode::Func => Resolved::Arg(index as usize),
            _ => Resolved::Opaque,
        },
        _ => Resolved::Opaque,
    }
}

/// Renders an abstract value with its resolution, for diagnostics.
pub fn describe(m: &Module, val: AbsVal) -> String {
    match val {
        AbsVal::Known(v) => match resolve(m, v) {
            Resolved::Const(c) => format!("Known(const {c})"),
            Resolved::Arg(i) => format!("Known(arg {i})"),
            Resolved::Opaque => "Known(<computed>)".into(),
        },
        AbsVal::Divergent => "Divergent".into(),
        AbsVal::Clobbered => "Clobbered".into(),
    }
}

/// Field name → abstract value, for one accelerator.
pub type FieldState = BTreeMap<String, AbsVal>;

/// The reaching register file at one `accfg.launch` site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchState {
    /// The launch op.
    pub op: OpId,
    /// Accelerator launched.
    pub accelerator: String,
    /// The abstract register file the launch observes.
    pub fields: FieldState,
}

/// One static setup-field write site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteSite {
    /// The setup op.
    pub op: OpId,
    /// Index of the field within the setup's field list.
    pub index: usize,
    /// Accelerator configured.
    pub accelerator: String,
    /// Field written.
    pub field: String,
    /// SSA value written.
    pub value: ValueId,
    /// Executions per function call the analysis can *guarantee*
    /// (constant-trip loop nests; 0 under `scf.if` or unbounded loops).
    pub mult: u64,
    /// The written value provably equals the reaching register value on
    /// every path (the condition `accfg::dedup` eliminates on).
    pub redundant: bool,
    /// Overwritten before any launch observes it, on every path.
    pub dead: bool,
}

/// Analysis results for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncConfig {
    /// The function's `sym_name`.
    pub func: String,
    /// Per static launch site, in pre-order walk order.
    pub launches: Vec<LaunchState>,
    /// Every static setup-field write site, in walk order.
    pub writes: Vec<WriteSite>,
    /// Write *executions* (beyond those of `redundant`/`dead` sites)
    /// proven value-resident from the second iteration of a constant-trip
    /// loop onward: a write of an iteration-invariant value that the
    /// previous iteration already placed in the register. The per-site
    /// flags cannot see these — iteration one is live — so they carry a
    /// separate execution count, partitioned across loop nests so no
    /// execution is counted twice.
    pub steady_elidable: u64,
}

/// Accelerator name → its abstract register file. Bottom (unreachable) is
/// never materialized: the engine only walks reachable structure.
type State = BTreeMap<String, FieldState>;

/// (accelerator, field) → write sites whose value is the field's current
/// last write on some path and has not yet been observed by a launch.
type Pending = BTreeMap<(String, String), BTreeSet<usize>>;

fn join_state(a: &State, b: &State) -> State {
    let mut out = State::new();
    let accels: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
    for accel in accels {
        let fa = a.get(accel);
        let fb = b.get(accel);
        let mut fields = FieldState::new();
        let names: BTreeSet<&String> = fa
            .map(|f| f.keys().collect::<BTreeSet<_>>())
            .unwrap_or_default()
            .into_iter()
            .chain(
                fb.map(|f| f.keys().collect::<BTreeSet<_>>())
                    .unwrap_or_default(),
            )
            .collect();
        for name in names {
            let va = fa.and_then(|f| f.get(name).copied());
            let vb = fb.and_then(|f| f.get(name).copied());
            let joined = match (va, vb) {
                (Some(x), Some(y)) => AbsVal::join(x, y),
                // written on one path only: well-defined per path, but the
                // other path leaves whatever was resident before
                (Some(AbsVal::Clobbered), None) | (None, Some(AbsVal::Clobbered)) => {
                    AbsVal::Clobbered
                }
                (Some(_), None) | (None, Some(_)) => AbsVal::Divergent,
                (None, None) => unreachable!("name came from one of the maps"),
            };
            fields.insert(name.clone(), joined);
        }
        out.insert(accel.clone(), fields);
    }
    out
}

fn join_pending(a: &Pending, b: &Pending) -> Pending {
    let mut out = a.clone();
    for (key, sites) in b {
        out.entry(key.clone()).or_default().extend(sites);
    }
    out
}

/// Evaluates `v` if it is an `arith.constant`.
fn const_val(m: &Module, v: ValueId) -> Option<i64> {
    if let ValueDef::OpResult { op, .. } = m.value(v).def {
        if m.op(op).opcode == Opcode::Constant {
            return m.int_attr(op, "value");
        }
    }
    None
}

/// Trip count of an `scf.for` with constant bounds, matching the
/// interpreter's `while iv < ub { iv += step.max(1) }`.
fn const_trip_count(m: &Module, op: OpId) -> Option<u64> {
    let operands = &m.op(op).operands;
    let lb = const_val(m, operands[0])?;
    let ub = const_val(m, operands[1])?;
    let step = const_val(m, operands[2])?.max(1);
    if ub <= lb {
        return Some(0);
    }
    Some(((ub - lb + step - 1) / step) as u64)
}

struct Engine<'m> {
    m: &'m Module,
    /// (setup op, field index) → index into `writes`.
    site_ids: HashMap<(OpId, usize), usize>,
    writes: Vec<WriteSite>,
    launches: Vec<LaunchState>,
    observed: BTreeSet<usize>,
    killed: BTreeSet<usize>,
    steady_elidable: u64,
}

impl<'m> Engine<'m> {
    fn new(m: &'m Module, func: OpId) -> Self {
        let mut site_ids = HashMap::new();
        let mut writes = Vec::new();
        for op in m.walk_collect(func) {
            if m.op(op).opcode != Opcode::AccfgSetup {
                continue;
            }
            let accel = accelerator(m, op);
            for (index, (field, value)) in setup_fields(m, op).into_iter().enumerate() {
                site_ids.insert((op, index), writes.len());
                writes.push(WriteSite {
                    op,
                    index,
                    accelerator: accel.clone(),
                    field,
                    value,
                    mult: 0,
                    redundant: false,
                    dead: false,
                });
            }
        }
        Self {
            m,
            site_ids,
            writes,
            launches: Vec::new(),
            observed: BTreeSet::new(),
            killed: BTreeSet::new(),
            steady_elidable: 0,
        }
    }

    fn exec_block(
        &mut self,
        block: accfg_ir::BlockId,
        state: &mut State,
        pending: &mut Pending,
        collect: bool,
        mult: u64,
        once_mult: u64,
    ) {
        for op in self.m.block_ops(block) {
            self.exec_op(op, state, pending, collect, mult, once_mult);
        }
    }

    /// `mult` is the guaranteed execution count of this program point per
    /// function call (products of constant trip counts). `once_mult` is the
    /// execution count *not already covered* by an enclosing loop's
    /// steady-state bound walk — a loop body keeps only its first
    /// iteration's share, because iterations two onward are credited by
    /// the [`Engine::bound_block`] pass triggered at that loop. The split
    /// partitions the iteration space so the steady counts never overlap.
    fn exec_op(
        &mut self,
        op: OpId,
        state: &mut State,
        pending: &mut Pending,
        collect: bool,
        mult: u64,
        once_mult: u64,
    ) {
        let m = self.m;
        match m.op(op).opcode {
            Opcode::AccfgSetup => {
                let accel = accelerator(m, op);
                for (index, (field, value)) in setup_fields(m, op).into_iter().enumerate() {
                    let site = self.site_ids[&(op, index)];
                    let key = (accel.clone(), field.clone());
                    let cur = state.get(&accel).and_then(|f| f.get(&field)).copied();
                    let redundant = cur == Some(AbsVal::Known(value));
                    if redundant {
                        // the register already holds this exact value: the
                        // earlier writes' effect persists, nothing is killed
                        pending.entry(key).or_default().insert(site);
                    } else {
                        if let Some(old) = pending.insert(key, BTreeSet::from([site])) {
                            if collect {
                                self.killed.extend(old);
                            }
                        }
                    }
                    if collect {
                        self.writes[site].mult = mult;
                        self.writes[site].redundant = redundant;
                    }
                    state
                        .entry(accel.clone())
                        .or_default()
                        .insert(field, AbsVal::Known(value));
                }
            }
            Opcode::AccfgLaunch => {
                let accel = accelerator(m, op);
                let fields = state.get(&accel).cloned().unwrap_or_default();
                if collect {
                    for val in fields.values() {
                        if let AbsVal::Known(v) = val {
                            // Known facts never outlive their value's scope
                            // — except constants, whose runtime value does
                            // not depend on where the defining op lives:
                            // region exits launder everything else first
                            debug_assert!(
                                matches!(resolve(m, *v), Resolved::Const(_))
                                    || value_visible_at(m, *v, op)
                            );
                        }
                    }
                    self.launches.push(LaunchState {
                        op,
                        accelerator: accel.clone(),
                        fields,
                    });
                }
                // the launch observes the accelerator's whole register file
                let observed_keys: Vec<_> = pending
                    .keys()
                    .filter(|(a, _)| *a == accel)
                    .cloned()
                    .collect();
                for key in observed_keys {
                    if let Some(sites) = pending.remove(&key) {
                        if collect {
                            self.observed.extend(sites);
                        }
                    }
                }
            }
            Opcode::If => {
                let mut then_state = state.clone();
                let mut then_pending = pending.clone();
                // branch bodies are not guaranteed to execute: mult 0
                self.exec_block(
                    m.body_block(op, 0),
                    &mut then_state,
                    &mut then_pending,
                    collect,
                    0,
                    0,
                );
                self.exec_block(m.body_block(op, 1), state, pending, collect, 0, 0);
                *state = join_state(&then_state, state);
                *pending = join_pending(&then_pending, pending);
            }
            Opcode::For => {
                let body = m.body_block(op, 0);
                let pre_state = state.clone();
                let pre_pending = pending.clone();
                let mut entry_state = pre_state.clone();
                let mut entry_pending = pre_pending.clone();
                // Kleene iteration over the back-edge; the chain is
                // non-decreasing in a finite lattice, so it converges —
                // the cap only guards against surprises, degrading to the
                // sound all-Clobbered post-fixpoint.
                let mut converged = false;
                for _ in 0..64 {
                    let mut s = entry_state.clone();
                    let mut p = entry_pending.clone();
                    self.exec_block(body, &mut s, &mut p, false, 0, 0);
                    let next_state = join_state(&pre_state, &s);
                    let next_pending = join_pending(&pre_pending, &p);
                    if next_state == entry_state && next_pending == entry_pending {
                        converged = true;
                        break;
                    }
                    entry_state = next_state;
                    entry_pending = next_pending;
                }
                if !converged {
                    for fields in entry_state.values_mut() {
                        for val in fields.values_mut() {
                            *val = AbsVal::Clobbered;
                        }
                    }
                }
                let trips = const_trip_count(m, op);
                let body_mult = mult.saturating_mul(trips.unwrap_or(0));
                // the body's first iteration stays this walk's to count;
                // iterations two onward belong to the steady pass below
                let body_once = if trips.is_some_and(|n| n >= 1) {
                    once_mult
                } else {
                    0
                };
                let mut s = entry_state;
                let mut p = entry_pending;
                self.exec_block(body, &mut s, &mut p, collect, body_mult, body_once);
                if trips.is_some_and(|n| n >= 1) {
                    // the loop provably runs: the body's exit state holds,
                    // with facts that cannot leave the region demoted
                    *state = self.launder(op, s);
                    *pending = p;
                } else {
                    // the loop may run zero times: join with the pre-state
                    *state = join_state(&pre_state, &s);
                    *pending = join_pending(&pre_pending, &p);
                }
                // From the second iteration on, the body re-enters over the
                // register state its previous iteration left behind: writes
                // of iteration-invariant values it already made are
                // value-resident there. Count those executions now that the
                // collecting walk above fixed the per-site flags (the walk
                // skips flagged sites, whose full multiplicity is already
                // accounted).
                if collect && converged && once_mult > 0 {
                    if let Some(n) = trips.filter(|&n| n >= 2) {
                        if let Some(steady) = self.steady_entry(op, body, &pre_state) {
                            let mut s = steady;
                            self.bound_block(body, &mut s, once_mult.saturating_mul(n - 1));
                        }
                    }
                }
            }
            _ => match state_effect(m, op) {
                StateEffect::Clobbers => {
                    // unknown side effects: poison every register that
                    // exists, like the interpreter's CLOBBER_POISON. The
                    // poisoned registers still *exist*, and existence is
                    // observable (a later launch records the key, and delta
                    // dispatch replays it), so pending writes count as
                    // observed: deleting them would change which registers
                    // a post-clobber launch sees.
                    for fields in state.values_mut() {
                        for val in fields.values_mut() {
                            *val = AbsVal::Clobbered;
                        }
                    }
                    let sites: Vec<_> = pending.values().flatten().copied().collect();
                    pending.clear();
                    if collect {
                        self.observed.extend(sites);
                    }
                }
                StateEffect::Preserves | StateEffect::Accfg | StateEffect::Structural => {}
            },
        }
    }

    /// Demotes `Known` facts that cannot cross `for_op`'s back edge: a
    /// value defined inside the body names *this* iteration's computation,
    /// while the register holds the *previous* iteration's — only values
    /// visible before the loop, or constants, denote the same runtime
    /// value in both. Everything else degrades to `Divergent`.
    fn launder(&self, for_op: OpId, mut s: State) -> State {
        for fields in s.values_mut() {
            for val in fields.values_mut() {
                if let AbsVal::Known(v) = *val {
                    let invariant = matches!(resolve(self.m, v), Resolved::Const(_))
                        || value_visible_at(self.m, v, for_op);
                    if !invariant {
                        *val = AbsVal::Divergent;
                    }
                }
            }
        }
        s
    }

    /// The register state every iteration from the second onward is
    /// guaranteed to enter with: the join over `launder(F^k(pre))` for
    /// k ≥ 1, computed by Kleene iteration. `None` if it fails to
    /// stabilize within the cap.
    fn steady_entry(
        &mut self,
        for_op: OpId,
        body: accfg_ir::BlockId,
        pre: &State,
    ) -> Option<State> {
        let mut entry = {
            let mut s = pre.clone();
            let mut p = Pending::new();
            self.exec_block(body, &mut s, &mut p, false, 0, 0);
            self.launder(for_op, s)
        };
        for _ in 0..64 {
            let mut s = entry.clone();
            let mut p = Pending::new();
            self.exec_block(body, &mut s, &mut p, false, 0, 0);
            let next = join_state(&entry, &self.launder(for_op, s));
            if next == entry {
                return Some(entry);
            }
            entry = next;
        }
        None
    }

    fn bound_block(&mut self, block: accfg_ir::BlockId, state: &mut State, bm: u64) {
        for op in self.m.block_ops(block) {
            self.bound_op(op, state, bm);
        }
    }

    /// The steady-state bound walk: a state-only pass over a loop body
    /// entered `bm` times with the steady register state, crediting
    /// [`Engine::steady_elidable`] for every write execution whose value
    /// is provably already resident. Sites the collecting walk flagged
    /// `redundant` or `dead` are skipped — their full multiplicity is
    /// counted through the flags.
    fn bound_op(&mut self, op: OpId, state: &mut State, bm: u64) {
        let m = self.m;
        match m.op(op).opcode {
            Opcode::AccfgSetup => {
                let accel = accelerator(m, op);
                for (index, (field, value)) in setup_fields(m, op).into_iter().enumerate() {
                    let site = self.site_ids[&(op, index)];
                    let cur = state.get(&accel).and_then(|f| f.get(&field)).copied();
                    // Equal SSA value, or two constants of equal payload:
                    // the steady entry only keeps `Known` facts whose
                    // runtime value is iteration-invariant, so either test
                    // proves the register already holds this value.
                    let resident = match cur {
                        Some(AbsVal::Known(v)) => {
                            v == value
                                || matches!(
                                    (resolve(m, v), resolve(m, value)),
                                    (Resolved::Const(a), Resolved::Const(b)) if a == b
                                )
                        }
                        _ => false,
                    };
                    if resident && !self.writes[site].redundant && !self.writes[site].dead {
                        self.steady_elidable = self.steady_elidable.saturating_add(bm);
                    }
                    state
                        .entry(accel.clone())
                        .or_default()
                        .insert(field, AbsVal::Known(value));
                }
            }
            Opcode::AccfgLaunch => {}
            Opcode::If => {
                // branch bodies are not guaranteed to execute: credit 0
                let mut then_state = state.clone();
                self.bound_block(m.body_block(op, 0), &mut then_state, 0);
                self.bound_block(m.body_block(op, 1), state, 0);
                *state = join_state(&then_state, state);
            }
            Opcode::For => {
                // A nested loop inside a steady region: its entry fixpoint
                // holds for *every* iteration here, so the whole nest is
                // credited at once (bm · trips) — disjoint from the counts
                // the nested loop's own steady pass claimed, which live in
                // the enclosing collect region.
                let body = m.body_block(op, 0);
                let pre_state = state.clone();
                let mut entry = pre_state.clone();
                let mut converged = false;
                for _ in 0..64 {
                    let mut s = entry.clone();
                    let mut p = Pending::new();
                    self.exec_block(body, &mut s, &mut p, false, 0, 0);
                    let next = join_state(&pre_state, &s);
                    if next == entry {
                        converged = true;
                        break;
                    }
                    entry = next;
                }
                if !converged {
                    for fields in entry.values_mut() {
                        for val in fields.values_mut() {
                            *val = AbsVal::Clobbered;
                        }
                    }
                }
                let trips = if converged {
                    const_trip_count(m, op).unwrap_or(0)
                } else {
                    0
                };
                let mut s = entry;
                self.bound_block(body, &mut s, bm.saturating_mul(trips));
                if trips >= 1 {
                    *state = self.launder(op, s);
                } else {
                    *state = join_state(&pre_state, &s);
                }
            }
            _ => match state_effect(m, op) {
                StateEffect::Clobbers => {
                    for fields in state.values_mut() {
                        for val in fields.values_mut() {
                            *val = AbsVal::Clobbered;
                        }
                    }
                }
                StateEffect::Preserves | StateEffect::Accfg | StateEffect::Structural => {}
            },
        }
    }
}

/// Analyzes one function, computing the reaching configuration state at
/// every launch plus per-write-site lint facts.
pub fn analyze_func(m: &Module, func: OpId) -> FuncConfig {
    let name = m
        .str_attr(func, "sym_name")
        .unwrap_or("<anonymous>")
        .to_string();
    let mut engine = Engine::new(m, func);
    let mut state = State::new();
    let mut pending = Pending::new();
    engine.exec_block(m.body_block(func, 0), &mut state, &mut pending, true, 1, 1);
    // a write is dead iff no path lets a launch observe it: it was
    // overwritten at least once, never observed, and does not survive to
    // the function's end on any path
    let exit_pending: BTreeSet<usize> = pending.values().flatten().copied().collect();
    for (site, write) in engine.writes.iter_mut().enumerate() {
        write.dead = engine.killed.contains(&site)
            && !engine.observed.contains(&site)
            && !exit_pending.contains(&site);
    }
    FuncConfig {
        func: name,
        launches: engine.launches,
        writes: engine.writes,
        steady_elidable: engine.steady_elidable,
    }
}

/// Analyzes every function in the module, in registration order.
pub fn analyze_module(m: &Module) -> Vec<FuncConfig> {
    m.funcs()
        .iter()
        .filter(|&&f| m.is_alive(f))
        .map(|&f| analyze_func(m, f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accfg_ir::{FuncBuilder, Module, Type};

    fn known(fields: &FieldState, name: &str) -> Option<ValueId> {
        match fields.get(name) {
            Some(AbsVal::Known(v)) => Some(*v),
            _ => None,
        }
    }

    #[test]
    fn straight_line_launch_sees_last_writes() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let c = b.const_int(7, Type::I64);
        let s = b.setup("acc", &[("x", args[0]), ("y", c)]);
        let s2 = b.setup_from("acc", s, &[("x", c)]);
        let t = b.launch("acc", s2);
        b.await_token("acc", t);
        b.ret(vec![]);

        let func = m.func_by_name("f").unwrap();
        let cfg = analyze_func(&m, func);
        assert_eq!(cfg.launches.len(), 1);
        let fields = &cfg.launches[0].fields;
        assert_eq!(known(fields, "x"), Some(c));
        assert_eq!(known(fields, "y"), Some(c));
        // the first x write is overwritten before the launch: dead
        let dead: Vec<_> = cfg.writes.iter().filter(|w| w.dead).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].field, "x");
        assert_eq!(dead[0].value, args[0]);
        assert!(!cfg.writes.iter().any(|w| w.redundant));
    }

    #[test]
    fn redundant_write_detected_without_dead_flag() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let s = b.setup("acc", &[("x", args[0])]);
        let s2 = b.setup_from("acc", s, &[("x", args[0])]);
        let t = b.launch("acc", s2);
        b.await_token("acc", t);
        b.ret(vec![]);

        let func = m.func_by_name("f").unwrap();
        let cfg = analyze_func(&m, func);
        let redundant: Vec<_> = cfg.writes.iter().filter(|w| w.redundant).collect();
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].index, 0);
        // neither write is dead: the value is observed by the launch
        assert!(!cfg.writes.iter().any(|w| w.dead));
    }

    #[test]
    fn branch_join_divergence_and_agreement() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64, Type::I1]);
        let one = b.const_int(1, Type::I64);
        let two = b.const_int(2, Type::I64);
        b.build_if(
            args[1],
            |b| {
                b.setup("acc", &[("x", one), ("same", args[0])]);
                vec![]
            },
            |b| {
                b.setup("acc", &[("x", two), ("same", args[0])]);
                vec![]
            },
        );
        let s2 = b.setup("acc", &[]);
        let t = b.launch("acc", s2);
        b.await_token("acc", t);
        b.ret(vec![]);

        let func = m.func_by_name("f").unwrap();
        let cfg = analyze_func(&m, func);
        assert_eq!(cfg.launches.len(), 1);
        let fields = &cfg.launches[0].fields;
        assert_eq!(fields.get("x"), Some(&AbsVal::Divergent));
        assert_eq!(known(fields, "same"), Some(args[0]));
        // branch writes are guarded: their guaranteed multiplicity is 0
        assert!(cfg
            .writes
            .iter()
            .filter(|w| w.field == "x")
            .all(|w| w.mult == 0));
    }

    #[test]
    fn loop_fixpoint_keeps_invariant_fields_known() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let one = b.const_index(1);
        b.setup("acc", &[("inv", args[0])]);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            let s = b.setup("acc", &[("var", iv)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);

        let func = m.func_by_name("f").unwrap();
        let cfg = analyze_func(&m, func);
        assert_eq!(cfg.launches.len(), 1);
        let fields = &cfg.launches[0].fields;
        // "inv" written before the loop survives the back-edge join
        assert_eq!(known(fields, "inv"), Some(args[0]));
        // "var" is iv-dependent but still Known at the launch site itself
        assert!(matches!(fields.get("var"), Some(AbsVal::Known(_))));
        // constant trip count multiplies write sites inside the loop
        let var = cfg.writes.iter().find(|w| w.field == "var").unwrap();
        assert_eq!(var.mult, 4);
        let inv = cfg.writes.iter().find(|w| w.field == "inv").unwrap();
        assert_eq!(inv.mult, 1);
    }

    #[test]
    fn clobber_poisons_reaching_state() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let s = b.setup("acc", &[("x", args[0])]);
        b.opaque("mystery", vec![], vec![], None); // unannotated: clobbers
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);

        let func = m.func_by_name("f").unwrap();
        let cfg = analyze_func(&m, func);
        assert_eq!(cfg.launches[0].fields.get("x"), Some(&AbsVal::Clobbered));
        // the clobbered write is not reported dead: no setup overwrote it
        assert!(!cfg.writes.iter().any(|w| w.dead));
    }

    #[test]
    fn resolution_distinguishes_consts_args_and_computed() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let c = b.const_int(5, Type::I64);
        let sum = b.addi(args[0], c);
        b.ret(vec![]);
        assert_eq!(resolve(&m, c), Resolved::Const(5));
        assert_eq!(resolve(&m, args[0]), Resolved::Arg(0));
        assert_eq!(resolve(&m, sum), Resolved::Opaque);
    }

    #[test]
    fn dead_write_inside_loop_counts_trips() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64, Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(3);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, _iv, _| {
            let s = b.setup("acc", &[("x", args[0])]);
            let s2 = b.setup_from("acc", s, &[("x", args[1])]);
            let t = b.launch("acc", s2);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);

        let func = m.func_by_name("f").unwrap();
        let cfg = analyze_func(&m, func);
        let dead: Vec<_> = cfg.writes.iter().filter(|w| w.dead).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].value, args[0]);
        assert_eq!(dead[0].mult, 3);
    }
}
