//! Translation validation of configuration state across a rewrite.
//!
//! Given a module snapshot and its post-pass rewrite, assert that every
//! launch still observes an equivalent configuration register file. The
//! concrete observable of the accfg dialect is the `LaunchRecord` stream
//! of `accfg::interpret`; this validator proves the abstract version of
//! that equivalence for *all* inputs at once, per rewrite, instead of one
//! input per interpreter run.
//!
//! SSA value ids are meaningless across a rewrite, so `Known(v)` facts are
//! compared through [`crate::reach::resolve`]: constants by their value,
//! function arguments by their index. A fact that resolves to a *definite*
//! symbol on the before side must be preserved exactly; a `Known` of a
//! computed (opaque) value only requires the field to remain written —
//! passes legitimately restructure computation (LICM, loop rotation) in
//! ways that change which SSA value carries it, and rotation's prologue
//! duplication can demote an opaque `Known` to `Divergent` without
//! changing any concrete trace.
//!
//! What the validator rejects, per launch: count or accelerator-sequence
//! changes, a definite `Known` degraded (different constant, `Divergent`,
//! `Clobbered`, or dropped), any written field dropped entirely, and a new
//! definite `Known` appearing on a field the original never wrote.

use crate::reach::{analyze_module, describe, AbsVal, FuncConfig, Resolved};
use accfg_ir::Module;
use std::fmt;

/// One per-launch field disagreement, naming everything needed to debug
/// the offending pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchDiff {
    /// Enclosing function.
    pub func: String,
    /// Launch index within the function (program pre-order).
    pub launch: usize,
    /// Accelerator launched.
    pub accelerator: String,
    /// Disagreeing field.
    pub field: String,
    /// Abstract value the snapshot guaranteed.
    pub expected: String,
    /// Abstract value after the rewrite.
    pub actual: String,
}

impl fmt::Display for LaunchDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} launch #{} accelerator \"{}\" field \"{}\": expected {}, got {}",
            self.func, self.launch, self.accelerator, self.field, self.expected, self.actual
        )
    }
}

/// Why translation validation rejected a rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A function present in the snapshot is gone.
    FuncMissing(String),
    /// The number of launch sites changed.
    LaunchCountMismatch {
        /// Function name.
        func: String,
        /// Launches in the snapshot.
        before: usize,
        /// Launches after the rewrite.
        after: usize,
    },
    /// The launch sequence targets a different accelerator.
    AcceleratorMismatch {
        /// Function name.
        func: String,
        /// Launch index.
        launch: usize,
        /// Accelerator in the snapshot.
        before: String,
        /// Accelerator after the rewrite.
        after: String,
    },
    /// Per-launch reaching-state disagreements.
    FieldDiffs(Vec<LaunchDiff>),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::FuncMissing(name) => {
                write!(f, "function @{name} disappeared across the rewrite")
            }
            ValidationError::LaunchCountMismatch {
                func,
                before,
                after,
            } => write!(f, "@{func}: launch count changed from {before} to {after}"),
            ValidationError::AcceleratorMismatch {
                func,
                launch,
                before,
                after,
            } => write!(
                f,
                "@{func} launch #{launch}: accelerator changed from \"{before}\" to \"{after}\""
            ),
            ValidationError::FieldDiffs(diffs) => {
                write!(f, "{} reaching-state diff(s):", diffs.len())?;
                for d in diffs {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// `true` if the resolution pins down one concrete symbol.
fn definite(r: Resolved) -> bool {
    !matches!(r, Resolved::Opaque)
}

fn check_func(
    before_m: &Module,
    after_m: &Module,
    before: &FuncConfig,
    after: &FuncConfig,
    diffs: &mut Vec<LaunchDiff>,
) -> Result<(), ValidationError> {
    if before.launches.len() != after.launches.len() {
        return Err(ValidationError::LaunchCountMismatch {
            func: before.func.clone(),
            before: before.launches.len(),
            after: after.launches.len(),
        });
    }
    for (i, (lb, la)) in before.launches.iter().zip(&after.launches).enumerate() {
        if lb.accelerator != la.accelerator {
            return Err(ValidationError::AcceleratorMismatch {
                func: before.func.clone(),
                launch: i,
                before: lb.accelerator.clone(),
                after: la.accelerator.clone(),
            });
        }
        let mut diff = |field: &str, expected: String, actual: String| {
            diffs.push(LaunchDiff {
                func: before.func.clone(),
                launch: i,
                accelerator: lb.accelerator.clone(),
                field: field.to_string(),
                expected,
                actual,
            });
        };
        for (field, &bval) in &lb.fields {
            let aval = la.fields.get(field).copied();
            match bval {
                AbsVal::Known(v) if definite(crate::reach::resolve(before_m, v)) => {
                    // a definite guarantee must survive exactly
                    let ok = matches!(
                        aval,
                        Some(AbsVal::Known(w))
                            if crate::reach::resolve(after_m, w)
                                == crate::reach::resolve(before_m, v)
                    );
                    if !ok {
                        diff(
                            field,
                            describe(before_m, bval),
                            aval.map_or("<missing>".into(), |a| describe(after_m, a)),
                        );
                    }
                }
                AbsVal::Known(_) | AbsVal::Divergent => {
                    // the field was written; it must stay written
                    if aval.is_none() {
                        diff(field, describe(before_m, bval), "<missing>".into());
                    }
                }
                AbsVal::Clobbered => {} // no guarantee to preserve
            }
        }
        for (field, &aval) in &la.fields {
            if lb.fields.contains_key(field) {
                continue;
            }
            // a new definite value on a never-written field changes what
            // the launch observes on targets with persistent registers
            if let AbsVal::Known(w) = aval {
                if definite(crate::reach::resolve(after_m, w)) {
                    diff(field, "<unwritten>".into(), describe(after_m, aval));
                }
            }
        }
    }
    Ok(())
}

/// Validates that `after` preserves the reaching configuration state of
/// `before` at every launch, for every function.
///
/// # Errors
///
/// Returns the first structural mismatch, or the full list of per-launch
/// field diffs.
pub fn validate_translation(before: &Module, after: &Module) -> Result<(), ValidationError> {
    let before_cfgs = analyze_module(before);
    let after_cfgs = analyze_module(after);
    let mut diffs = Vec::new();
    for bc in &before_cfgs {
        let Some(ac) = after_cfgs.iter().find(|c| c.func == bc.func) else {
            return Err(ValidationError::FuncMissing(bc.func.clone()));
        };
        check_func(before, after, bc, ac, &mut diffs)?;
    }
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(ValidationError::FieldDiffs(diffs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accfg_ir::{FuncBuilder, Module, Type};

    fn launch_module(fields: &[(&str, i64)]) -> Module {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let consts: Vec<_> = fields
            .iter()
            .map(|(n, v)| (*n, b.const_int(*v, Type::I64)))
            .collect();
        let s = b.setup("acc", &consts);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        m
    }

    #[test]
    fn identical_modules_validate() {
        let m = launch_module(&[("x", 3), ("y", 4)]);
        validate_translation(&m, &m.clone()).unwrap();
    }

    #[test]
    fn changed_constant_is_caught_with_full_diff() {
        let before = launch_module(&[("x", 3)]);
        let after = launch_module(&[("x", 4)]);
        let err = validate_translation(&before, &after).unwrap_err();
        let ValidationError::FieldDiffs(diffs) = &err else {
            panic!("expected field diffs, got {err}");
        };
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].accelerator, "acc");
        assert_eq!(diffs[0].field, "x");
        assert_eq!(diffs[0].expected, "Known(const 3)");
        assert_eq!(diffs[0].actual, "Known(const 4)");
        let msg = err.to_string();
        assert!(msg.contains("\"acc\""), "{msg}");
        assert!(msg.contains("\"x\""), "{msg}");
    }

    #[test]
    fn dropped_field_is_caught() {
        let before = launch_module(&[("x", 3), ("y", 4)]);
        let after = launch_module(&[("x", 3)]);
        let err = validate_translation(&before, &after).unwrap_err();
        let ValidationError::FieldDiffs(diffs) = &err else {
            panic!("expected field diffs, got {err}");
        };
        assert_eq!(diffs[0].field, "y");
        assert_eq!(diffs[0].actual, "<missing>");
    }

    #[test]
    fn dropped_launch_is_caught() {
        let before = launch_module(&[("x", 3)]);
        let mut after = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut after, "f", vec![]);
        b.ret(vec![]);
        let err = validate_translation(&before, &after).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::LaunchCountMismatch {
                before: 1,
                after: 0,
                ..
            }
        ));
    }

    #[test]
    fn missing_func_is_caught() {
        let before = launch_module(&[("x", 3)]);
        let after = Module::new();
        let err = validate_translation(&before, &after).unwrap_err();
        assert!(matches!(err, ValidationError::FuncMissing(ref f) if f == "f"));
    }

    #[test]
    fn opaque_known_may_become_divergent() {
        // computed value moved across a join: Known(<computed>) before,
        // Divergent after — rotation does this; it must validate clean
        let mut before = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut before, "f", vec![Type::I64]);
        let sum = b.addi(args[0], args[0]);
        let s = b.setup("acc", &[("x", sum)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);

        let mut after = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut after, "f", vec![Type::I1, Type::I64]);
        let sum = b.addi(args[1], args[1]);
        let other = b.addi(sum, args[1]);
        b.build_if(
            args[0],
            |b| {
                b.setup("acc", &[("x", sum)]);
                vec![]
            },
            |b| {
                b.setup("acc", &[("x", other)]);
                vec![]
            },
        );
        let s = b.setup("acc", &[]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);

        validate_translation(&before, &after).unwrap();
    }

    #[test]
    fn definite_known_may_not_become_divergent() {
        let before = launch_module(&[("x", 3)]);
        let mut after = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut after, "f", vec![Type::I1]);
        let three = b.const_int(3, Type::I64);
        let four = b.const_int(4, Type::I64);
        b.build_if(
            args[0],
            |b| {
                b.setup("acc", &[("x", three)]);
                vec![]
            },
            |b| {
                b.setup("acc", &[("x", four)]);
                vec![]
            },
        );
        let s = b.setup("acc", &[]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        let err = validate_translation(&before, &after).unwrap_err();
        let ValidationError::FieldDiffs(diffs) = &err else {
            panic!("expected field diffs, got {err}");
        };
        assert_eq!(diffs[0].expected, "Known(const 3)");
        assert_eq!(diffs[0].actual, "Divergent");
    }
}
