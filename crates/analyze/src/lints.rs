//! Config-write lints over the reaching-state analysis.
//!
//! Three lint classes, all derived from one [`crate::reach`] run:
//!
//! - **dead write** — a setup field write no launch can ever observe: it is
//!   overwritten on every path before the next launch of its accelerator.
//! - **redundant write** — the written value provably equals the value the
//!   register already holds on every path (exactly the condition
//!   `accfg-dedup` eliminates on, so any redundant write surviving the
//!   pipeline is a missed-optimization report).
//! - **clobbered launch** — a launch observes a field that an op with
//!   unknown side effects may have overwritten; the configuration the
//!   kernel runs with is not the one the program wrote.
//!
//! The report also carries the *static elidable-write lower bound*: the
//! number of per-call field-write executions proven *value-resident* —
//! the register provably already holds the written value. That is the sum
//! of redundant sites weighted by guaranteed constant-trip multiplicity,
//! plus the steady-state loop executions ([`FuncConfig::steady_elidable`])
//! where a write re-places the iteration-invariant value its previous
//! iteration left behind. A perfect dynamic elider skips exactly the
//! value-resident writes, so the bound is ≤ the interpreter's
//! `ExecTrace::elided_writes` on any run, and ≤ the serving runtime's
//! measured savings over the raw modules — the serving benchmark and
//! `tests/serving.rs` assert the latter per stream. Dead writes are *not*
//! in the bound: they are a pruning opportunity (the lint), not a
//! value-residency fact, and dynamic elision does not skip them.
//!
//! [`FuncConfig::steady_elidable`]: crate::reach::FuncConfig::steady_elidable

use crate::reach::{analyze_module, AbsVal};
use accfg_ir::Module;
use std::fmt;

/// Classification of one lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// A setup field write no launch can observe.
    DeadWrite,
    /// A setup field write whose value already resides in the register.
    RedundantWrite,
    /// A launch observing a possibly-clobbered field.
    ClobberedLaunch,
}

impl LintKind {
    /// A short kebab-case label.
    pub fn label(self) -> &'static str {
        match self {
            LintKind::DeadWrite => "dead-write",
            LintKind::RedundantWrite => "redundant-write",
            LintKind::ClobberedLaunch => "clobbered-launch",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintSite {
    /// What fired.
    pub kind: LintKind,
    /// Enclosing function (`sym_name`).
    pub func: String,
    /// Accelerator whose configuration is involved.
    pub accelerator: String,
    /// Field name.
    pub field: String,
}

impl fmt::Display for LintSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: @{} accelerator \"{}\" field \"{}\"",
            self.kind.label(),
            self.func,
            self.accelerator,
            self.field
        )
    }
}

/// The result of linting one module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// Every finding, in analysis order.
    pub sites: Vec<LintSite>,
    /// Guaranteed field-write executions per call of each function, summed
    /// over the module (constant-trip loop nests only; conditional and
    /// unbounded-loop writes count 0).
    pub static_writes: u64,
    /// Lower bound on value-resident write executions: the summed
    /// multiplicity of redundant sites plus the steady-state loop
    /// executions proven to re-place an already-resident value. A perfect
    /// dynamic elider (and the interpreter's `elided_writes` ground truth)
    /// skips at least this many.
    pub elidable_bound: u64,
}

impl LintReport {
    /// `true` if no lint fired.
    pub fn is_clean(&self) -> bool {
        self.sites.is_empty()
    }

    /// Findings of one kind.
    pub fn count(&self, kind: LintKind) -> usize {
        self.sites.iter().filter(|s| s.kind == kind).count()
    }

    /// Renders the report as a JSON object (counts + the bound).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"dead_writes\": {}, \"redundant_writes\": {}, \"clobbered_launches\": {}, \"static_writes\": {}, \"elidable_bound\": {}}}",
            self.count(LintKind::DeadWrite),
            self.count(LintKind::RedundantWrite),
            self.count(LintKind::ClobberedLaunch),
            self.static_writes,
            self.elidable_bound,
        )
    }
}

/// Runs the reaching-state analysis and derives all lint findings.
pub fn lint_module(m: &Module) -> LintReport {
    let mut report = LintReport::default();
    for cfg in analyze_module(m) {
        report.elidable_bound += cfg.steady_elidable;
        for write in &cfg.writes {
            report.static_writes += write.mult;
            if write.redundant {
                report.elidable_bound += write.mult;
            }
            if write.dead {
                report.sites.push(LintSite {
                    kind: LintKind::DeadWrite,
                    func: cfg.func.clone(),
                    accelerator: write.accelerator.clone(),
                    field: write.field.clone(),
                });
            }
            if write.redundant {
                report.sites.push(LintSite {
                    kind: LintKind::RedundantWrite,
                    func: cfg.func.clone(),
                    accelerator: write.accelerator.clone(),
                    field: write.field.clone(),
                });
            }
        }
        for launch in &cfg.launches {
            for (field, val) in &launch.fields {
                if *val == AbsVal::Clobbered {
                    report.sites.push(LintSite {
                        kind: LintKind::ClobberedLaunch,
                        func: cfg.func.clone(),
                        accelerator: launch.accelerator.clone(),
                        field: field.clone(),
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use accfg_ir::{FuncBuilder, Module, Type};

    #[test]
    fn clean_module_reports_clean() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let s = b.setup("acc", &[("x", args[0])]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        let report = lint_module(&m);
        assert!(report.is_clean(), "{:?}", report.sites);
        assert_eq!(report.static_writes, 1);
        assert_eq!(report.elidable_bound, 0);
    }

    #[test]
    fn dead_and_redundant_writes_fire_but_only_redundancy_bounds() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64, Type::I64]);
        // x=a0 (dead: overwritten), x=a1, y=a0, y=a0 (redundant)
        let s = b.setup("acc", &[("x", args[0])]);
        let s2 = b.setup_from("acc", s, &[("x", args[1]), ("y", args[0])]);
        let s3 = b.setup_from("acc", s2, &[("y", args[0])]);
        let t = b.launch("acc", s3);
        b.await_token("acc", t);
        b.ret(vec![]);
        let report = lint_module(&m);
        assert_eq!(report.count(LintKind::DeadWrite), 1);
        assert_eq!(report.count(LintKind::RedundantWrite), 1);
        assert_eq!(report.static_writes, 4);
        // the dead write is a prune opportunity, not a value-residency
        // fact: only the redundant write bounds dynamic elision
        assert_eq!(report.elidable_bound, 1);
    }

    #[test]
    fn loop_invariant_rewrites_raise_the_bound_from_iteration_two() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(5);
        let one = b.const_index(1);
        b.build_for(lb, ub, one, vec![], |b, iv, _| {
            // tile re-materializes a constant per iteration, the address
            // genuinely varies: only the former is resident from iter 2 on
            let tile = b.const_index(16);
            let s = b.setup("acc", &[("tile", tile), ("addr", iv), ("inv", args[0])]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);
        let report = lint_module(&m);
        assert!(report.is_clean(), "{:?}", report.sites);
        assert_eq!(report.static_writes, 15);
        // tile and inv are value-resident for iterations 2..=5: 2 * 4
        assert_eq!(report.elidable_bound, 8);
    }

    #[test]
    fn clobbered_launch_fires() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let s = b.setup("acc", &[("x", args[0])]);
        b.opaque("mystery", vec![], vec![], None);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        let report = lint_module(&m);
        assert_eq!(report.count(LintKind::ClobberedLaunch), 1);
        assert_eq!(
            report.sites[0].to_string(),
            "clobbered-launch: @f accelerator \"acc\" field \"x\""
        );
    }

    #[test]
    fn json_shape_is_stable() {
        let m = Module::new();
        assert_eq!(
            lint_module(&m).to_json(),
            "{\"dead_writes\": 0, \"redundant_writes\": 0, \"clobbered_launches\": 0, \"static_writes\": 0, \"elidable_bound\": 0}"
        );
    }
}
