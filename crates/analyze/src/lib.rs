//! # accfg-analyze: static configuration-state analysis
//!
//! The passes in `accfg` rewrite configuration programs aggressively, and
//! the serving runtime elides writes dynamically at dispatch time — this
//! crate is the correctness tooling that *proves* those rewrites preserve
//! the configuration state each launch observes, and that quantifies how
//! close dynamic elision is to the statically provable optimum.
//!
//! Everything is built on one engine ([`reach`]): an abstract
//! interpretation over the structured IR computing, at every
//! `accfg.launch`, the *reaching configuration state* — a per-accelerator
//! field map in the lattice
//!
//! ```text
//!        Clobbered            (an op with unknown effects may have
//!            |                 overwritten the register)
//!        Divergent            (well-defined per path, but not a single
//!            |                 SSA value: branch/loop joins)
//!        Known(v)             (every path wrote SSA value v last)
//! ```
//!
//! joined across `scf.if` branches and `scf.for` back-edges (a shrinking
//! fixpoint, the same field semantics as `accfg::dedup::known_fields`).
//! Three consumers ship on top:
//!
//! - [`validate::validate_translation`] — translation validation: a
//!   differential checker asserting per-launch reaching-state equivalence
//!   between a module snapshot and its post-pass rewrite. Plug it into
//!   [`accfg_ir::PassManager::validate_each`] via [`pass_validator`].
//! - [`lints`] — config-write lints: dead setup-field writes, redundant
//!   writes, and launches over clobbered fields, plus the *static
//!   elidable-write lower bound* the serving benchmark compares against
//!   measured dynamic elision.
//! - the delta-dispatch proof check in `accfg-runtime` replays this
//!   crate's contract at plan granularity.

#![warn(missing_docs)]

pub mod lints;
pub mod reach;
pub mod validate;

pub use lints::{lint_module, LintKind, LintReport, LintSite};
pub use reach::{analyze_func, analyze_module, AbsVal, FuncConfig, LaunchState, WriteSite};
pub use validate::{validate_translation, LaunchDiff, ValidationError};

/// A ready-made [`accfg_ir::PassManager::validate_each`] hook running
/// [`validate_translation`] between every pass.
///
/// # Examples
///
/// ```
/// use accfg::pipeline::{pipeline, OptLevel};
/// use accfg::AccelFilter;
/// use accfg_ir::{FuncBuilder, Module, Type};
///
/// let mut m = Module::new();
/// let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
/// let s = b.setup("acc", &[("x", args[0])]);
/// let t = b.launch("acc", s);
/// b.await_token("acc", t);
/// b.ret(vec![]);
///
/// let mut pm = pipeline(OptLevel::All, AccelFilter::All);
/// pm.validate_each(accfg_analyze::pass_validator());
/// pm.run(&mut m).unwrap(); // every pass validates clean
/// ```
pub fn pass_validator() -> impl Fn(&accfg_ir::Module, &accfg_ir::Module, &str) -> Result<(), String>
{
    |before, after, _pass| validate_translation(before, after).map_err(|e| e.to_string())
}
