//! Property-based oracle: the abstract interpretation in `reach` against
//! the concrete interpreter in `accfg::interp`.
//!
//! Random structured modules (setups, launches, clobbers, `scf.if`,
//! constant-trip `scf.for`, nested) are generated with every launch
//! *site-tagged*: a unique `__site` constant is written immediately
//! before each launch, so every dynamic `LaunchRecord` identifies the
//! static launch site it came from. The oracle then checks, per module:
//!
//! 1. **Soundness of `Known`** — a field the analysis proves `Known` at a
//!    site resolves, on every dynamic instance of that site, to exactly
//!    the claimed constant / function argument (and is always present).
//! 2. **Lint removability** — deleting every dead- or redundant-flagged
//!    setup field write leaves the launch trace bit-identical.
//! 3. **Bound soundness** — `elidable_bound` never exceeds the measured
//!    write savings of that deletion, and `static_writes` never exceeds
//!    the executed write count.

use accfg::dialect::setup_set_fields;
use accfg::{interpret, setup_fields, ExecTrace};
use accfg_analyze::reach::{analyze_func, resolve, Resolved};
use accfg_analyze::{lint_module, AbsVal};
use accfg_ir::{verify, FuncBuilder, Module, Type, ValueId};
use proptest::prelude::*;
use std::cell::Cell;
use std::collections::BTreeMap;

const ACCELS: [&str; 2] = ["alpha", "beta"];
const FIELDS: [&str; 3] = ["f0", "f1", "f2"];
const FUEL: u64 = 1_000_000;

type Action = (u8, u8, u8);

/// Emits up to `budget` actions from the shared cursor into the builder.
#[allow(clippy::too_many_arguments)]
pub fn emit(
    b: &mut FuncBuilder,
    actions: &[Action],
    pos: &Cell<usize>,
    next_site: &Cell<i64>,
    budget: usize,
    depth: usize,
    states: &mut BTreeMap<String, ValueId>,
    pool: &[ValueId],
    cond: ValueId,
) {
    for _ in 0..budget {
        if pos.get() >= actions.len() {
            return;
        }
        let (k, a, c) = actions[pos.get()];
        pos.set(pos.get() + 1);
        match k % 8 {
            0..=2 => {
                let accel = ACCELS[a as usize % ACCELS.len()];
                let field = FIELDS[c as usize % FIELDS.len()];
                let value = pool[(a / 2) as usize % pool.len()];
                let s = match states.get(accel) {
                    Some(&prev) => b.setup_from(accel, prev, &[(field, value)]),
                    None => b.setup(accel, &[(field, value)]),
                };
                states.insert(accel.to_string(), s);
            }
            3..=4 => {
                let accel = ACCELS[a as usize % ACCELS.len()];
                let site = next_site.get();
                next_site.set(site + 1);
                let tag = b.const_int(site, Type::I64);
                let s = match states.get(accel) {
                    Some(&prev) => b.setup_from(accel, prev, &[("__site", tag)]),
                    None => b.setup(accel, &[("__site", tag)]),
                };
                states.insert(accel.to_string(), s);
                let t = b.launch(accel, s);
                b.await_token(accel, t);
            }
            5 => {
                b.opaque("mystery", vec![], vec![], None); // clobbers
            }
            6 if depth < 2 => {
                let trips = (a % 4) as i64; // 0..=3, zero-trip included
                let lb = b.const_index(0);
                let ub = b.const_index(trips);
                let one = b.const_index(1);
                let body_budget = (c % 3) as usize + 1;
                b.build_for(lb, ub, one, vec![], |b, iv, _| {
                    let mut inner_states = states.clone();
                    let mut inner_pool = pool.to_vec();
                    inner_pool.push(iv);
                    emit(
                        b,
                        actions,
                        pos,
                        next_site,
                        body_budget,
                        depth + 1,
                        &mut inner_states,
                        &inner_pool,
                        cond,
                    );
                    vec![]
                });
            }
            7 if depth < 2 => {
                let then_budget = (a % 3) as usize + 1;
                let else_budget = (c % 3) as usize;
                b.build_if(
                    cond,
                    |b| {
                        let mut inner = states.clone();
                        emit(
                            b,
                            actions,
                            pos,
                            next_site,
                            then_budget,
                            depth + 1,
                            &mut inner,
                            pool,
                            cond,
                        );
                        vec![]
                    },
                    |b| {
                        let mut inner = states.clone();
                        emit(
                            b,
                            actions,
                            pos,
                            next_site,
                            else_budget,
                            depth + 1,
                            &mut inner,
                            pool,
                            cond,
                        );
                        vec![]
                    },
                );
            }
            _ => {} // region action at max depth: skip
        }
    }
}

/// Builds a module from the action tape. Signature: (i64, i64, i1).
pub fn build(actions: &[Action]) -> Module {
    let mut m = Module::new();
    let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64, Type::I64, Type::I1]);
    let c7 = b.const_int(7, Type::I64);
    let c9 = b.const_int(9, Type::I64);
    let pool = vec![args[0], args[1], c7, c9];
    let pos = Cell::new(0);
    let next_site = Cell::new(0);
    let mut states = BTreeMap::new();
    emit(
        &mut b,
        actions,
        &pos,
        &next_site,
        actions.len(),
        0,
        &mut states,
        &pool,
        args[2],
    );
    b.ret(vec![]);
    m
}

/// Deletes every dead- or redundant-flagged setup field write.
fn prune_flagged(m: &mut Module) -> u64 {
    let func = m.func_by_name("f").unwrap();
    let cfg = analyze_func(m, func);
    let mut drop_per_op: BTreeMap<accfg_ir::OpId, Vec<usize>> = BTreeMap::new();
    let mut flagged = 0;
    for w in &cfg.writes {
        if w.dead || w.redundant {
            drop_per_op.entry(w.op).or_default().push(w.index);
            flagged += 1;
        }
    }
    for (op, drop) in drop_per_op {
        let kept: Vec<(String, ValueId)> = setup_fields(m, op)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !drop.contains(i))
            .map(|(_, fv)| fv)
            .collect();
        setup_set_fields(m, op, &kept);
    }
    flagged
}

fn check_module(actions: &[Action], a0: i64, a1: i64, flag: bool) {
    let m = build(actions);
    verify(&m).expect("generated module must verify");
    let args = [a0, a1, flag as i64];
    let trace = interpret(&m, "f", &args, FUEL).expect("interpretation");

    let func = m.func_by_name("f").unwrap();
    let cfg = analyze_func(&m, func);

    // every static launch site carries a definite, unique __site tag
    let mut by_site = BTreeMap::new();
    for launch in &cfg.launches {
        let Some(AbsVal::Known(v)) = launch.fields.get("__site") else {
            panic!("launch lost its __site tag: {:?}", launch.fields);
        };
        let Resolved::Const(id) = resolve(&m, *v) else {
            panic!("__site tag is not a constant");
        };
        assert!(by_site.insert(id, launch).is_none(), "duplicate site tag");
    }

    // oracle 1: Known facts hold on every dynamic instance of the site
    for rec in &trace.launches {
        let site = rec.registers["__site"];
        let launch = by_site[&site];
        assert_eq!(launch.accelerator, rec.accelerator);
        for (field, val) in &launch.fields {
            if let AbsVal::Known(v) = val {
                let got = rec.registers.get(field.as_str());
                match resolve(&m, *v) {
                    Resolved::Const(c) => assert_eq!(
                        got,
                        Some(&c),
                        "site {site} field {field}: Known const {c}, registers {:?}",
                        rec.registers
                    ),
                    Resolved::Arg(i) => assert_eq!(
                        got,
                        Some(&args[i]),
                        "site {site} field {field}: Known arg {i}"
                    ),
                    Resolved::Opaque => assert!(
                        got.is_some(),
                        "site {site} field {field}: Known but unwritten"
                    ),
                }
            }
        }
    }

    // oracle 2: flagged writes are removable without changing any launch
    let mut pruned = m.clone();
    prune_flagged(&mut pruned);
    verify(&pruned).expect("pruned module must verify");
    let pruned_trace: ExecTrace = interpret(&pruned, "f", &args, FUEL).expect("pruned run");
    assert_eq!(
        trace.launches, pruned_trace.launches,
        "deleting dead/redundant writes changed the launch trace"
    );

    // oracle 3: the static bound claims only value-resident writes — the
    // interpreter counts exactly those as `elided_writes`, so the bound
    // can never exceed that dynamic ground truth
    let report = lint_module(&m);
    assert!(
        report.elidable_bound <= trace.elided_writes as u64,
        "bound {} > dynamically resident writes {}",
        report.elidable_bound,
        trace.elided_writes
    );
    assert!(
        report.static_writes <= trace.setup_writes as u64,
        "static_writes {} > executed {}",
        report.static_writes,
        trace.setup_writes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analysis_matches_interpreter(
        actions in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
        a0 in -4i64..100,
        a1 in -4i64..100,
        flag in any::<bool>(),
    ) {
        check_module(&actions, a0, a1, flag);
    }
}

#[test]
fn oracle_exercises_structured_modules() {
    // a fixed tape covering loop + if + clobber + multiple launches, so a
    // regression in the generator (e.g. regions never emitted) is caught
    // even if the random tape distribution shifts
    let actions: Vec<Action> = vec![
        (0, 0, 0), // setup alpha f0
        (6, 3, 2), // for 3 trips, budget 3
        (1, 2, 1), //   setup alpha f1
        (3, 0, 0), //   launch alpha
        (7, 1, 1), //   if then{1} else{1} (nested)
        (5, 0, 0), // clobber
        (4, 1, 0), // launch beta
        (2, 3, 2), // setup beta f2
        (3, 1, 0), // launch beta
    ];
    let m = build(&actions);
    let func = m.func_by_name("f").unwrap();
    let cfg = analyze_func(&m, func);
    assert!(cfg.launches.len() >= 3, "tape should produce several sites");
    check_module(&actions, 5, -2, true);
    check_module(&actions, 0, 0, false);
}
