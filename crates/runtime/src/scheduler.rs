//! Request routing: FIFO round-robin vs. config-affinity.
//!
//! The scheduler mirrors every worker's resident configuration register
//! file (a shadow copy, updated with exactly the deltas the worker will
//! apply) and, under [`Policy::ConfigAffinity`], routes each request to
//! the compatible worker whose resident state minimizes the configuration
//! writes the dispatch must emit — among workers whose *estimated
//! outstanding cycles* are within [`LOAD_SLACK_CYCLES`] of the group's
//! shortest queue, so stickiness cannot starve the pool or build
//! head-of-line queues. [`Policy::Fifo`] is the baseline a
//! config-oblivious load balancer would use: strict round-robin over the
//! compatible workers, in arrival order.
//!
//! Load is tracked as a queue *depth in cycles*, not a dispatch count:
//! each commit extends the worker's estimated drain time by the module's
//! predicted execution cycles ([`CostModel::predict`] over the writes the
//! dispatch will emit), and the serve-loop clock — each request's arrival
//! cycle — drains completed work. A same-config batch of `k` requests
//! therefore weighs `k` predicted dispatches, and a heavyweight module
//! weighs more than a light one, which is what keeps affinity's tail
//! latency close to round-robin while it still wins on writes.
//!
//! Predictions start from the module's build-time anchors and are
//! *refined online*: as the serve loop retires completed dispatches it
//! feeds their measured cycles back through [`Scheduler::observe`], and
//! the per-`(module, warmth bucket)` EWMA held by [`CostRefiner`] takes
//! over from the static interpolation wherever it has data. Because
//! retirement happens at deterministic points of the simulated clock, the
//! refined estimates — and every routing decision made from them — remain
//! a pure function of the request stream.
//!
//! Routing decisions are made synchronously in the serve loop — before
//! jobs reach the worker threads — so scheduling, and with it every
//! metric, is deterministic regardless of thread interleaving.
//!
//! [`CostModel::predict`]: crate::cache::CostModel::predict
//! [`CostRefiner`]: crate::cache::CostRefiner

use crate::cache::{CompiledModule, CostRefiner};
use crate::plan::RegMap;

/// The routing-and-dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// The production baseline: round-robin over compatible workers, and
    /// every dispatch reprograms its full configuration (no cross-request
    /// state reuse) — what a serving system built on volatile per-request
    /// kernels does today.
    Fifo,
    /// Ablation: round-robin routing, but dispatches elide writes already
    /// resident on the worker. Isolates the value of state tracking from
    /// the value of routing.
    FifoElide,
    /// Route to the worker whose resident register file minimizes the new
    /// configuration writes, and elide resident writes. Because a
    /// warm-start dispatch can only write a subset of what a cold one
    /// writes, this policy never emits more setup writes than [`Fifo`]
    /// on the same stream.
    ///
    /// [`Fifo`]: Policy::Fifo
    #[default]
    ConfigAffinity,
}

impl Policy {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::FifoElide => "fifo+elide",
            Policy::ConfigAffinity => "affinity",
        }
    }

    /// `true` if dispatches under this policy skip writes whose values are
    /// already resident on the worker.
    pub fn elides(self) -> bool {
        !matches!(self, Policy::Fifo)
    }
}

/// How many estimated outstanding *cycles* a worker's queue may run ahead
/// of its group's shortest before affinity scoring prefers balance over
/// resident-state overlap.
///
/// Pure min-writes routing degenerates: once one worker is warm it scores
/// below a blank worker for *every* shape, so the rest of the group
/// starves and tail latency explodes. Bucketing the queue-depth gap by
/// this slack keeps dispatches sticky over short horizons (where the
/// write savings are) while bounding the queue a request can land behind.
/// The horizon is *exclusive*: a worker whose gap is exactly at the
/// boundary already falls into the next pressure bucket (see the
/// `pressure` bucketing below). Elision — not routing — is what guarantees affinity
/// never writes more than the cold FIFO baseline, so this trade-off
/// cannot break that property.
pub const LOAD_SLACK_CYCLES: u64 = 256;

/// Buckets a worker's outstanding-cycle gap over the group's shortest
/// queue into a balance-pressure class.
///
/// Workers whose gap is strictly within [`LOAD_SLACK_CYCLES`] compete on
/// writes (bucket 0); a worker *exactly at* the slack boundary is not
/// tied with the least-loaded — it lands in bucket 1, where balance wins.
/// Earlier revisions expressed this as a raw integer division of dispatch
/// counts, which left the boundary semantics implicit; the bucketing is
/// now pinned by a unit test on both sides of the boundary.
fn pressure(gap: u64) -> u64 {
    gap / LOAD_SLACK_CYCLES
}

/// What one [`Scheduler::commit`] predicted for its dispatch — recorded by
/// the serve loop so observed-vs-predicted error can be measured and the
/// retirement path can attribute the observation to the right warmth
/// bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Configuration writes the dispatch is predicted to emit.
    pub writes: u64,
    /// Warmth bucket those writes land in (see [`CostModel::bucket`]).
    ///
    /// [`CostModel::bucket`]: crate::cache::CostModel::bucket
    pub bucket: usize,
    /// Cycles the static build-time anchors predict.
    pub anchor_cycles: u64,
    /// Cycles the scheduler actually charged the worker's queue: the
    /// refined (EWMA) estimate when refinement is on and the bucket has
    /// been observed, the anchor prediction otherwise.
    pub predicted_cycles: u64,
}

/// Scheduler state across one serve run.
#[derive(Debug)]
pub struct Scheduler {
    policy: Policy,
    shadows: Vec<RegMap>,
    /// Estimated cycle at which each worker's committed queue drains.
    ready: Vec<u64>,
    round_robin: Vec<usize>,
    refine: bool,
    refiner: CostRefiner,
}

impl Scheduler {
    /// A scheduler for `workers` workers across `groups` accelerator
    /// groups, with online cost refinement enabled.
    pub fn new(policy: Policy, workers: usize, groups: usize) -> Self {
        Self {
            policy,
            shadows: vec![RegMap::new(); workers],
            ready: vec![0; workers],
            round_robin: vec![0; groups],
            refine: true,
            refiner: CostRefiner::new(),
        }
    }

    /// Enables or disables online cost refinement (on by default). With
    /// refinement off, queue estimates use only the static build-time
    /// anchors — the ablation `serve_bench` quantifies prediction error
    /// against.
    #[must_use]
    pub fn with_refinement(mut self, refine: bool) -> Self {
        self.refine = refine;
        self
    }

    /// Feeds one retired dispatch's measured `cycles` (landing in
    /// `bucket`) back into the cost refiner. A no-op when refinement is
    /// disabled.
    pub fn observe(&mut self, module: &CompiledModule, bucket: usize, cycles: u64) {
        if self.refine {
            self.refiner.observe(&module.key, bucket, cycles);
        }
    }

    /// The cost refiner's current estimates (for tests and diagnostics).
    pub fn refiner(&self) -> &CostRefiner {
        &self.refiner
    }

    /// The estimated cycles of committed work still queued on `worker` at
    /// serve-loop time `now` — completed work has drained.
    pub fn outstanding(&self, worker: usize, now: u64) -> u64 {
        self.ready[worker].saturating_sub(now)
    }

    /// Picks a worker from `candidates` (the group's workers, ascending)
    /// for a dispatch of `module` arriving at serve-loop cycle `now`.
    /// `group` identifies the accelerator group for the round-robin
    /// counter.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn choose(
        &mut self,
        group: usize,
        candidates: &[usize],
        module: &CompiledModule,
        now: u64,
    ) -> usize {
        assert!(!candidates.is_empty(), "scheduling against an empty group");
        match self.policy {
            Policy::Fifo | Policy::FifoElide => {
                let slot = self.round_robin[group] % candidates.len();
                self.round_robin[group] += 1;
                candidates[slot]
            }
            Policy::ConfigAffinity => {
                let min_outstanding = candidates
                    .iter()
                    .map(|&w| self.outstanding(w, now))
                    .min()
                    .expect("nonempty");
                let mut best = candidates[0];
                let mut best_key = (u64::MAX, u64::MAX, u64::MAX, usize::MAX);
                for &w in candidates {
                    let writes = module.plan.writes_against(&self.shadows[w]);
                    // workers within the slack horizon of the shortest
                    // queue compete on writes; beyond it, balance wins
                    let outstanding = self.outstanding(w, now);
                    let key = (
                        pressure(outstanding - min_outstanding),
                        writes,
                        outstanding,
                        w,
                    );
                    if key < best_key {
                        best_key = key;
                        best = w;
                    }
                }
                best
            }
        }
    }

    /// Records a dispatch of `module` to `worker` at serve-loop cycle
    /// `now`: updates the shadow resident state with the same deltas the
    /// worker will apply (under eliding policies), extends the worker's
    /// queue by the dispatch's predicted execution cycles, and returns
    /// what was predicted so the serve loop can measure it against the
    /// observed cost.
    ///
    /// Queue accounting now runs under *every* policy — the round-robin
    /// policies never read it for routing, but the batch cutoff and the
    /// prediction-error metrics do.
    pub fn commit(&mut self, worker: usize, module: &CompiledModule, now: u64) -> CommitOutcome {
        let writes = if self.policy.elides() {
            // the dispatch's cost follows the writes it actually emits
            // against this worker's resident state
            module.plan.apply_writes(&mut self.shadows[worker])
        } else {
            // the cold baseline reprograms everything, every time
            module.plan.cold_writes
        };
        let bucket = module.cost.bucket(writes);
        let anchor_cycles = module.cost.predict(writes);
        let predicted_cycles = if self.refine {
            self.refiner.predict(module, writes)
        } else {
            anchor_cycles
        };
        self.ready[worker] = self.ready[worker].max(now) + predicted_cycles;
        CommitOutcome {
            writes,
            bucket,
            anchor_cycles,
            predicted_cycles,
        }
    }

    /// The shadow resident state of `worker` (for tests and diagnostics).
    pub fn shadow(&self, worker: usize) -> &RegMap {
        &self.shadows[worker]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::build_module;
    use accfg::pipeline::OptLevel;
    use accfg_targets::AcceleratorDescriptor;
    use accfg_workloads::MatmulSpec;

    /// A single-invocation module: same-shape repeats are zero-write.
    fn single_tile_module(size: i64) -> CompiledModule {
        let spec = MatmulSpec::new((size, size, size), (size, size, size)).unwrap();
        assert_eq!(spec.invocations(), 1);
        build_module(&AcceleratorDescriptor::opengemm(), spec, OptLevel::All).unwrap()
    }

    #[test]
    fn fifo_round_robins_per_group() {
        let m = single_tile_module(8);
        for policy in [Policy::Fifo, Policy::FifoElide] {
            let mut s = Scheduler::new(policy, 4, 2);
            let picks: Vec<usize> = (0..5).map(|_| s.choose(0, &[0, 1], &m, 0)).collect();
            assert_eq!(picks, vec![0, 1, 0, 1, 0]);
            // the second group's counter is independent
            assert_eq!(s.choose(1, &[2, 3], &m, 0), 2);
        }
    }

    #[test]
    fn affinity_prefers_the_matching_worker() {
        let m8 = single_tile_module(8);
        let m16 = single_tile_module(16);
        let mut s = Scheduler::new(Policy::ConfigAffinity, 2, 1);
        // first dispatch: both blank, tie broken by queue depth then index
        let w8 = s.choose(0, &[0, 1], &m8, 0);
        assert_eq!(w8, 0);
        s.commit(w8, &m8, 0);
        // once the first dispatch has drained, a same-shape repeat stays
        // on the now-warm worker 0
        let later = s.ready[0];
        assert_eq!(m8.plan.writes_against(s.shadow(0)), 0);
        assert_eq!(s.choose(0, &[0, 1], &m8, later), 0);
        s.commit(0, &m8, later);
        // the other shape is routed wherever it is cheapest; once
        // committed, its repeats stick to that worker
        let later = s.ready.iter().copied().max().unwrap();
        let w16 = s.choose(0, &[0, 1], &m16, later);
        s.commit(w16, &m16, later);
        let later = s.ready.iter().copied().max().unwrap();
        assert_eq!(m16.plan.writes_against(s.shadow(w16)), 0);
        assert_eq!(s.choose(0, &[0, 1], &m16, later), w16);
        // and the first shape still has its warm worker
        assert_eq!(s.choose(0, &[0, 1], &m8, later), 0);
    }

    #[test]
    fn affinity_bounds_queue_imbalance() {
        // pure min-writes routing would send every same-shape request to
        // the first worker forever; the slack bucket spreads them once the
        // outstanding-cycle gap reaches the horizon. All requests arrive
        // at cycle 0, so nothing drains and queues only grow.
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, 2, 1);
        let mut counts = [0u64; 2];
        for _ in 0..200 {
            let w = s.choose(0, &[0, 1], &m, 0);
            s.commit(w, &m, 0);
            counts[w] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "{counts:?}");
        // the drain-time gap can never exceed the slack horizon plus one
        // dispatch's predicted cycles
        let max_dispatch = m.cost.cold_cycles;
        assert!(
            s.ready[0].abs_diff(s.ready[1]) <= LOAD_SLACK_CYCLES + max_dispatch,
            "ready {:?}",
            s.ready
        );
    }

    #[test]
    fn drained_queues_compete_as_idle() {
        // a worker whose committed work has drained by `now` is
        // indistinguishable from an idle one, so affinity wins again
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, 2, 1);
        for _ in 0..50 {
            let w = s.choose(0, &[0, 1], &m, 0);
            s.commit(w, &m, 0);
        }
        let drained = s.ready.iter().copied().max().unwrap();
        assert_eq!(s.outstanding(0, drained), 0);
        assert_eq!(s.outstanding(1, drained), 0);
        // worker 0 is the warm one (first pick); with both queues drained
        // the zero-write worker wins regardless of its busier past
        assert_eq!(m.plan.writes_against(s.shadow(0)), 0);
        assert_eq!(s.choose(0, &[0, 1], &m, drained), 0);
    }

    #[test]
    fn slack_boundary_prefers_balance() {
        // a warm worker exactly at the slack boundary is NOT tied with the
        // least-loaded: balance beats affinity there, while one cycle
        // inside the horizon affinity still wins
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, 2, 1);
        s.commit(0, &m, 0); // worker 0 warm (zero further writes), worker 1 blank
        assert_eq!(m.plan.writes_against(s.shadow(0)), 0);
        assert!(m.plan.writes_against(s.shadow(1)) > 0);

        // one cycle inside the horizon: stickiness wins despite the queue
        s.ready[0] = LOAD_SLACK_CYCLES - 1;
        s.ready[1] = 0;
        assert_eq!(s.choose(0, &[0, 1], &m, 0), 0);

        // exactly at the boundary: the warm worker falls into pressure
        // bucket 1 and the blank-but-short queue wins
        s.ready[0] = LOAD_SLACK_CYCLES;
        assert_eq!(s.choose(0, &[0, 1], &m, 0), 1);

        // the boundary drains with the clock: the same gap measured later
        // is back inside the horizon
        s.ready[0] = LOAD_SLACK_CYCLES + 10;
        s.ready[1] = 11;
        assert_eq!(s.choose(0, &[0, 1], &m, 11), 0);
    }

    #[test]
    fn pressure_buckets_pin_the_boundary() {
        assert_eq!(pressure(0), 0);
        assert_eq!(pressure(LOAD_SLACK_CYCLES - 1), 0);
        assert_eq!(pressure(LOAD_SLACK_CYCLES), 1);
        assert_eq!(pressure(2 * LOAD_SLACK_CYCLES - 1), 1);
        assert_eq!(pressure(2 * LOAD_SLACK_CYCLES), 2);
    }

    #[test]
    fn batched_commits_accumulate_per_request_cycles() {
        // a same-config batch of k requests weighs k predicted dispatches
        // (one cold + k-1 warm), not one — the accounting skew that made
        // dispatch-count load undercharge batched workers
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, 2, 1);
        let cold = m.cost.predict(m.plan.cold_writes);
        let mut shadow = RegMap::new();
        m.plan.apply_writes(&mut shadow);
        let warm = m.cost.predict(m.plan.writes_against(&shadow));
        for _ in 0..4 {
            s.commit(0, &m, 0);
        }
        assert_eq!(s.ready[0], cold + 3 * warm);
        assert!(s.outstanding(0, 0) > cold, "batch must weigh more than 1");
        // and the unbatched worker's queue is judged on the same scale
        s.commit(1, &m, 0);
        assert_eq!(s.ready[1], cold);
    }

    #[test]
    fn heavy_modules_weigh_more_than_light_ones() {
        let light = single_tile_module(8);
        let heavy = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(32).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let mut s = Scheduler::new(Policy::ConfigAffinity, 2, 1);
        s.commit(0, &light, 0);
        s.commit(1, &heavy, 0);
        assert!(
            s.outstanding(1, 0) > s.outstanding(0, 0),
            "a 16-launch module must queue longer than a single-tile one"
        );
    }

    #[test]
    fn round_robin_commits_still_track_queues_and_shadows() {
        // the batch cutoff and the prediction metrics read queue estimates
        // under every policy, so commit can no longer early-out for the
        // round-robin policies
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::FifoElide, 2, 1);
        let first = s.commit(0, &m, 0);
        assert_eq!(first.writes, m.plan.cold_writes);
        assert_eq!(s.outstanding(0, 0), first.predicted_cycles);
        // the shadow advanced, so a repeat is scored (and charged) warm
        let second = s.commit(0, &m, 0);
        assert_eq!(second.writes, m.plan.writes_against(s.shadow(0)));
        assert!(second.writes < first.writes);
        assert!(second.predicted_cycles < first.predicted_cycles);
        // the cold baseline never elides: every commit charges cold
        let mut cold = Scheduler::new(Policy::Fifo, 1, 1);
        for _ in 0..2 {
            let outcome = cold.commit(0, &m, 0);
            assert_eq!(outcome.writes, m.plan.cold_writes);
            assert_eq!(outcome.predicted_cycles, m.cost.cold_cycles);
        }
        assert_eq!(cold.outstanding(0, 0), 2 * m.cost.cold_cycles);
    }

    #[test]
    fn observed_cycles_refine_commit_predictions() {
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, 1, 1);
        let first = s.commit(0, &m, 0);
        // nothing observed yet: the charge equals the anchor prediction
        assert_eq!(first.predicted_cycles, first.anchor_cycles);
        // a retired dispatch reports very different measured cycles for
        // the warm bucket; the next warm commit quotes the EWMA
        let warm_probe = s.commit(0, &m, 0);
        s.observe(&m, warm_probe.bucket, warm_probe.anchor_cycles + 500);
        let refined = s.commit(0, &m, 0);
        assert_eq!(refined.bucket, warm_probe.bucket);
        assert_eq!(refined.predicted_cycles, warm_probe.anchor_cycles + 500);
        assert_eq!(refined.anchor_cycles, warm_probe.anchor_cycles);
        // with refinement disabled the same observation changes nothing
        let mut fixed = Scheduler::new(Policy::ConfigAffinity, 1, 1).with_refinement(false);
        fixed.commit(0, &m, 0);
        let probe = fixed.commit(0, &m, 0);
        fixed.observe(&m, probe.bucket, probe.anchor_cycles + 500);
        assert_eq!(fixed.refiner().modules_observed(), 0);
        let unrefined = fixed.commit(0, &m, 0);
        assert_eq!(unrefined.predicted_cycles, unrefined.anchor_cycles);
    }

    #[test]
    fn policy_predicates() {
        assert!(!Policy::Fifo.elides());
        assert!(Policy::FifoElide.elides());
        assert!(Policy::ConfigAffinity.elides());
        assert_eq!(Policy::Fifo.label(), "fifo");
        assert_eq!(Policy::FifoElide.label(), "fifo+elide");
        assert_eq!(Policy::ConfigAffinity.label(), "affinity");
    }

    #[test]
    fn shadow_tracks_final_plan_state() {
        let m = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let mut s = Scheduler::new(Policy::ConfigAffinity, 1, 1);
        s.commit(0, &m, 0);
        // the shadow now holds the last launch's register file
        let last = &m.plan.launches.last().unwrap().registers;
        for (reg, value) in last {
            assert_eq!(s.shadow(0).get(reg), Some(value), "reg {reg}");
        }
    }
}
