//! Request routing: FIFO round-robin vs. config-affinity.
//!
//! The scheduler mirrors every worker's resident configuration register
//! file (a shadow copy, updated with exactly the deltas the worker will
//! apply) and, under [`Policy::ConfigAffinity`], routes each request to
//! the compatible worker whose resident state minimizes the configuration
//! writes the dispatch must emit — among workers within [`LOAD_SLACK`]
//! dispatches of the group's least-loaded, so stickiness cannot starve
//! the rest of the pool. [`Policy::Fifo`] is the baseline a
//! config-oblivious load balancer would use: strict round-robin over the
//! compatible workers, in arrival order.
//!
//! Routing decisions are made synchronously in the serve loop — before
//! jobs reach the worker threads — so scheduling, and with it every
//! metric, is deterministic regardless of thread interleaving.

use crate::cache::CompiledModule;
use crate::plan::{delta_writes, RegMap};

/// The routing-and-dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// The production baseline: round-robin over compatible workers, and
    /// every dispatch reprograms its full configuration (no cross-request
    /// state reuse) — what a serving system built on volatile per-request
    /// kernels does today.
    Fifo,
    /// Ablation: round-robin routing, but dispatches elide writes already
    /// resident on the worker. Isolates the value of state tracking from
    /// the value of routing.
    FifoElide,
    /// Route to the worker whose resident register file minimizes the new
    /// configuration writes, and elide resident writes. Because a
    /// warm-start dispatch can only write a subset of what a cold one
    /// writes, this policy never emits more setup writes than [`Fifo`]
    /// on the same stream.
    ///
    /// [`Fifo`]: Policy::Fifo
    #[default]
    ConfigAffinity,
}

impl Policy {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::FifoElide => "fifo+elide",
            Policy::ConfigAffinity => "affinity",
        }
    }

    /// `true` if dispatches under this policy skip writes whose values are
    /// already resident on the worker.
    pub fn elides(self) -> bool {
        !matches!(self, Policy::Fifo)
    }
}

/// How far (in assigned requests) a worker may run ahead of its group's
/// least-loaded worker before affinity scoring prefers balance over
/// resident-state overlap.
///
/// Pure min-writes routing degenerates: once one worker is warm it scores
/// below a blank worker for *every* shape, so the rest of the group
/// starves and tail latency explodes. Bucketing the load difference by
/// this slack keeps dispatches sticky over short horizons (where the
/// write savings are) while bounding imbalance. Elision — not routing —
/// is what guarantees affinity never writes more than the cold FIFO
/// baseline, so this trade-off cannot break that property.
const LOAD_SLACK: u64 = 16;

/// Scheduler state across one serve run.
#[derive(Debug)]
pub struct Scheduler {
    policy: Policy,
    shadows: Vec<RegMap>,
    load: Vec<u64>,
    round_robin: Vec<usize>,
}

impl Scheduler {
    /// A scheduler for `workers` workers across `groups` accelerator
    /// groups.
    pub fn new(policy: Policy, workers: usize, groups: usize) -> Self {
        Self {
            policy,
            shadows: vec![RegMap::new(); workers],
            load: vec![0; workers],
            round_robin: vec![0; groups],
        }
    }

    /// Picks a worker from `candidates` (the group's workers, ascending)
    /// for a dispatch of `module`. `group` identifies the accelerator
    /// group for the round-robin counter.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn choose(&mut self, group: usize, candidates: &[usize], module: &CompiledModule) -> usize {
        assert!(!candidates.is_empty(), "scheduling against an empty group");
        match self.policy {
            Policy::Fifo | Policy::FifoElide => {
                let slot = self.round_robin[group] % candidates.len();
                self.round_robin[group] += 1;
                candidates[slot]
            }
            Policy::ConfigAffinity => {
                let min_load = candidates
                    .iter()
                    .map(|&w| self.load[w])
                    .min()
                    .expect("nonempty");
                let mut best = candidates[0];
                let mut best_key = (u64::MAX, u64::MAX, u64::MAX, usize::MAX);
                for &w in candidates {
                    let writes = module.plan.writes_against(&self.shadows[w]);
                    // workers within LOAD_SLACK of the least-loaded compete
                    // on writes; beyond that, balance wins
                    let pressure = (self.load[w] - min_load) / LOAD_SLACK;
                    let key = (pressure, writes, self.load[w], w);
                    if key < best_key {
                        best_key = key;
                        best = w;
                    }
                }
                best
            }
        }
    }

    /// Records a dispatch of `module` to `worker`, updating the shadow
    /// resident state with the same deltas the worker will apply.
    pub fn commit(&mut self, worker: usize, module: &CompiledModule) {
        let shadow = &mut self.shadows[worker];
        for launch in &module.plan.launches {
            let _ = delta_writes(shadow, launch, module.plan.style);
        }
        self.load[worker] += 1;
    }

    /// The shadow resident state of `worker` (for tests and diagnostics).
    pub fn shadow(&self, worker: usize) -> &RegMap {
        &self.shadows[worker]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::build_module;
    use accfg::pipeline::OptLevel;
    use accfg_targets::AcceleratorDescriptor;
    use accfg_workloads::MatmulSpec;

    /// A single-invocation module: same-shape repeats are zero-write.
    fn single_tile_module(size: i64) -> CompiledModule {
        let spec = MatmulSpec::new((size, size, size), (size, size, size)).unwrap();
        assert_eq!(spec.invocations(), 1);
        build_module(&AcceleratorDescriptor::opengemm(), spec, OptLevel::All).unwrap()
    }

    #[test]
    fn fifo_round_robins_per_group() {
        let m = single_tile_module(8);
        for policy in [Policy::Fifo, Policy::FifoElide] {
            let mut s = Scheduler::new(policy, 4, 2);
            let picks: Vec<usize> = (0..5).map(|_| s.choose(0, &[0, 1], &m)).collect();
            assert_eq!(picks, vec![0, 1, 0, 1, 0]);
            // the second group's counter is independent
            assert_eq!(s.choose(1, &[2, 3], &m), 2);
        }
    }

    #[test]
    fn affinity_prefers_the_matching_worker() {
        let m8 = single_tile_module(8);
        let m16 = single_tile_module(16);
        let mut s = Scheduler::new(Policy::ConfigAffinity, 2, 1);
        // first dispatch: both blank, tie broken by load then index
        let w8 = s.choose(0, &[0, 1], &m8);
        assert_eq!(w8, 0);
        s.commit(w8, &m8);
        // a same-shape repeat stays on the now-free worker 0
        assert_eq!(m8.plan.writes_against(s.shadow(0)), 0);
        assert_eq!(s.choose(0, &[0, 1], &m8), 0);
        s.commit(0, &m8);
        // the other shape is routed wherever it is cheapest; once
        // committed, its repeats stick to that worker
        let w16 = s.choose(0, &[0, 1], &m16);
        s.commit(w16, &m16);
        assert_eq!(m16.plan.writes_against(s.shadow(w16)), 0);
        assert_eq!(s.choose(0, &[0, 1], &m16), w16);
        // and the first shape still has its warm worker
        assert_eq!(s.choose(0, &[0, 1], &m8), 0);
    }

    #[test]
    fn affinity_bounds_load_imbalance() {
        // pure min-writes routing would send every same-shape request to
        // the first worker forever; the load-slack bucket spreads them
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, 2, 1);
        let mut counts = [0u64; 2];
        for _ in 0..200 {
            let w = s.choose(0, &[0, 1], &m);
            s.commit(w, &m);
            counts[w] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "{counts:?}");
        assert!(
            counts[0].abs_diff(counts[1]) <= 2 * LOAD_SLACK,
            "{counts:?}"
        );
    }

    #[test]
    fn policy_predicates() {
        assert!(!Policy::Fifo.elides());
        assert!(Policy::FifoElide.elides());
        assert!(Policy::ConfigAffinity.elides());
        assert_eq!(Policy::Fifo.label(), "fifo");
        assert_eq!(Policy::FifoElide.label(), "fifo+elide");
        assert_eq!(Policy::ConfigAffinity.label(), "affinity");
    }

    #[test]
    fn shadow_tracks_final_plan_state() {
        let m = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let mut s = Scheduler::new(Policy::ConfigAffinity, 1, 1);
        s.commit(0, &m);
        // the shadow now holds the last launch's register file
        let last = &m.plan.launches.last().unwrap().registers;
        for (reg, value) in last {
            assert_eq!(s.shadow(0).get(reg), Some(value), "reg {reg}");
        }
    }
}
