//! The scheduling core: load/residency accounting ([`LoadTracker`]) and
//! the per-run [`Scheduler`] that pairs it with a pluggable routing
//! policy.
//!
//! The scheduler mirrors every worker's resident configuration register
//! file (a shadow copy, updated with exactly the deltas the worker will
//! apply) and holds each worker's load as *estimated outstanding cycles*.
//! Routing itself is delegated to a [`SchedulePolicy`] implementation
//! (see [`crate::policy`]): round-robin (`fifo`, `fifo+elide`),
//! write-minimizing within a load-slack horizon (`affinity`), or
//! completion-cycle-minimizing over per-platform cost models (`cost`).
//! The accounting here is policy-agnostic: every policy's commits flow
//! through the same queue and shadow bookkeeping, so batching cutoffs,
//! prediction metrics, and refinement behave identically under all of
//! them.
//!
//! Load is tracked as a queue *depth in cycles*, not a dispatch count:
//! each commit extends the worker's estimated drain time by the module's
//! predicted execution cycles ([`CostModel::predict`] over the writes the
//! dispatch will emit, on the *worker's* platform), and the serve-loop
//! clock — each request's arrival cycle — drains completed work. A
//! same-config batch of `k` requests therefore weighs `k` predicted
//! dispatches, and a heavyweight module weighs more than a light one,
//! which is what keeps sticky routing's tail latency close to round-robin
//! while it still wins on writes.
//!
//! Pools may be *heterogeneous*: workers of one routing group can run
//! differently provisioned platform variants (same configuration
//! interface, different geometry and speed). The tracker assigns each
//! distinct variant a platform index, re-derives analytic cost anchors
//! per `(module, platform)`, and keys the online refiner by platform, so
//! both queue accounting and the `cost` policy's scores reflect what a
//! dispatch actually costs *on that worker*.
//!
//! Predictions start from analytic anchors and are *refined online*: as
//! the serve loop retires completed dispatches it feeds their measured
//! cycles back through [`Scheduler::observe`], and the
//! per-`(module, platform, warmth bucket)` EWMA held by [`CostRefiner`]
//! takes over from the static interpolation wherever it has data. Each
//! observation carries the worker's DVFS frequency state at retirement,
//! so the refiner additionally keeps frequency-keyed rows; the tracker
//! mirrors every worker's DVFS automaton in shadow (advanced at commit
//! with predicted busy windows, optionally bounded by a per-group boost
//! power cap) so frequency-aware policies can ask what state a candidate
//! would launch in — see [`LoadTracker::predicted_mode`]. Because
//! retirement happens at deterministic points of the simulated clock, the
//! refined estimates — and every routing decision made from them — remain
//! a pure function of the request stream.
//!
//! Routing decisions are made synchronously in the serve loop — before
//! jobs reach the worker threads — so scheduling, and with it every
//! metric, is deterministic regardless of thread interleaving.
//!
//! [`CostModel::predict`]: crate::cache::CostModel::predict
//! [`CostRefiner`]: crate::cache::CostRefiner

use crate::cache::{CacheKey, CompiledModule, CostModel, CostRefiner};
use crate::plan::RegMap;
use crate::policy::{Policy, SchedulePolicy};
use accfg_sim::{DvfsParams, DvfsState, FreqState, FREQ_STATES};
use accfg_targets::AcceleratorDescriptor;
use std::cell::RefCell;
use std::collections::HashMap;

/// The default load-slack horizon: how many estimated outstanding
/// *cycles* a worker's queue may run ahead of its group's best candidate
/// before policy scoring prefers balance over resident-state overlap.
///
/// Pure min-writes routing degenerates: once one worker is warm it scores
/// below a blank worker for *every* shape, so the rest of the group
/// starves and tail latency explodes. Bucketing the cycle gap by this
/// slack keeps dispatches sticky over short horizons (where the write
/// savings are) while bounding the queue a request can land behind. The
/// horizon is *exclusive*: a worker whose gap is exactly at the boundary
/// already falls into the next pressure bucket (pinned by a unit test on
/// both sides of the boundary). Elision — not routing — is what
/// guarantees the eliding policies never write more than the cold FIFO
/// baseline, so this trade-off cannot break that property.
///
/// The horizon is per-run configuration, not a constant: set it with
/// [`ServeConfig::load_slack`] (or [`LoadTracker::with_slack`] when
/// driving the scheduler directly); `serve_bench --slack <cycles>` sweeps
/// it without recompiling. This value (256, chosen by the PR 2 sweep:
/// 96–256 near-equivalent, 384+ degrades) is the default everywhere.
///
/// [`ServeConfig::load_slack`]: crate::runtime::ServeConfig::load_slack
pub const LOAD_SLACK_CYCLES: u64 = 256;

/// What one [`Scheduler::commit`] predicted for its dispatch — recorded by
/// the serve loop so observed-vs-predicted error can be measured and the
/// retirement path can attribute the observation to the right warmth
/// bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Configuration writes the dispatch is predicted to emit.
    pub writes: u64,
    /// Warmth bucket those writes land in (see [`CostModel::bucket`]).
    ///
    /// [`CostModel::bucket`]: crate::cache::CostModel::bucket
    pub bucket: usize,
    /// Cycles the static anchors predict on the committed worker's
    /// platform.
    pub anchor_cycles: u64,
    /// Cycles the scheduler actually charged the worker's queue: the
    /// refined (EWMA) estimate when refinement is on and the bucket has
    /// been observed, the anchor prediction otherwise.
    pub predicted_cycles: u64,
    /// Frequency-keyed predictions, one per [`FreqState`] in index order:
    /// what the refiner would quote if the dispatch's last launch ran
    /// cold / warm / boost. The retirement path indexes this by the
    /// *observed* frequency state ([`Completion::freq`]) to measure the
    /// keyed estimator's error next to the mode-agnostic
    /// `predicted_cycles`. With refinement off every entry equals
    /// `anchor_cycles`.
    ///
    /// [`Completion::freq`]: crate::worker::Completion::freq
    pub keyed_cycles: [u64; FREQ_STATES],
}

/// The policy-agnostic accounting core of the scheduler: shadow resident
/// register files, outstanding-cycle queues, per-platform cost anchors,
/// and the online cost refiner.
///
/// Policies read this (via [`SchedulePolicy::choose`]); only the serve
/// loop writes it, through [`LoadTracker::commit`] and
/// [`LoadTracker::observe`] — so no policy can corrupt the accounting
/// every other subsystem (batch cutoff, prediction metrics, refinement)
/// depends on.
#[derive(Debug)]
pub struct LoadTracker {
    shadows: Vec<RegMap>,
    /// Estimated cycle at which each worker's committed queue drains.
    ready: Vec<u64>,
    /// Distinct platform variants in the pool, in order of first
    /// appearance over the worker list.
    variants: Vec<AcceleratorDescriptor>,
    /// Per-worker index into `variants`.
    worker_platform: Vec<usize>,
    /// Memoized re-estimated anchors for modules running on a platform
    /// other than the one they were compiled for (inner index: platform).
    /// A pure cache — values are a function of `(module, platform)` — so
    /// interior mutability cannot leak nondeterminism into scoring.
    variant_anchors: RefCell<HashMap<CacheKey, Vec<Option<CostModel>>>>,
    refine: bool,
    refiner: CostRefiner,
    /// The load-slack horizon policies bucket queue gaps by.
    slack: u64,
    /// Per-platform DVFS table (`None` under the identity timing model).
    dvfs: Vec<Option<DvfsParams>>,
    /// Per-worker shadow DVFS automaton, advanced at commit with the
    /// *predicted* busy window — the scheduler's estimate of the worker's
    /// frequency heat, exactly as the shadow register file estimates its
    /// resident state.
    mirror: Vec<DvfsState>,
    /// The frequency mode each worker's most recent commit was predicted
    /// to launch at (power cap already applied) — what the cap counts as
    /// "holding a boost slot" while that commit is still queued.
    last_mode: Vec<FreqState>,
    /// Per-worker routing-group index (all workers share group 0 unless
    /// configured via [`LoadTracker::with_power_caps`]).
    worker_group: Vec<usize>,
    /// Per-group cap on simultaneously boosted workers (`None` = no cap).
    power_cap: Vec<Option<usize>>,
}

impl LoadTracker {
    /// A tracker for the given per-worker platform descriptors, with
    /// online cost refinement enabled.
    ///
    /// # Panics
    /// Panics if two descriptors share a name but differ in provisioning:
    /// platform state (cost anchors, refinement buckets) is keyed by
    /// name, so a same-name variant would silently share another
    /// platform's estimates. `Runtime::serve` reports this as
    /// [`ServeError::AmbiguousVariantName`] before constructing a
    /// tracker; direct users of this API fail loudly here instead.
    ///
    /// [`ServeError::AmbiguousVariantName`]:
    ///     crate::error::ServeError::AmbiguousVariantName
    pub fn new(workers: &[AcceleratorDescriptor]) -> Self {
        let mut variants: Vec<AcceleratorDescriptor> = Vec::new();
        let mut worker_platform = Vec::with_capacity(workers.len());
        for desc in workers {
            let platform = match variants.iter().position(|v| v.name == desc.name) {
                Some(platform) => {
                    assert!(
                        variants[platform] == *desc,
                        "two differently provisioned worker platforms share the name `{}`; \
                         variants must carry distinct names",
                        desc.name
                    );
                    platform
                }
                None => {
                    variants.push(desc.clone());
                    variants.len() - 1
                }
            };
            worker_platform.push(platform);
        }
        let dvfs = variants.iter().map(|v| v.timing.dvfs).collect();
        Self {
            shadows: vec![RegMap::new(); workers.len()],
            ready: vec![0; workers.len()],
            worker_platform,
            variant_anchors: RefCell::new(HashMap::new()),
            refine: true,
            refiner: CostRefiner::new(),
            slack: LOAD_SLACK_CYCLES,
            dvfs,
            mirror: vec![DvfsState::default(); workers.len()],
            last_mode: vec![FreqState::Cold; workers.len()],
            worker_group: vec![0; workers.len()],
            power_cap: Vec::new(),
            variants,
        }
    }

    /// Installs routing-group membership and per-group boost power caps
    /// (`worker_group[w]` is worker `w`'s group; `caps[g]` is group `g`'s
    /// cap, `None` for uncapped). The cap bounds how many of a group's
    /// workers the *scheduler's shadow automaton* treats as boosted at
    /// once: a candidate whose mirror would reach [`FreqState::Boost`]
    /// while the group's cap is exhausted is predicted (and charged) at
    /// [`FreqState::Warm`] instead, so frequency-aware scoring steers
    /// load away from over-committing boost. Validation (cap in
    /// `1..=group size`) happens at pool construction.
    ///
    /// # Panics
    /// Panics if `worker_group` does not cover every worker.
    #[must_use]
    pub fn with_power_caps(mut self, worker_group: Vec<usize>, caps: Vec<Option<usize>>) -> Self {
        assert_eq!(worker_group.len(), self.ready.len(), "one group per worker");
        self.worker_group = worker_group;
        self.power_cap = caps;
        self
    }

    /// Sets the load-slack horizon (cycles) policies bucket queue gaps
    /// by; defaults to [`LOAD_SLACK_CYCLES`]. A slack of 0 disables
    /// stickiness entirely (every nonzero gap prefers balance).
    #[must_use]
    pub fn with_slack(mut self, slack: u64) -> Self {
        self.slack = slack;
        self
    }

    /// The load-slack horizon in cycles.
    pub fn slack(&self) -> u64 {
        self.slack
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.ready.len()
    }

    /// The platform-variant index of `worker` (workers sharing a
    /// descriptor share refiner state).
    pub fn platform(&self, worker: usize) -> usize {
        self.worker_platform[worker]
    }

    /// The platform descriptor `worker` runs.
    pub fn descriptor(&self, worker: usize) -> &AcceleratorDescriptor {
        &self.variants[self.worker_platform[worker]]
    }

    /// Enables or disables online cost refinement (on by default). With
    /// refinement off, queue estimates use only the static anchors — the
    /// ablation `serve_bench` quantifies prediction error against.
    #[must_use]
    pub fn with_refinement(mut self, refine: bool) -> Self {
        self.refine = refine;
        self
    }

    /// The cost anchors for a dispatch of `module` on `worker`'s
    /// platform: the module's own build-time anchors where the worker
    /// runs the platform the module was compiled for, a re-estimate over
    /// the worker's descriptor otherwise (heterogeneous pools run one
    /// compiled plan on differently provisioned variants). Re-estimates
    /// are memoized per `(module, platform)` — this is a hot path of the
    /// `cost` policy's scoring.
    ///
    /// The runtime guarantees a descriptor name identifies one
    /// provisioning per pool (`ServeError::AmbiguousVariantName`), so
    /// matching the module's compile platform by name is sound.
    pub fn anchors(&self, worker: usize, module: &CompiledModule) -> CostModel {
        let platform = self.worker_platform[worker];
        let desc = &self.variants[platform];
        if desc.name == module.key.accelerator {
            return module.cost;
        }
        if let Some(anchors) = self
            .variant_anchors
            .borrow()
            .get(&module.key)
            .and_then(|per_platform| per_platform.get(platform))
            .and_then(|slot| *slot)
        {
            return anchors;
        }
        let anchors = CostModel::estimate(desc, &module.key.spec, &module.plan);
        let mut cache = self.variant_anchors.borrow_mut();
        let per_platform = cache.entry(module.key.clone()).or_default();
        if per_platform.len() <= platform {
            per_platform.resize(platform + 1, None);
        }
        per_platform[platform] = Some(anchors);
        anchors
    }

    /// The configuration writes a dispatch of `module` would emit against
    /// `worker`'s shadow resident state — the write term of every scoring
    /// function.
    pub fn writes_for(&self, worker: usize, module: &CompiledModule) -> u64 {
        module.plan.writes_against(&self.shadows[worker])
    }

    /// Predicted execution cycles of a dispatch of `module` emitting
    /// `writes` on `worker`: the platform's EWMA estimate where the
    /// warmth bucket has been observed (and refinement is on), the
    /// platform's anchor interpolation otherwise.
    pub fn predicted_cycles(&self, worker: usize, module: &CompiledModule, writes: u64) -> u64 {
        let anchors = self.anchors(worker, module);
        if self.refine {
            self.refiner
                .predict(&module.key, self.worker_platform[worker], &anchors, writes)
        } else {
            anchors.predict(writes)
        }
    }

    /// Predicted execution cycles of a dispatch of `module` emitting
    /// `writes` on `worker` *given* that its launches run at frequency
    /// `mode`: the frequency-keyed EWMA where that keyed bucket has been
    /// observed, falling back to the mode-agnostic EWMA, then the anchor
    /// interpolation. The scoring primitive of the `thermal` policy.
    pub fn predicted_cycles_for_mode(
        &self,
        worker: usize,
        module: &CompiledModule,
        writes: u64,
        mode: FreqState,
    ) -> u64 {
        let anchors = self.anchors(worker, module);
        if self.refine {
            self.refiner.predict_for_mode(
                &module.key,
                self.worker_platform[worker],
                &anchors,
                writes,
                mode,
            )
        } else {
            anchors.predict(writes)
        }
    }

    /// The frequency state the shadow DVFS automaton predicts `worker`'s
    /// next dispatch would launch at, were it committed at serve-loop
    /// cycle `now` (the launch itself happens once the queue drains, at
    /// `max(ready, now)`). [`FreqState::Cold`] without a DVFS table. A
    /// boost prediction is clamped to warm when the worker's group has a
    /// power cap and its other workers already hold every boost slot.
    pub fn predicted_mode(&self, worker: usize, now: u64) -> FreqState {
        let Some(params) = self.dvfs[self.worker_platform[worker]] else {
            return FreqState::Cold;
        };
        let mut mirror = self.mirror[worker];
        let mode = mirror.launch_state(&params, self.ready[worker].max(now));
        if mode == FreqState::Boost && !self.boost_slot_free(worker, now) {
            return FreqState::Warm;
        }
        mode
    }

    /// `true` if `worker` may be counted boosted at `now` under its
    /// group's power cap: either it already holds a boost slot (its last
    /// commit was predicted boosted and is still queued), or the group
    /// has a free slot left. Uncapped groups always have room.
    fn boost_slot_free(&self, worker: usize, now: u64) -> bool {
        let group = self.worker_group[worker];
        let Some(cap) = self.power_cap.get(group).copied().flatten() else {
            return true;
        };
        if self.last_mode[worker] == FreqState::Boost && self.ready[worker] > now {
            return true;
        }
        let held = (0..self.ready.len())
            .filter(|&w| {
                w != worker
                    && self.worker_group[w] == group
                    && self.last_mode[w] == FreqState::Boost
                    && self.ready[w] > now
            })
            .count();
        held < cap
    }

    /// The estimated cycles of committed work still queued on `worker` at
    /// serve-loop time `now` — completed work has drained.
    pub fn outstanding(&self, worker: usize, now: u64) -> u64 {
        self.ready[worker].saturating_sub(now)
    }

    /// Records a dispatch of `module` to `worker` at serve-loop cycle
    /// `now`: updates the shadow resident state with the same deltas the
    /// worker will apply (when `elide` is set), extends the worker's
    /// queue by the dispatch's predicted execution cycles on that
    /// worker's platform, and returns what was predicted so the serve
    /// loop can measure it against the observed cost.
    ///
    /// Queue accounting runs under *every* policy — the round-robin
    /// policies never read it for routing, but the batch cutoff and the
    /// prediction-error metrics do.
    pub fn commit(
        &mut self,
        worker: usize,
        module: &CompiledModule,
        now: u64,
        elide: bool,
    ) -> CommitOutcome {
        let writes = if elide {
            // the dispatch's cost follows the writes it actually emits
            // against this worker's resident state
            module.plan.apply_writes(&mut self.shadows[worker])
        } else {
            // the cold baseline reprograms everything, every time
            module.plan.cold_writes
        };
        let anchors = self.anchors(worker, module);
        let platform = self.worker_platform[worker];
        let bucket = anchors.bucket(writes);
        let anchor_cycles = anchors.predict(writes);
        let (predicted_cycles, keyed_cycles) = if self.refine {
            let agnostic = self
                .refiner
                .predict(&module.key, platform, &anchors, writes);
            let mut keyed = [0u64; FREQ_STATES];
            for mode in FreqState::ALL {
                keyed[mode.index()] =
                    self.refiner
                        .predict_for_mode(&module.key, platform, &anchors, writes, mode);
            }
            (agnostic, keyed)
        } else {
            (anchor_cycles, [anchor_cycles; FREQ_STATES])
        };
        // advance the shadow DVFS automaton with the predicted busy
        // window, mirroring the worker-side sequence (cool over the idle
        // gap, read the launch state, account the busy cycles)
        let start = self.ready[worker].max(now);
        let mode = match self.dvfs[platform] {
            Some(params) => {
                let mut mode = self.mirror[worker].launch_state(&params, start);
                if mode == FreqState::Boost && !self.boost_slot_free(worker, now) {
                    mode = FreqState::Warm;
                }
                self.mirror[worker].note_busy(start + predicted_cycles, predicted_cycles);
                mode
            }
            None => FreqState::Cold,
        };
        self.last_mode[worker] = mode;
        self.ready[worker] = start + predicted_cycles;
        CommitOutcome {
            writes,
            bucket,
            anchor_cycles,
            predicted_cycles,
            keyed_cycles,
        }
    }

    /// Feeds one retired dispatch's measured `cycles` (of `module`,
    /// landing in `bucket`, executed on `worker` whose last launch ran at
    /// frequency `mode`) back into the cost refiner, keyed by the
    /// worker's platform. The observation updates both the mode-agnostic
    /// row and the frequency-keyed row for `mode`. A no-op when
    /// refinement is disabled.
    pub fn observe(
        &mut self,
        worker: usize,
        module: &CompiledModule,
        bucket: usize,
        mode: FreqState,
        cycles: u64,
    ) {
        if self.refine {
            self.refiner.observe(
                &module.key,
                self.worker_platform[worker],
                bucket,
                mode,
                cycles,
            );
        }
    }

    /// The cost refiner's current estimates (for tests and diagnostics).
    pub fn refiner(&self) -> &CostRefiner {
        &self.refiner
    }

    /// The distinct platform variants of the pool, in platform-index
    /// order — the index↔name mapping the persistence layer re-keys
    /// refiner snapshots with.
    pub fn variants(&self) -> &[AcceleratorDescriptor] {
        &self.variants
    }

    /// Seeds the refiner from persisted rows keyed by platform *name*,
    /// resolving each name to this pool's platform index. Rows naming
    /// platforms this pool does not field are skipped (a fleet-wide store
    /// safely warm-starts a subset pool); with refinement disabled nothing
    /// is seeded, matching [`LoadTracker::observe`]. Returns the number of
    /// rows seeded.
    pub fn seed_refiner(&mut self, entries: &[crate::persist::CostSnapshotEntry]) -> u64 {
        if !self.refine {
            return 0;
        }
        let mut seeded = 0;
        for (platform_name, key, buckets) in entries {
            if let Some(platform) = self.variants.iter().position(|v| v.name == *platform_name) {
                self.refiner.seed(key.clone(), platform, *buckets);
                seeded += 1;
            }
        }
        seeded
    }

    /// The shadow resident state of `worker` (for tests and diagnostics).
    pub fn shadow(&self, worker: usize) -> &RegMap {
        &self.shadows[worker]
    }

    /// Pins a worker's queue-drain cycle directly (tests only — commits
    /// are the production path).
    #[cfg(test)]
    pub(crate) fn set_ready(&mut self, worker: usize, ready: u64) {
        self.ready[worker] = ready;
    }
}

/// Scheduler state across one serve run: a routing policy paired with the
/// load/residency accounting it reads.
#[derive(Debug)]
pub struct Scheduler {
    policy: Box<dyn SchedulePolicy>,
    load: LoadTracker,
}

impl Scheduler {
    /// A scheduler under `policy` for the given per-worker platform
    /// descriptors across `groups` accelerator groups, with online cost
    /// refinement enabled.
    pub fn new(policy: Policy, workers: &[AcceleratorDescriptor], groups: usize) -> Self {
        Self {
            policy: policy.build(groups),
            load: LoadTracker::new(workers),
        }
    }

    /// Enables or disables online cost refinement (on by default).
    #[must_use]
    pub fn with_refinement(mut self, refine: bool) -> Self {
        self.load = self.load.with_refinement(refine);
        self
    }

    /// Sets the load-slack horizon (see [`LoadTracker::with_slack`]).
    #[must_use]
    pub fn with_slack(mut self, slack: u64) -> Self {
        self.load = self.load.with_slack(slack);
        self
    }

    /// Installs routing-group membership and per-group boost power caps
    /// (see [`LoadTracker::with_power_caps`]).
    #[must_use]
    pub fn with_power_caps(mut self, worker_group: Vec<usize>, caps: Vec<Option<usize>>) -> Self {
        self.load = self.load.with_power_caps(worker_group, caps);
        self
    }

    /// `true` if dispatches under the active policy skip writes already
    /// resident on the worker.
    pub fn elides(&self) -> bool {
        self.policy.elides()
    }

    /// The load/residency accounting (read-only; policies score from it).
    pub fn load(&self) -> &LoadTracker {
        &self.load
    }

    /// Picks a worker from `candidates` (the group's workers, ascending)
    /// for a dispatch of `module` arriving at serve-loop cycle `now`.
    /// `group` identifies the accelerator group for per-group routing
    /// state.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn choose(
        &mut self,
        group: usize,
        candidates: &[usize],
        module: &CompiledModule,
        now: u64,
    ) -> usize {
        self.policy
            .choose(&self.load, group, candidates, module, now)
    }

    /// Records a dispatch of `module` to `worker` at serve-loop cycle
    /// `now` in the load tracker (see [`LoadTracker::commit`]).
    pub fn commit(&mut self, worker: usize, module: &CompiledModule, now: u64) -> CommitOutcome {
        let elide = self.policy.elides();
        self.load.commit(worker, module, now, elide)
    }

    /// Feeds one retired dispatch's measured `cycles` back into the cost
    /// refiner (see [`LoadTracker::observe`]).
    pub fn observe(
        &mut self,
        worker: usize,
        module: &CompiledModule,
        bucket: usize,
        mode: FreqState,
        cycles: u64,
    ) {
        self.load.observe(worker, module, bucket, mode, cycles);
    }

    /// The cost refiner's current estimates (for tests and diagnostics).
    pub fn refiner(&self) -> &CostRefiner {
        self.load.refiner()
    }

    /// Seeds the refiner from persisted platform-name-keyed rows (see
    /// [`LoadTracker::seed_refiner`]).
    pub fn seed_refiner(&mut self, entries: &[crate::persist::CostSnapshotEntry]) -> u64 {
        self.load.seed_refiner(entries)
    }

    /// The estimated cycles of committed work still queued on `worker` at
    /// serve-loop time `now`.
    pub fn outstanding(&self, worker: usize, now: u64) -> u64 {
        self.load.outstanding(worker, now)
    }

    /// The shadow resident state of `worker` (for tests and diagnostics).
    pub fn shadow(&self, worker: usize) -> &RegMap {
        self.load.shadow(worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::build_module;
    use crate::testutil::{single_tile_module, uniform};
    use accfg::pipeline::OptLevel;
    use accfg_workloads::MatmulSpec;

    #[test]
    #[should_panic(expected = "share the name")]
    fn tracker_rejects_same_name_different_provisioning() {
        let mut doctored = AcceleratorDescriptor::gemmini();
        doctored.accel.macs_per_cycle *= 4;
        let _ = LoadTracker::new(&[AcceleratorDescriptor::gemmini(), doctored]);
    }

    #[test]
    fn affinity_prefers_the_matching_worker() {
        let m8 = single_tile_module(8);
        let m16 = single_tile_module(16);
        let mut s = Scheduler::new(Policy::ConfigAffinity, &uniform(2), 1);
        // first dispatch: both blank, tie broken by queue depth then index
        let w8 = s.choose(0, &[0, 1], &m8, 0);
        assert_eq!(w8, 0);
        s.commit(w8, &m8, 0);
        // once the first dispatch has drained, a same-shape repeat stays
        // on the now-warm worker 0
        let later = s.outstanding(0, 0);
        assert_eq!(m8.plan.writes_against(s.shadow(0)), 0);
        assert_eq!(s.choose(0, &[0, 1], &m8, later), 0);
        s.commit(0, &m8, later);
        // the other shape is routed wherever it is cheapest; once
        // committed, its repeats stick to that worker
        let later = (0..2).map(|w| s.outstanding(w, 0)).max().unwrap();
        let w16 = s.choose(0, &[0, 1], &m16, later);
        s.commit(w16, &m16, later);
        let later = (0..2).map(|w| s.outstanding(w, 0)).max().unwrap();
        assert_eq!(m16.plan.writes_against(s.shadow(w16)), 0);
        assert_eq!(s.choose(0, &[0, 1], &m16, later), w16);
        // and the first shape still has its warm worker
        assert_eq!(s.choose(0, &[0, 1], &m8, later), 0);
    }

    #[test]
    fn affinity_bounds_queue_imbalance() {
        // pure min-writes routing would send every same-shape request to
        // the first worker forever; the slack bucket spreads them once the
        // outstanding-cycle gap reaches the horizon. All requests arrive
        // at cycle 0, so nothing drains and queues only grow.
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, &uniform(2), 1);
        let mut counts = [0u64; 2];
        for _ in 0..200 {
            let w = s.choose(0, &[0, 1], &m, 0);
            s.commit(w, &m, 0);
            counts[w] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "{counts:?}");
        // the drain-time gap can never exceed the slack horizon plus one
        // dispatch's predicted cycles
        let max_dispatch = m.cost.cold_cycles;
        assert!(
            s.outstanding(0, 0).abs_diff(s.outstanding(1, 0)) <= LOAD_SLACK_CYCLES + max_dispatch,
            "outstanding {:?}",
            [s.outstanding(0, 0), s.outstanding(1, 0)]
        );
    }

    #[test]
    fn drained_queues_compete_as_idle() {
        // a worker whose committed work has drained by `now` is
        // indistinguishable from an idle one, so affinity wins again
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, &uniform(2), 1);
        for _ in 0..50 {
            let w = s.choose(0, &[0, 1], &m, 0);
            s.commit(w, &m, 0);
        }
        let drained = (0..2).map(|w| s.outstanding(w, 0)).max().unwrap();
        assert_eq!(s.outstanding(0, drained), 0);
        assert_eq!(s.outstanding(1, drained), 0);
        // worker 0 is the warm one (first pick); with both queues drained
        // the zero-write worker wins regardless of its busier past
        assert_eq!(m.plan.writes_against(s.shadow(0)), 0);
        assert_eq!(s.choose(0, &[0, 1], &m, drained), 0);
    }

    #[test]
    fn slack_boundary_prefers_balance() {
        // a warm worker exactly at the slack boundary is NOT tied with the
        // least-loaded: balance beats affinity there, while one cycle
        // inside the horizon affinity still wins
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, &uniform(2), 1);
        s.commit(0, &m, 0); // worker 0 warm (zero further writes), worker 1 blank
        assert_eq!(m.plan.writes_against(s.shadow(0)), 0);
        assert!(m.plan.writes_against(s.shadow(1)) > 0);

        // one cycle inside the horizon: stickiness wins despite the queue
        s.load.set_ready(0, LOAD_SLACK_CYCLES - 1);
        s.load.set_ready(1, 0);
        assert_eq!(s.choose(0, &[0, 1], &m, 0), 0);

        // exactly at the boundary: the warm worker falls into pressure
        // bucket 1 and the blank-but-short queue wins
        s.load.set_ready(0, LOAD_SLACK_CYCLES);
        assert_eq!(s.choose(0, &[0, 1], &m, 0), 1);

        // the boundary drains with the clock: the same gap measured later
        // is back inside the horizon
        s.load.set_ready(0, LOAD_SLACK_CYCLES + 10);
        s.load.set_ready(1, 11);
        assert_eq!(s.choose(0, &[0, 1], &m, 11), 0);
    }

    #[test]
    fn custom_slack_moves_the_boundary() {
        // the same boundary semantics hold under a configured horizon:
        // strictly inside the slack the warm worker wins, exactly at it
        // balance wins
        let m = single_tile_module(8);
        let slack = 128;
        assert_ne!(slack, LOAD_SLACK_CYCLES, "test needs a non-default");
        let mut s = Scheduler::new(Policy::ConfigAffinity, &uniform(2), 1).with_slack(slack);
        assert_eq!(s.load().slack(), slack);
        s.commit(0, &m, 0);
        assert_eq!(m.plan.writes_against(s.shadow(0)), 0);

        s.load.set_ready(0, slack - 1);
        s.load.set_ready(1, 0);
        assert_eq!(s.choose(0, &[0, 1], &m, 0), 0);
        s.load.set_ready(0, slack);
        assert_eq!(s.choose(0, &[0, 1], &m, 0), 1);
        // under the default horizon the same gap would still be sticky
        let mut default = Scheduler::new(Policy::ConfigAffinity, &uniform(2), 1);
        default.commit(0, &m, 0);
        default.load.set_ready(0, slack);
        default.load.set_ready(1, 0);
        assert_eq!(default.choose(0, &[0, 1], &m, 0), 0);
    }

    #[test]
    fn batched_commits_accumulate_per_request_cycles() {
        // a same-config batch of k requests weighs k predicted dispatches
        // (one cold + k-1 warm), not one — the accounting skew that made
        // dispatch-count load undercharge batched workers
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, &uniform(2), 1);
        let cold = m.cost.predict(m.plan.cold_writes);
        let mut shadow = RegMap::new();
        m.plan.apply_writes(&mut shadow);
        let warm = m.cost.predict(m.plan.writes_against(&shadow));
        for _ in 0..4 {
            s.commit(0, &m, 0);
        }
        assert_eq!(s.outstanding(0, 0), cold + 3 * warm);
        assert!(s.outstanding(0, 0) > cold, "batch must weigh more than 1");
        // and the unbatched worker's queue is judged on the same scale
        s.commit(1, &m, 0);
        assert_eq!(s.outstanding(1, 0), cold);
    }

    #[test]
    fn heavy_modules_weigh_more_than_light_ones() {
        let light = single_tile_module(8);
        let heavy = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(32).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let mut s = Scheduler::new(Policy::ConfigAffinity, &uniform(2), 1);
        s.commit(0, &light, 0);
        s.commit(1, &heavy, 0);
        assert!(
            s.outstanding(1, 0) > s.outstanding(0, 0),
            "a 16-launch module must queue longer than a single-tile one"
        );
    }

    #[test]
    fn round_robin_commits_still_track_queues_and_shadows() {
        // the batch cutoff and the prediction metrics read queue estimates
        // under every policy, so commit can no longer early-out for the
        // round-robin policies
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::FifoElide, &uniform(2), 1);
        let first = s.commit(0, &m, 0);
        assert_eq!(first.writes, m.plan.cold_writes);
        assert_eq!(s.outstanding(0, 0), first.predicted_cycles);
        // the shadow advanced, so a repeat is scored (and charged) warm
        let second = s.commit(0, &m, 0);
        assert_eq!(second.writes, m.plan.writes_against(s.shadow(0)));
        assert!(second.writes < first.writes);
        assert!(second.predicted_cycles < first.predicted_cycles);
        // the cold baseline never elides: every commit charges cold
        let mut cold = Scheduler::new(Policy::Fifo, &uniform(1), 1);
        for _ in 0..2 {
            let outcome = cold.commit(0, &m, 0);
            assert_eq!(outcome.writes, m.plan.cold_writes);
            assert_eq!(outcome.predicted_cycles, m.cost.cold_cycles);
        }
        assert_eq!(cold.outstanding(0, 0), 2 * m.cost.cold_cycles);
    }

    #[test]
    fn observed_cycles_refine_commit_predictions() {
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::ConfigAffinity, &uniform(1), 1);
        let first = s.commit(0, &m, 0);
        // nothing observed yet: the charge equals the anchor prediction
        assert_eq!(first.predicted_cycles, first.anchor_cycles);
        // a retired dispatch reports very different measured cycles for
        // the warm bucket; the next warm commit quotes the EWMA
        let warm_probe = s.commit(0, &m, 0);
        s.observe(
            0,
            &m,
            warm_probe.bucket,
            FreqState::Cold,
            warm_probe.anchor_cycles + 500,
        );
        let refined = s.commit(0, &m, 0);
        assert_eq!(refined.bucket, warm_probe.bucket);
        assert_eq!(refined.predicted_cycles, warm_probe.anchor_cycles + 500);
        assert_eq!(refined.anchor_cycles, warm_probe.anchor_cycles);
        // with refinement disabled the same observation changes nothing
        let mut fixed =
            Scheduler::new(Policy::ConfigAffinity, &uniform(1), 1).with_refinement(false);
        fixed.commit(0, &m, 0);
        let probe = fixed.commit(0, &m, 0);
        fixed.observe(
            0,
            &m,
            probe.bucket,
            FreqState::Cold,
            probe.anchor_cycles + 500,
        );
        assert_eq!(fixed.refiner().modules_observed(), 0);
        let unrefined = fixed.commit(0, &m, 0);
        assert_eq!(unrefined.predicted_cycles, unrefined.anchor_cycles);
    }

    #[test]
    fn shadow_tracks_final_plan_state() {
        let m = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let mut s = Scheduler::new(Policy::ConfigAffinity, &uniform(1), 1);
        s.commit(0, &m, 0);
        // the shadow now holds the last launch's register file
        let last = &m.plan.launches.last().unwrap().registers;
        for (reg, value) in last {
            assert_eq!(s.shadow(0).get(reg), Some(value), "reg {reg}");
        }
    }

    #[test]
    fn tracker_assigns_platforms_by_descriptor_identity() {
        let workers = vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::gemmini_turbo(),
            AcceleratorDescriptor::gemmini(),
        ];
        let load = LoadTracker::new(&workers);
        assert_eq!(load.workers(), 3);
        assert_eq!(load.platform(0), 0);
        assert_eq!(load.platform(1), 1);
        assert_eq!(load.platform(2), 0);
        assert_eq!(load.descriptor(1).name, "gemmini-turbo");
    }

    #[test]
    fn variant_anchors_reflect_the_workers_platform() {
        // a compute-heavy module is re-anchored on the turbo variant and
        // predicted (much) cheaper there; the base worker keeps the
        // module's own build-time anchors
        let heavy = build_module(
            &AcceleratorDescriptor::gemmini(),
            MatmulSpec::gemmini_paper(64).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let workers = vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::gemmini_turbo(),
        ];
        let load = LoadTracker::new(&workers);
        assert_eq!(load.anchors(0, &heavy), heavy.cost);
        let turbo = load.anchors(1, &heavy);
        assert!(turbo.cold_cycles < heavy.cost.cold_cycles);
        // write structure is platform-independent: same plan, same writes
        assert_eq!(turbo.cold_writes, heavy.cost.cold_writes);
        assert_eq!(turbo.warm_writes, heavy.cost.warm_writes);
        // and commit charges the variant's cheaper prediction
        let mut s = Scheduler::new(Policy::Cost, &workers, 1);
        let base_outcome = s.commit(0, &heavy, 0);
        let mut t = Scheduler::new(Policy::Cost, &workers, 1);
        let turbo_outcome = t.commit(1, &heavy, 0);
        assert_eq!(base_outcome.anchor_cycles, heavy.cost.cold_cycles);
        assert!(turbo_outcome.anchor_cycles < base_outcome.anchor_cycles);
    }

    #[test]
    fn observations_refine_per_platform() {
        // the same module observed on two variants keeps two estimates
        let m = single_tile_module(8);
        let workers = vec![
            AcceleratorDescriptor::opengemm(),
            AcceleratorDescriptor::opengemm_lite(),
        ];
        let mut load = LoadTracker::new(&workers);
        let bucket = m.cost.bucket(m.plan.cold_writes);
        load.observe(0, &m, bucket, FreqState::Cold, 100);
        load.observe(1, &m, bucket, FreqState::Cold, 900);
        assert_eq!(load.predicted_cycles(0, &m, m.plan.cold_writes), 100);
        assert_eq!(load.predicted_cycles(1, &m, m.plan.cold_writes), 900);
    }

    #[test]
    fn mode_keyed_observations_sharpen_commit_predictions() {
        // the same bucket observed under two frequency modes keeps two
        // keyed estimates; the agnostic charge is the drifting mix
        let m = single_tile_module(8);
        let mut load = LoadTracker::new(&uniform(1));
        let bucket = m.cost.bucket(m.plan.cold_writes);
        load.observe(0, &m, bucket, FreqState::Boost, 100);
        load.observe(0, &m, bucket, FreqState::Cold, 900);
        let writes = m.plan.cold_writes;
        assert_eq!(
            load.predicted_cycles_for_mode(0, &m, writes, FreqState::Boost),
            100
        );
        assert_eq!(
            load.predicted_cycles_for_mode(0, &m, writes, FreqState::Cold),
            900
        );
        // an unobserved mode falls back to the agnostic EWMA
        let agnostic = load.predicted_cycles(0, &m, writes);
        assert_eq!(
            load.predicted_cycles_for_mode(0, &m, writes, FreqState::Warm),
            agnostic
        );
        assert!((100..=900).contains(&agnostic));
    }

    #[test]
    fn identity_timing_predicts_cold_and_commits_record_it() {
        // without a DVFS table the shadow automaton is inert: every
        // predicted mode is cold and keyed predictions match the agnostic
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::Cost, &uniform(2), 1);
        assert_eq!(s.load().predicted_mode(0, 0), FreqState::Cold);
        let outcome = s.commit(0, &m, 0);
        assert_eq!(
            outcome.keyed_cycles,
            [outcome.predicted_cycles; FREQ_STATES]
        );
        assert_eq!(s.load().predicted_mode(0, 0), FreqState::Cold);
    }

    #[test]
    fn shadow_mirror_heats_through_warm_into_boost() {
        // sustained predicted load walks the mirror cold → warm → boost,
        // and a long idle gap cools it back down — all without running a
        // single simulated instruction
        let m = single_tile_module(8);
        let desc = AcceleratorDescriptor::opengemm().with_reference_timing();
        let dvfs = desc.timing.dvfs.expect("reference timing has DVFS");
        let mut s = Scheduler::new(Policy::Cost, &[desc], 1);
        assert_eq!(s.load().predicted_mode(0, 0), FreqState::Cold);
        let mut seen_boost = false;
        for _ in 0..4096 {
            s.commit(0, &m, 0);
            if s.load().predicted_mode(0, 0) == FreqState::Boost {
                seen_boost = true;
                break;
            }
        }
        assert!(seen_boost, "mirror never predicted boost");
        // a cooldown-length gap after the queue drains predicts cold again
        let drained = s.outstanding(0, 0);
        assert_eq!(
            s.load()
                .predicted_mode(0, drained + dvfs.cooldown_idle_cycles),
            FreqState::Cold
        );
    }

    #[test]
    fn power_cap_clamps_excess_boost_predictions() {
        let m = single_tile_module(8);
        let desc = AcceleratorDescriptor::opengemm().with_reference_timing();
        let workers = vec![desc.clone(), desc];
        let mut s =
            Scheduler::new(Policy::Cost, &workers, 1).with_power_caps(vec![0, 0], vec![Some(1)]);
        // heat both mirrors past the boost threshold with queued work
        for _ in 0..8192 {
            s.commit(0, &m, 0);
            s.commit(1, &m, 0);
            if s.load().predicted_mode(0, 0) == FreqState::Boost {
                break;
            }
        }
        assert_eq!(s.load().predicted_mode(0, 0), FreqState::Boost);
        // until someone *commits* a boost launch the slot is unclaimed,
        // so the equally hot worker 1 may also predict boost; one more
        // commit on worker 0 takes the group's single slot
        s.commit(0, &m, 0);
        assert_eq!(s.load().predicted_mode(0, 0), FreqState::Boost);
        // worker 0 holds the group's one boost slot; worker 1's equally
        // hot mirror is clamped to warm
        assert_eq!(s.load().predicted_mode(1, 0), FreqState::Warm);
        // an uncapped tracker lets both boost
        let desc = AcceleratorDescriptor::opengemm().with_reference_timing();
        let mut open = Scheduler::new(Policy::Cost, &[desc.clone(), desc], 1);
        for _ in 0..8192 {
            open.commit(0, &m, 0);
            open.commit(1, &m, 0);
            if open.load().predicted_mode(1, 0) == FreqState::Boost {
                break;
            }
        }
        assert_eq!(open.load().predicted_mode(0, 0), FreqState::Boost);
        assert_eq!(open.load().predicted_mode(1, 0), FreqState::Boost);
    }
}
