//! Serving metrics: throughput, latency percentiles, configuration-write
//! accounting, and cache statistics — plus a dependency-free JSON
//! rendering for `BENCH_runtime.json`.

use crate::cache::CacheStats;
use std::fmt::Write as _;

/// Latency distribution over served requests, in simulated cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst case.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencyStats {
    /// Computes the distribution from raw per-request latencies.
    pub fn from_latencies(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let pick = |p: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        Self {
            p50: pick(0.50),
            p99: pick(0.99),
            max: *sorted.last().expect("nonempty"),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        }
    }
}

/// Per-worker accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMetrics {
    /// Pool-wide worker index.
    pub index: usize,
    /// The accelerator the worker serves.
    pub accelerator: String,
    /// Requests executed.
    pub requests: u64,
    /// Simulated cycles spent executing dispatches.
    pub busy_cycles: u64,
    /// Simulated cycle at which the worker finished its last dispatch.
    pub finish: u64,
}

/// Aggregate metrics of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Policy label ("fifo", "affinity", ...).
    pub policy: String,
    /// Requests served.
    pub requests: u64,
    /// Requests whose functional check failed (must be 0).
    pub check_failures: u64,
    /// Requests whose simulation failed (must be 0).
    pub sim_failures: u64,
    /// Configuration register writes emitted after resident-state elision.
    pub setup_writes: u64,
    /// Writes the same dispatches would emit onto blank register files.
    pub cold_setup_writes: u64,
    /// Configuration bytes transferred (including launch commands).
    pub config_bytes: u64,
    /// Accelerator launches executed.
    pub launches: u64,
    /// Total simulated execution cycles across all dispatches.
    pub sim_cycles: u64,
    /// Simulated cycle at which the last worker finished (open-loop
    /// makespan).
    pub makespan: u64,
    /// Latency distribution (arrival → completion).
    pub latency: LatencyStats,
    /// Module-cache statistics for the run.
    pub cache: CacheStats,
    /// Requests coalesced into a predecessor's batch.
    pub batched_requests: u64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerMetrics>,
}

impl ServeMetrics {
    /// Fraction of setup writes elided relative to cold dispatches.
    pub fn elision_rate(&self) -> f64 {
        if self.cold_setup_writes == 0 {
            0.0
        } else {
            1.0 - self.setup_writes as f64 / self.cold_setup_writes as f64
        }
    }

    /// Fractional reduction of setup writes relative to `baseline`
    /// (positive = this run wrote less).
    pub fn write_savings_vs(&self, baseline: &ServeMetrics) -> f64 {
        if baseline.setup_writes == 0 {
            0.0
        } else {
            1.0 - self.setup_writes as f64 / baseline.setup_writes as f64
        }
    }

    /// Served requests per million simulated cycles of makespan.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.requests as f64 * 1e6 / self.makespan as f64
        }
    }

    /// Renders the metrics as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"policy\": \"{}\",", self.policy);
        let _ = writeln!(out, "  \"requests\": {},", self.requests);
        let _ = writeln!(out, "  \"check_failures\": {},", self.check_failures);
        let _ = writeln!(out, "  \"sim_failures\": {},", self.sim_failures);
        let _ = writeln!(out, "  \"setup_writes\": {},", self.setup_writes);
        let _ = writeln!(out, "  \"cold_setup_writes\": {},", self.cold_setup_writes);
        let _ = writeln!(out, "  \"elision_rate\": {:.4},", self.elision_rate());
        let _ = writeln!(out, "  \"config_bytes\": {},", self.config_bytes);
        let _ = writeln!(out, "  \"launches\": {},", self.launches);
        let _ = writeln!(out, "  \"sim_cycles\": {},", self.sim_cycles);
        let _ = writeln!(out, "  \"makespan\": {},", self.makespan);
        let _ = writeln!(
            out,
            "  \"latency\": {{ \"p50\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.1} }},",
            self.latency.p50, self.latency.p99, self.latency.max, self.latency.mean
        );
        let _ = writeln!(
            out,
            "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4} }},",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate()
        );
        let _ = writeln!(out, "  \"batched_requests\": {},", self.batched_requests);
        out.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            let comma = if i + 1 == self.workers.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{ \"index\": {}, \"accelerator\": \"{}\", \"requests\": {}, \"busy_cycles\": {}, \"finish\": {} }}{comma}",
                w.index, w.accelerator, w.requests, w.busy_cycles, w.finish
            );
        }
        out.push_str("  ]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> ServeMetrics {
        ServeMetrics {
            policy: "affinity".into(),
            requests: 100,
            check_failures: 0,
            sim_failures: 0,
            setup_writes: 300,
            cold_setup_writes: 1000,
            config_bytes: 4000,
            launches: 120,
            sim_cycles: 50_000,
            makespan: 20_000,
            latency: LatencyStats::from_latencies(&[10, 20, 30, 40, 1000]),
            cache: CacheStats {
                hits: 95,
                misses: 5,
            },
            batched_requests: 12,
            workers: vec![WorkerMetrics {
                index: 0,
                accelerator: "opengemm".into(),
                requests: 100,
                busy_cycles: 50_000,
                finish: 20_000,
            }],
        }
    }

    #[test]
    fn percentiles_from_latencies() {
        let l = LatencyStats::from_latencies(&[5, 1, 3, 2, 4]);
        assert_eq!(l.p50, 3);
        assert_eq!(l.p99, 5);
        assert_eq!(l.max, 5);
        assert!((l.mean - 3.0).abs() < 1e-12);
        assert_eq!(LatencyStats::from_latencies(&[]), LatencyStats::default());
    }

    #[test]
    fn rates_and_savings() {
        let m = metrics();
        assert!((m.elision_rate() - 0.7).abs() < 1e-12);
        let mut base = metrics();
        base.setup_writes = 600;
        assert!((m.write_savings_vs(&base) - 0.5).abs() < 1e-12);
        assert!((m.throughput_per_mcycle() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = metrics().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"policy\": \"affinity\""));
        assert!(j.contains("\"hit_rate\": 0.9500"));
    }
}
