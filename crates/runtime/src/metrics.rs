//! Serving metrics: throughput, latency percentiles, configuration-write
//! accounting, and cache statistics — plus a dependency-free JSON
//! rendering for `BENCH_runtime.json`.

use crate::cache::CacheStats;
use accfg_workloads::MatmulSpec;
use std::fmt::Write as _;

/// The class label used in per-class metrics: `<accelerator>/<m>x<n>x<k>`.
pub fn class_label(accelerator: &str, spec: &MatmulSpec) -> String {
    format!("{}/{}x{}x{}", accelerator, spec.m, spec.n, spec.k)
}

/// Escapes a string for embedding in the hand-rendered JSON report
/// (custom accelerator names are arbitrary user input).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Latency distribution over served requests, in simulated cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst case.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencyStats {
    /// Computes the distribution from raw per-request latencies.
    ///
    /// Percentiles use the nearest-rank (ceiling) definition: the p-th
    /// percentile is the smallest sample value such that at least `p` of
    /// the samples are ≤ it. The earlier `round`-based index selection
    /// underreported p99 on small samples (e.g. it picked the 66th of 67
    /// sorted values where nearest-rank requires the 67th).
    pub fn from_latencies(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let pick = |p: f64| {
            let rank = (sorted.len() as f64 * p).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            p50: pick(0.50),
            p99: pick(0.99),
            max: *sorted.last().expect("nonempty"),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        }
    }
}

/// Latency distribution of one traffic class (accelerator + shape) — the
/// per-class view an SLO is written against.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassLatency {
    /// Class label, `<accelerator>/<m>x<n>x<k>`.
    pub class: String,
    /// Requests of this class served.
    pub requests: u64,
    /// Arrival-to-completion latency distribution.
    pub latency: LatencyStats,
}

/// Number of exact buckets in a [`DepthHistogram`]; deeper queues fold
/// into the last bucket.
pub const DEPTH_BUCKETS: usize = 16;

/// Histogram of the queue depth each request observed at dispatch time —
/// how many earlier dispatches on its worker were still unfinished at its
/// arrival. Depths of `DEPTH_BUCKETS - 1` or more share the last bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthHistogram {
    /// `counts[d]` = requests that saw depth `d` (last bucket: `≥ d`).
    pub counts: Vec<u64>,
    /// Deepest queue any request landed behind.
    pub max: u64,
}

impl Default for DepthHistogram {
    fn default() -> Self {
        Self {
            counts: vec![0; DEPTH_BUCKETS],
            max: 0,
        }
    }
}

impl DepthHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed queue depth.
    pub fn record(&mut self, depth: u64) {
        let bucket = (depth as usize).min(DEPTH_BUCKETS - 1);
        self.counts[bucket] += 1;
        self.max = self.max.max(depth);
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of requests that saw a queue depth of at least `depth`
    /// (clamped to the exact-bucket range).
    pub fn fraction_at_least(&self, depth: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let from = (depth as usize).min(DEPTH_BUCKETS - 1);
        self.counts[from..].iter().sum::<u64>() as f64 / total as f64
    }
}

/// Observed-vs-predicted dispatch-cycle error over one serve run,
/// accumulated for *both* predictors on the same dispatch sequence: the
/// static build-time anchors and the online EWMA refinement the scheduler
/// actually charged queues with. Comparing the two on identical dispatches
/// is what lets one run quantify how much refinement sharpens the
/// estimates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionStats {
    /// Dispatches with a measured execution (simulation failures are
    /// excluded — their counters are not a dispatch cost).
    pub samples: u64,
    /// Summed `|anchor prediction − observed cycles|`.
    pub anchor_abs_error: u64,
    /// Summed `|refined prediction − observed cycles|`. Equals the anchor
    /// sum when refinement is disabled.
    pub ewma_abs_error: u64,
}

impl PredictionStats {
    /// Mean absolute error of the static anchor predictions, in cycles.
    pub fn anchor_mae(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.anchor_abs_error as f64 / self.samples as f64
        }
    }

    /// Mean absolute error of the refined (EWMA) predictions, in cycles.
    pub fn ewma_mae(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.ewma_abs_error as f64 / self.samples as f64
        }
    }
}

/// Warm-start provenance of one serve run against a persistent store:
/// what the run inherited from previous processes rather than recomputing.
/// Present in [`ServeMetrics`] only when the run used a store, so
/// store-less reports keep their exact shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStartStats {
    /// Compiled modules restored from the store into the module cache.
    pub modules_restored: u64,
    /// Cost-refiner rows (platform × module) seeded from the store.
    pub ewma_entries_seeded: u64,
    /// Distinct modules the stream requested that a restored entry
    /// satisfied — compile builds this run did not pay.
    pub builds_avoided: u64,
}

/// Per-worker accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerMetrics {
    /// Pool-wide worker index.
    pub index: usize,
    /// The accelerator the worker serves.
    pub accelerator: String,
    /// Requests executed.
    pub requests: u64,
    /// Simulated cycles spent executing dispatches.
    pub busy_cycles: u64,
    /// Simulated cycle at which the worker finished its last dispatch.
    pub finish: u64,
}

/// Aggregate metrics of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Policy label ("fifo", "affinity", ...).
    pub policy: String,
    /// Requests served.
    pub requests: u64,
    /// Requests whose functional check failed (must be 0).
    pub check_failures: u64,
    /// Requests whose simulation failed (must be 0).
    pub sim_failures: u64,
    /// Configuration register writes emitted after resident-state elision.
    pub setup_writes: u64,
    /// Writes the same dispatches would emit onto blank register files.
    pub cold_setup_writes: u64,
    /// Configuration bytes transferred (including launch commands).
    pub config_bytes: u64,
    /// Accelerator launches executed.
    pub launches: u64,
    /// Total simulated execution cycles across all dispatches.
    pub sim_cycles: u64,
    /// Extra host cycles charged by the shared memory-bandwidth
    /// contention model across all dispatches (0 under identity timing).
    pub contention_cycles: u64,
    /// Launches per DVFS frequency state (cold, warm, boost); all zero
    /// when the pool's platforms run the identity timing model.
    pub freq_launches: [u64; accfg_sim::FREQ_STATES],
    /// Simulated cycle at which the last worker finished (open-loop
    /// makespan).
    pub makespan: u64,
    /// Latency distribution (arrival → completion).
    pub latency: LatencyStats,
    /// Per-class latency distributions, sorted by class label.
    pub per_class: Vec<ClassLatency>,
    /// Queue depth observed by each request at dispatch time.
    pub queue_depth: DepthHistogram,
    /// Observed-vs-predicted dispatch-cycle error (anchors vs. EWMA).
    pub prediction: PredictionStats,
    /// Prediction error broken down by the DVFS frequency state each
    /// dispatch actually launched in, with the EWMA column scored
    /// against the *frequency-keyed* refined prediction. All-zero under
    /// identity timing (every launch is cold and keyed rows equal the
    /// agnostic row); rendered only inside the conditional `timing`
    /// JSON object, so identity-timing reports keep their exact bytes.
    pub freq_prediction: [PredictionStats; accfg_sim::FREQ_STATES],
    /// Module-cache statistics for the run.
    pub cache: CacheStats,
    /// Warm-start provenance; `None` when the run used no persistent
    /// store.
    pub warm_start: Option<WarmStartStats>,
    /// Requests coalesced into a predecessor's batch.
    pub batched_requests: u64,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerMetrics>,
}

impl ServeMetrics {
    /// Fraction of setup writes elided relative to cold dispatches.
    pub fn elision_rate(&self) -> f64 {
        if self.cold_setup_writes == 0 {
            0.0
        } else {
            1.0 - self.setup_writes as f64 / self.cold_setup_writes as f64
        }
    }

    /// Fractional reduction of setup writes relative to `baseline`
    /// (positive = this run wrote less).
    pub fn write_savings_vs(&self, baseline: &ServeMetrics) -> f64 {
        if baseline.setup_writes == 0 {
            0.0
        } else {
            1.0 - self.setup_writes as f64 / baseline.setup_writes as f64
        }
    }

    /// Served requests per million simulated cycles of makespan.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.requests as f64 * 1e6 / self.makespan as f64
        }
    }

    /// Renders the metrics as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"policy\": \"{}\",", escape_json(&self.policy));
        let _ = writeln!(out, "  \"requests\": {},", self.requests);
        let _ = writeln!(out, "  \"check_failures\": {},", self.check_failures);
        let _ = writeln!(out, "  \"sim_failures\": {},", self.sim_failures);
        let _ = writeln!(out, "  \"setup_writes\": {},", self.setup_writes);
        let _ = writeln!(out, "  \"cold_setup_writes\": {},", self.cold_setup_writes);
        let _ = writeln!(out, "  \"elision_rate\": {:.4},", self.elision_rate());
        let _ = writeln!(out, "  \"config_bytes\": {},", self.config_bytes);
        let _ = writeln!(out, "  \"launches\": {},", self.launches);
        let _ = writeln!(out, "  \"sim_cycles\": {},", self.sim_cycles);
        // timing-model columns appear only when the pool's timing model
        // actually charged something, so identity-timing reports (the
        // four uniform serve_bench streams) stay byte-identical to the
        // pre-timing-model artifact
        if self.contention_cycles > 0 || self.freq_launches.iter().any(|&n| n > 0) {
            let modes = ["cold", "warm", "boost"]
                .iter()
                .zip(self.freq_prediction.iter())
                .map(|(label, p)| {
                    format!(
                        "\"{label}\": {{ \"samples\": {}, \"anchor_mae\": {:.2}, \
                         \"ewma_mae\": {:.2} }}",
                        p.samples,
                        p.anchor_mae(),
                        p.ewma_mae()
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "  \"timing\": {{ \"contention_cycles\": {}, \"freq_launches\": \
                 {{ \"cold\": {}, \"warm\": {}, \"boost\": {} }}, \
                 \"freq_prediction\": {{ {modes} }} }},",
                self.contention_cycles,
                self.freq_launches[0],
                self.freq_launches[1],
                self.freq_launches[2]
            );
        }
        let _ = writeln!(out, "  \"makespan\": {},", self.makespan);
        let _ = writeln!(
            out,
            "  \"latency\": {{ \"p50\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.1} }},",
            self.latency.p50, self.latency.p99, self.latency.max, self.latency.mean
        );
        out.push_str("  \"per_class\": {\n");
        for (i, c) in self.per_class.iter().enumerate() {
            let comma = if i + 1 == self.per_class.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    \"{}\": {{ \"requests\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.1} }}{comma}",
                escape_json(&c.class),
                c.requests,
                c.latency.p50,
                c.latency.p99,
                c.latency.max,
                c.latency.mean
            );
        }
        out.push_str("  },\n");
        let _ = writeln!(
            out,
            "  \"queue_depth\": {{ \"counts\": [{}], \"max\": {} }},",
            self.queue_depth
                .counts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.queue_depth.max
        );
        let _ = writeln!(
            out,
            "  \"prediction\": {{ \"samples\": {}, \"anchor_mae\": {:.2}, \"ewma_mae\": {:.2} }},",
            self.prediction.samples,
            self.prediction.anchor_mae(),
            self.prediction.ewma_mae()
        );
        let _ = writeln!(
            out,
            "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4} }},",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate()
        );
        // the warm-start object appears only for runs that used a
        // persistent store, so store-less reports (every committed
        // serve_bench stream) stay byte-identical to the pre-store
        // artifact — same pattern as the conditional "timing" object
        if let Some(warm) = &self.warm_start {
            let _ = writeln!(
                out,
                "  \"warm_start\": {{ \"modules_restored\": {}, \"ewma_entries_seeded\": {}, \
                 \"builds_avoided\": {} }},",
                warm.modules_restored, warm.ewma_entries_seeded, warm.builds_avoided
            );
        }
        let _ = writeln!(out, "  \"batched_requests\": {},", self.batched_requests);
        out.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            let comma = if i + 1 == self.workers.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{ \"index\": {}, \"accelerator\": \"{}\", \"requests\": {}, \"busy_cycles\": {}, \"finish\": {} }}{comma}",
                w.index,
                escape_json(&w.accelerator),
                w.requests,
                w.busy_cycles,
                w.finish
            );
        }
        out.push_str("  ]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> ServeMetrics {
        ServeMetrics {
            policy: "affinity".into(),
            requests: 100,
            check_failures: 0,
            sim_failures: 0,
            setup_writes: 300,
            cold_setup_writes: 1000,
            config_bytes: 4000,
            launches: 120,
            sim_cycles: 50_000,
            contention_cycles: 0,
            freq_launches: [0; accfg_sim::FREQ_STATES],
            makespan: 20_000,
            latency: LatencyStats::from_latencies(&[10, 20, 30, 40, 1000]),
            per_class: vec![ClassLatency {
                class: "opengemm/16x16x16".into(),
                requests: 100,
                latency: LatencyStats::from_latencies(&[10, 20, 30, 40, 1000]),
            }],
            queue_depth: {
                let mut h = DepthHistogram::new();
                for d in [0, 0, 1, 2, 40] {
                    h.record(d);
                }
                h
            },
            prediction: PredictionStats {
                samples: 100,
                anchor_abs_error: 2_000,
                ewma_abs_error: 500,
            },
            freq_prediction: [PredictionStats::default(); accfg_sim::FREQ_STATES],
            cache: CacheStats {
                hits: 95,
                misses: 5,
            },
            warm_start: None,
            batched_requests: 12,
            workers: vec![WorkerMetrics {
                index: 0,
                accelerator: "opengemm".into(),
                requests: 100,
                busy_cycles: 50_000,
                finish: 20_000,
            }],
        }
    }

    #[test]
    fn percentiles_from_latencies() {
        let l = LatencyStats::from_latencies(&[5, 1, 3, 2, 4]);
        assert_eq!(l.p50, 3);
        assert_eq!(l.p99, 5);
        assert_eq!(l.max, 5);
        assert!((l.mean - 3.0).abs() < 1e-12);
        assert_eq!(LatencyStats::from_latencies(&[]), LatencyStats::default());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        // even sample count: nearest-rank p50 of 4 samples is the 2nd
        // value, not the round-to-3rd the old selection produced
        let l = LatencyStats::from_latencies(&[1, 2, 3, 4]);
        assert_eq!(l.p50, 2);
        // 67 samples: ceil(0.99 · 67) = 67 → p99 is the maximum; the old
        // round((n-1) · 0.99) = 65 picked the 66th value and underreported
        let sorted: Vec<u64> = (1..=67).collect();
        let l = LatencyStats::from_latencies(&sorted);
        assert_eq!(l.p99, 67);
        assert_eq!(l.p50, 34); // ceil(33.5) = 34th value
                               // a single sample is every percentile
        let l = LatencyStats::from_latencies(&[9]);
        assert_eq!((l.p50, l.p99, l.max), (9, 9, 9));
        // 100 samples of 0..100: p99 = 99th value = 98
        let sorted: Vec<u64> = (0..100).collect();
        assert_eq!(LatencyStats::from_latencies(&sorted).p99, 98);
    }

    #[test]
    fn json_escapes_user_controlled_strings() {
        let mut m = metrics();
        m.policy = "aff\"in\\ity".into();
        m.per_class[0].class = "my \"fast\"\naccel/8x8x8".into();
        m.workers[0].accelerator = "quo\"ted".into();
        let j = m.to_json();
        assert!(j.contains(r#""policy": "aff\"in\\ity""#), "{j}");
        assert!(j.contains(r#""my \"fast\"\u000aaccel/8x8x8""#), "{j}");
        assert!(j.contains(r#""accelerator": "quo\"ted""#), "{j}");
    }

    #[test]
    fn depth_histogram_buckets_and_overflow() {
        let mut h = DepthHistogram::new();
        for d in 0..(DEPTH_BUCKETS as u64 + 10) {
            h.record(d);
        }
        assert_eq!(h.total(), DEPTH_BUCKETS as u64 + 10);
        assert_eq!(h.counts[0], 1);
        // the last bucket folds every deeper observation
        assert_eq!(h.counts[DEPTH_BUCKETS - 1], 11);
        assert_eq!(h.max, DEPTH_BUCKETS as u64 + 9);
        assert!((h.fraction_at_least(0) - 1.0).abs() < 1e-12);
        let deep = 11.0 / (DEPTH_BUCKETS as f64 + 10.0);
        assert!((h.fraction_at_least(DEPTH_BUCKETS as u64 - 1) - deep).abs() < 1e-12);
        assert_eq!(DepthHistogram::new().fraction_at_least(3), 0.0);
    }

    #[test]
    fn rates_and_savings() {
        let m = metrics();
        assert!((m.elision_rate() - 0.7).abs() < 1e-12);
        let mut base = metrics();
        base.setup_writes = 600;
        assert!((m.write_savings_vs(&base) - 0.5).abs() < 1e-12);
        assert!((m.throughput_per_mcycle() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = metrics().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"policy\": \"affinity\""));
        assert!(j.contains("\"hit_rate\": 0.9500"));
        assert!(
            j.contains(
                "\"prediction\": { \"samples\": 100, \"anchor_mae\": 20.00, \"ewma_mae\": 5.00 }"
            ),
            "{j}"
        );
    }

    #[test]
    fn timing_json_appears_only_when_charged() {
        // identity-timing runs must keep their JSON byte-identical to the
        // pre-timing-model reports
        assert!(!metrics().to_json().contains("\"timing\""));
        let mut m = metrics();
        m.contention_cycles = 42;
        m.freq_launches = [7, 2, 3];
        m.freq_prediction = [
            PredictionStats {
                samples: 7,
                anchor_abs_error: 70,
                ewma_abs_error: 7,
            },
            PredictionStats {
                samples: 2,
                anchor_abs_error: 10,
                ewma_abs_error: 1,
            },
            PredictionStats {
                samples: 3,
                anchor_abs_error: 9,
                ewma_abs_error: 3,
            },
        ];
        let j = m.to_json();
        assert!(
            j.contains(
                "\"timing\": { \"contention_cycles\": 42, \"freq_launches\": \
                 { \"cold\": 7, \"warm\": 2, \"boost\": 3 }, \"freq_prediction\": \
                 { \"cold\": { \"samples\": 7, \"anchor_mae\": 10.00, \"ewma_mae\": 1.00 }, \
                 \"warm\": { \"samples\": 2, \"anchor_mae\": 5.00, \"ewma_mae\": 0.50 }, \
                 \"boost\": { \"samples\": 3, \"anchor_mae\": 3.00, \"ewma_mae\": 1.00 } } },"
            ),
            "{j}"
        );
        // frequency counts alone are enough to surface the object
        let mut f = metrics();
        f.freq_launches = [1, 0, 0];
        assert!(f.to_json().contains("\"timing\""));
    }

    #[test]
    fn warm_start_json_appears_only_with_a_store() {
        // store-less runs must keep their JSON byte-identical to the
        // pre-store reports
        assert!(!metrics().to_json().contains("\"warm_start\""));
        let mut m = metrics();
        m.warm_start = Some(WarmStartStats {
            modules_restored: 6,
            ewma_entries_seeded: 12,
            builds_avoided: 6,
        });
        let j = m.to_json();
        assert!(
            j.contains(
                "\"warm_start\": { \"modules_restored\": 6, \"ewma_entries_seeded\": 12, \
                 \"builds_avoided\": 6 },"
            ),
            "{j}"
        );
        // a cold first pass still reports the (zeroed) provenance object
        let mut cold = metrics();
        cold.warm_start = Some(WarmStartStats::default());
        assert!(cold.to_json().contains("\"modules_restored\": 0"));
    }

    #[test]
    fn prediction_maes_average_over_samples() {
        let p = PredictionStats {
            samples: 4,
            anchor_abs_error: 10,
            ewma_abs_error: 2,
        };
        assert!((p.anchor_mae() - 2.5).abs() < 1e-12);
        assert!((p.ewma_mae() - 0.5).abs() < 1e-12);
        let empty = PredictionStats::default();
        assert_eq!(empty.anchor_mae(), 0.0);
        assert_eq!(empty.ewma_mae(), 0.0);
    }
}
