//! Pluggable scheduling policies: the [`SchedulePolicy`] trait and its
//! built-in implementations.
//!
//! The scheduler is split into two layers. The *accounting core*
//! ([`LoadTracker`]) owns everything every policy needs but none may
//! corrupt: shadow resident register files, per-worker outstanding-cycle
//! queues, per-platform cost anchors, and the online EWMA refiner. The
//! *policy* layer — this module — owns only the routing decision: given
//! read access to the tracker, pick one worker from a group's candidates.
//! Adding a policy (deadline-aware, multi-tenant, power-capped, ...)
//! means implementing one trait method; commit accounting, refinement,
//! batching, and metrics come for free and stay policy-agnostic.
//!
//! Built-in policies:
//!
//! - [`FifoPolicy`] — strict round-robin per group, with or without
//!   resident-state elision (the `fifo` and `fifo+elide` baselines);
//! - [`AffinityPolicy`] — minimize new configuration writes among workers
//!   within the [`LOAD_SLACK_CYCLES`] outstanding-cycle horizon of the
//!   group's shortest queue (`affinity`);
//! - [`CostPolicy`] — minimize *refined predicted cycles to completion*
//!   (queue drain plus the platform's predicted dispatch cycles), the
//!   policy heterogeneous pools need (`cost`);
//! - [`ThermalPolicy`] — like `cost`, but frequency-state-aware: each
//!   candidate's dispatch is priced at the DVFS mode the tracker's shadow
//!   automaton predicts it would launch in, a busy worker's score is
//!   charged the contention penalty of pushing this dispatch's
//!   configuration traffic into its busy window, and ties prefer the
//!   hotter worker — concentrating load to hold boost instead of
//!   spreading it (`thermal`).
//!
//! [`Policy`] is the serializable configuration handle: a `Copy` enum the
//! `ServeConfig` carries, turned into a boxed policy object per serve run
//! by [`Policy::build`].
//!
//! [`LOAD_SLACK_CYCLES`]: crate::scheduler::LOAD_SLACK_CYCLES

use crate::cache::CompiledModule;
use crate::scheduler::LoadTracker;
use accfg_sim::FREQ_STATES;
use std::fmt;

/// The routing-and-dispatch policy selector carried by `ServeConfig`.
///
/// Each variant names a [`SchedulePolicy`] implementation;
/// [`Policy::build`] instantiates it for one serve run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// The production baseline: round-robin over compatible workers, and
    /// every dispatch reprograms its full configuration (no cross-request
    /// state reuse) — what a serving system built on volatile per-request
    /// kernels does today.
    Fifo,
    /// Ablation: round-robin routing, but dispatches elide writes already
    /// resident on the worker. Isolates the value of state tracking from
    /// the value of routing.
    FifoElide,
    /// Route to the worker whose resident register file minimizes the new
    /// configuration writes, and elide resident writes. Because a
    /// warm-start dispatch can only write a subset of what a cold one
    /// writes, this policy never emits more setup writes than [`Fifo`]
    /// on the same stream.
    ///
    /// [`Fifo`]: Policy::Fifo
    #[default]
    ConfigAffinity,
    /// Route to the worker with the least *refined predicted cycles to
    /// completion* — queue drain plus the predicted cycles of this
    /// dispatch on that worker's platform — and elide resident writes.
    /// On uniform pools this behaves like [`ConfigAffinity`] with the
    /// slack measured in completion cycles; on heterogeneous pools it is
    /// the only built-in policy that can weigh a configuration write
    /// against a differently provisioned accelerator's compute rate.
    ///
    /// [`ConfigAffinity`]: Policy::ConfigAffinity
    Cost,
    /// Route by *frequency-state-aware* predicted completion: price each
    /// candidate's dispatch at the DVFS mode the scheduler's shadow
    /// automaton predicts it would launch in (frequency-keyed EWMA where
    /// observed), charge busy workers the memory-contention penalty of
    /// co-scheduling this dispatch's configuration traffic into their
    /// busy window, and break ties toward the hotter worker so load
    /// concentrates enough to hold boost. Identical to [`Cost`] under
    /// the identity timing model (every mode is cold, no contention).
    ///
    /// [`Cost`]: Policy::Cost
    Thermal,
}

impl Policy {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::FifoElide => "fifo+elide",
            Policy::ConfigAffinity => "affinity",
            Policy::Cost => "cost",
            Policy::Thermal => "thermal",
        }
    }

    /// `true` if dispatches under this policy skip writes whose values are
    /// already resident on the worker.
    pub fn elides(self) -> bool {
        !matches!(self, Policy::Fifo)
    }

    /// Instantiates the policy object for a pool with `groups` accelerator
    /// groups.
    pub fn build(self, groups: usize) -> Box<dyn SchedulePolicy> {
        match self {
            Policy::Fifo => Box::new(FifoPolicy::new(false, groups)),
            Policy::FifoElide => Box::new(FifoPolicy::new(true, groups)),
            Policy::ConfigAffinity => Box::new(AffinityPolicy),
            Policy::Cost => Box::new(CostPolicy),
            Policy::Thermal => Box::new(ThermalPolicy),
        }
    }
}

/// One routing policy: picks a worker for each dispatch, reading (never
/// writing) the scheduler's load and residency accounting.
///
/// Implementations may keep private routing state (e.g. round-robin
/// counters) but all load accounting lives in the [`LoadTracker`], which
/// the serve loop commits through regardless of policy — so batching
/// cutoffs, prediction metrics, and refinement behave identically under
/// every policy.
pub trait SchedulePolicy: fmt::Debug + Send {
    /// Short lowercase label for reports.
    fn label(&self) -> &'static str;

    /// `true` if dispatches under this policy skip writes whose values
    /// are already resident on the worker (the cold `fifo` baseline is
    /// the only built-in that reprograms everything).
    fn elides(&self) -> bool {
        true
    }

    /// Picks a worker from `candidates` (the group's workers, ascending)
    /// for a dispatch of `module` arriving at serve-loop cycle `now`.
    /// `group` identifies the accelerator group (for per-group routing
    /// state such as round-robin counters).
    ///
    /// # Panics
    /// Implementations may panic if `candidates` is empty.
    fn choose(
        &mut self,
        load: &LoadTracker,
        group: usize,
        candidates: &[usize],
        module: &CompiledModule,
        now: u64,
    ) -> usize;
}

/// Buckets a worker's cycle gap over the group's best candidate into a
/// balance-pressure class, under the run's `slack` horizon (the tracker's
/// [`LoadTracker::slack`], default [`LOAD_SLACK_CYCLES`]).
///
/// Workers whose gap is strictly within the slack compete on writes
/// (bucket 0); a worker *exactly at* the slack boundary is not tied with
/// the best — it lands in bucket 1, where balance wins. Earlier revisions
/// expressed this as a raw integer division of dispatch counts, which
/// left the boundary semantics implicit; the bucketing is now pinned by a
/// unit test on both sides of the boundary. A slack of 0 clamps to 1
/// cycle — pure balance with stickiness only on exact ties.
///
/// [`LOAD_SLACK_CYCLES`]: crate::scheduler::LOAD_SLACK_CYCLES
fn pressure(gap: u64, slack: u64) -> u64 {
    gap / slack.max(1)
}

/// Round-robin routing per group, the `fifo` / `fifo+elide` baselines: a
/// config-oblivious load balancer that dispatches in arrival order.
#[derive(Debug)]
pub struct FifoPolicy {
    elide: bool,
    round_robin: Vec<usize>,
}

impl FifoPolicy {
    /// A round-robin policy over `groups` accelerator groups; `elide`
    /// selects between the cold baseline and `fifo+elide`.
    pub fn new(elide: bool, groups: usize) -> Self {
        Self {
            elide,
            round_robin: vec![0; groups],
        }
    }
}

impl SchedulePolicy for FifoPolicy {
    fn label(&self) -> &'static str {
        if self.elide {
            "fifo+elide"
        } else {
            "fifo"
        }
    }

    fn elides(&self) -> bool {
        self.elide
    }

    fn choose(
        &mut self,
        _load: &LoadTracker,
        group: usize,
        candidates: &[usize],
        _module: &CompiledModule,
        _now: u64,
    ) -> usize {
        assert!(!candidates.is_empty(), "scheduling against an empty group");
        let slot = self.round_robin[group] % candidates.len();
        self.round_robin[group] += 1;
        candidates[slot]
    }
}

/// Config-affinity routing: minimize the new configuration writes among
/// workers whose *estimated outstanding cycles* are within
/// [`LOAD_SLACK_CYCLES`] of the group's shortest queue, so stickiness
/// cannot starve the pool or build head-of-line queues.
///
/// Pure min-writes routing degenerates: once one worker is warm it scores
/// below a blank worker for *every* shape, so the rest of the group
/// starves and tail latency explodes. Bucketing the queue-depth gap by
/// the slack keeps dispatches sticky over short horizons (where the
/// write savings are) while bounding the queue a request can land behind.
/// Elision — not routing — is what guarantees affinity never writes more
/// than the cold FIFO baseline, so this trade-off cannot break that
/// property.
///
/// [`LOAD_SLACK_CYCLES`]: crate::scheduler::LOAD_SLACK_CYCLES
#[derive(Debug)]
pub struct AffinityPolicy;

impl SchedulePolicy for AffinityPolicy {
    fn label(&self) -> &'static str {
        "affinity"
    }

    fn choose(
        &mut self,
        load: &LoadTracker,
        _group: usize,
        candidates: &[usize],
        module: &CompiledModule,
        now: u64,
    ) -> usize {
        assert!(!candidates.is_empty(), "scheduling against an empty group");
        let min_outstanding = candidates
            .iter()
            .map(|&w| load.outstanding(w, now))
            .min()
            .expect("nonempty");
        let mut best = candidates[0];
        let mut best_key = (u64::MAX, u64::MAX, u64::MAX, usize::MAX);
        for &w in candidates {
            let writes = load.writes_for(w, module);
            // workers within the slack horizon of the shortest queue
            // compete on writes; beyond it, balance wins
            let outstanding = load.outstanding(w, now);
            let key = (
                pressure(outstanding - min_outstanding, load.slack()),
                writes,
                outstanding,
                w,
            );
            if key < best_key {
                best_key = key;
                best = w;
            }
        }
        best
    }
}

/// Cycle-cost routing: minimize the *refined predicted cycles to
/// completion* — the worker's outstanding-cycle queue plus this
/// dispatch's predicted cycles on that worker's platform (the EWMA
/// estimate where its warmth bucket has been observed, the platform's
/// analytic anchors when cold).
///
/// This generalizes [`AffinityPolicy`] along both of its axes. The slack
/// competition is measured on predicted *completion*, not queue depth
/// alone — so a warm worker's cheaper dispatch buys it exactly as much
/// queue headroom as the writes it elides are worth on its platform, no
/// more. And the per-platform cost models let the score weigh a
/// configuration write against a differently provisioned accelerator's
/// compute rate, which raw write counts cannot express: on a
/// heterogeneous pool, affinity happily pins a heavyweight module to a
/// slow variant because stickiness is free in its score, while `cost`
/// routes it to the platform that actually finishes it sooner.
/// Candidates within [`LOAD_SLACK_CYCLES`] (or the run's configured
/// slack) of the best completion still compete on writes, so uniform
/// pools keep affinity's write savings.
///
/// [`LOAD_SLACK_CYCLES`]: crate::scheduler::LOAD_SLACK_CYCLES
#[derive(Debug)]
pub struct CostPolicy;

impl SchedulePolicy for CostPolicy {
    fn label(&self) -> &'static str {
        "cost"
    }

    fn choose(
        &mut self,
        load: &LoadTracker,
        _group: usize,
        candidates: &[usize],
        module: &CompiledModule,
        now: u64,
    ) -> usize {
        assert!(!candidates.is_empty(), "scheduling against an empty group");
        // score every candidate once — writes_for walks the plan against
        // the shadow state and predicted_cycles may consult per-platform
        // anchors, so this is the routing hot path
        let scored: Vec<(u64, u64, u64, usize)> = candidates
            .iter()
            .map(|&w| {
                let writes = load.writes_for(w, module);
                let outstanding = load.outstanding(w, now);
                let dispatch = load.predicted_cycles(w, module, writes);
                (outstanding + dispatch, writes, outstanding, w)
            })
            .collect();
        let min_completion = scored
            .iter()
            .map(|&(finish, ..)| finish)
            .min()
            .expect("nonempty");
        scored
            .into_iter()
            .map(|(finish, writes, outstanding, w)| {
                // completions within the slack horizon of the best compete
                // on writes; beyond it, the earliest predicted finish wins
                (
                    (
                        pressure(finish - min_completion, load.slack()),
                        writes,
                        finish,
                        outstanding,
                        w,
                    ),
                    w,
                )
            })
            .min_by_key(|(key, _)| *key)
            .expect("nonempty")
            .1
    }
}

/// Frequency-aware cycle-cost routing: [`CostPolicy`]'s completion score,
/// evaluated under the timing state the dispatch would actually run in.
///
/// Three refinements over `cost`, all read from the tracker's shadow DVFS
/// mirror and the platform's timing tables:
///
/// - **Mode-keyed pricing.** The dispatch's predicted cycles are quoted
///   at the DVFS mode [`LoadTracker::predicted_mode`] says the candidate
///   would launch in (power cap applied), using the frequency-keyed EWMA
///   rows where observed. A boosted worker's genuinely cheaper dispatch
///   is visible to the score instead of being averaged into one drifting
///   bucket mean — which is what lets the policy keep feeding a hot
///   worker rather than spreading load and cooling every clock down.
/// - **Contention windows.** A candidate that is still busy charges the
///   host-side contention penalty of pushing this dispatch's
///   configuration traffic into its busy window
///   ([`ContentionParams::host_penalty`] over the writes' payload
///   bytes); an idle candidate configures at full bandwidth. Traffic-
///   heavy dispatches therefore steer away from workers in the middle of
///   a busy window even when raw queue depth ties.
/// - **Heat tie-break.** Within the slack horizon, equal scores prefer
///   the *hotter* worker, so sustained streams concentrate instead of
///   ping-ponging — concentration is what reaches (and holds) boost.
///
/// Under the identity timing model every term degenerates (all modes
/// cold, no contention, constant tie-break) and the policy scores
/// exactly like [`CostPolicy`].
///
/// [`ContentionParams::host_penalty`]:
///     accfg_sim::ContentionParams::host_penalty
#[derive(Debug)]
pub struct ThermalPolicy;

impl SchedulePolicy for ThermalPolicy {
    fn label(&self) -> &'static str {
        "thermal"
    }

    fn choose(
        &mut self,
        load: &LoadTracker,
        _group: usize,
        candidates: &[usize],
        module: &CompiledModule,
        now: u64,
    ) -> usize {
        assert!(!candidates.is_empty(), "scheduling against an empty group");
        let scored: Vec<(u64, u64, u64, u64, usize)> = candidates
            .iter()
            .map(|&w| {
                let writes = load.writes_for(w, module);
                let outstanding = load.outstanding(w, now);
                let mode = load.predicted_mode(w, now);
                let dispatch = load.predicted_cycles_for_mode(w, module, writes, mode);
                // a busy worker's configuration traffic lands inside its
                // busy window and runs at leftover bandwidth
                let desc = load.descriptor(w);
                let contended = match desc.timing.contention {
                    Some(c) if outstanding > 0 => {
                        c.host_penalty(writes * desc.accel.csr_payload_bytes)
                    }
                    _ => 0,
                };
                let finish = outstanding + dispatch + contended;
                // prefer hotter candidates on ties (smaller rank = hotter)
                let chill = (FREQ_STATES - 1 - mode.index()) as u64;
                (finish, writes, chill, outstanding, w)
            })
            .collect();
        let min_completion = scored
            .iter()
            .map(|&(finish, ..)| finish)
            .min()
            .expect("nonempty");
        scored
            .into_iter()
            .map(|(finish, writes, chill, outstanding, w)| {
                (
                    (
                        pressure(finish - min_completion, load.slack()),
                        writes,
                        chill,
                        finish,
                        outstanding,
                        w,
                    ),
                    w,
                )
            })
            .min_by_key(|(key, _)| *key)
            .expect("nonempty")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::build_module;
    use crate::scheduler::{Scheduler, LOAD_SLACK_CYCLES};
    use crate::testutil::{single_tile_module, uniform};
    use accfg::pipeline::OptLevel;
    use accfg_sim::FreqState;
    use accfg_targets::AcceleratorDescriptor;
    use accfg_workloads::MatmulSpec;

    #[test]
    fn policy_predicates() {
        assert!(!Policy::Fifo.elides());
        assert!(Policy::FifoElide.elides());
        assert!(Policy::ConfigAffinity.elides());
        assert!(Policy::Cost.elides());
        assert!(Policy::Thermal.elides());
        assert_eq!(Policy::Fifo.label(), "fifo");
        assert_eq!(Policy::FifoElide.label(), "fifo+elide");
        assert_eq!(Policy::ConfigAffinity.label(), "affinity");
        assert_eq!(Policy::Cost.label(), "cost");
        assert_eq!(Policy::Thermal.label(), "thermal");
        // the built objects agree with the enum metadata
        for policy in [
            Policy::Fifo,
            Policy::FifoElide,
            Policy::ConfigAffinity,
            Policy::Cost,
            Policy::Thermal,
        ] {
            let built = policy.build(1);
            assert_eq!(built.label(), policy.label());
            assert_eq!(built.elides(), policy.elides());
        }
    }

    #[test]
    fn pressure_buckets_pin_the_boundary() {
        assert_eq!(pressure(0, LOAD_SLACK_CYCLES), 0);
        assert_eq!(pressure(LOAD_SLACK_CYCLES - 1, LOAD_SLACK_CYCLES), 0);
        assert_eq!(pressure(LOAD_SLACK_CYCLES, LOAD_SLACK_CYCLES), 1);
        assert_eq!(pressure(2 * LOAD_SLACK_CYCLES - 1, LOAD_SLACK_CYCLES), 1);
        assert_eq!(pressure(2 * LOAD_SLACK_CYCLES, LOAD_SLACK_CYCLES), 2);
        // the boundary moves with a custom slack horizon
        assert_eq!(pressure(127, 128), 0);
        assert_eq!(pressure(128, 128), 1);
        // slack 0 clamps to a 1-cycle horizon instead of dividing by zero
        assert_eq!(pressure(0, 0), 0);
        assert_eq!(pressure(1, 0), 1);
    }

    #[test]
    fn cost_prefers_the_warm_worker_when_idle() {
        let m8 = single_tile_module(8);
        let m16 = single_tile_module(16);
        let mut s = Scheduler::new(Policy::Cost, &uniform(2), 1);
        let w8 = s.choose(0, &[0, 1], &m8, 0);
        assert_eq!(w8, 0);
        s.commit(w8, &m8, 0);
        // once drained, a same-shape repeat costs strictly less on the
        // warm worker, so it sticks
        let later = s.outstanding(0, 0);
        assert_eq!(s.choose(0, &[0, 1], &m8, later), 0);
        s.commit(0, &m8, later);
        // the other shape lands wherever completion is cheapest, then
        // sticks to its warm worker too
        let later = (0..2).map(|w| s.outstanding(w, 0)).max().unwrap();
        let w16 = s.choose(0, &[0, 1], &m16, later);
        s.commit(w16, &m16, later);
        let later = (0..2).map(|w| s.outstanding(w, 0)).max().unwrap();
        assert_eq!(s.choose(0, &[0, 1], &m16, later), w16);
        assert_eq!(s.choose(0, &[0, 1], &m8, later), 0);
    }

    #[test]
    fn cost_bounds_queue_imbalance() {
        // stickiness is worth at most the slack horizon of completion
        // gap: queues cannot run away behind a warm worker
        let m = single_tile_module(8);
        let mut s = Scheduler::new(Policy::Cost, &uniform(2), 1);
        let mut counts = [0u64; 2];
        for _ in 0..200 {
            let w = s.choose(0, &[0, 1], &m, 0);
            s.commit(w, &m, 0);
            counts[w] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "{counts:?}");
        let max_dispatch = m.cost.cold_cycles;
        assert!(
            s.outstanding(0, 0).abs_diff(s.outstanding(1, 0)) <= LOAD_SLACK_CYCLES + max_dispatch,
            "outstanding {:?}",
            [s.outstanding(0, 0), s.outstanding(1, 0)]
        );
    }

    #[test]
    fn cost_routes_heavy_modules_to_the_fast_variant() {
        // two cold workers of one family, differently provisioned: the
        // writes tie, so affinity cannot tell them apart — cost routes to
        // the platform that finishes sooner
        let base = AcceleratorDescriptor::gemmini();
        let turbo = AcceleratorDescriptor::gemmini_turbo();
        let heavy =
            build_module(&base, MatmulSpec::gemmini_paper(64).unwrap(), OptLevel::All).unwrap();
        let workers = vec![base, turbo];
        let mut s = Scheduler::new(Policy::Cost, &workers, 1);
        // the turbo variant's predicted dispatch is cheaper by more than
        // the slack horizon for this compute-heavy shape
        let cold = heavy.plan.cold_writes;
        let slow = s.load().predicted_cycles(0, &heavy, cold);
        let fast = s.load().predicted_cycles(1, &heavy, cold);
        assert!(
            slow > fast + LOAD_SLACK_CYCLES,
            "variant gap too small: {slow} vs {fast}"
        );
        assert_eq!(s.choose(0, &[0, 1], &heavy, 0), 1);
        // affinity is blind to the difference and takes the lower index
        let mut a = Scheduler::new(Policy::ConfigAffinity, &workers, 1);
        assert_eq!(a.choose(0, &[0, 1], &heavy, 0), 0);
    }

    #[test]
    fn thermal_matches_cost_under_identity_timing() {
        // no DVFS, no contention: every thermal term degenerates and the
        // two policies pick the same worker at every step
        let m8 = single_tile_module(8);
        let m16 = single_tile_module(16);
        let mut t = Scheduler::new(Policy::Thermal, &uniform(3), 1);
        let mut c = Scheduler::new(Policy::Cost, &uniform(3), 1);
        let mut now = 0;
        for i in 0..60 {
            let m = if i % 3 == 0 { &m16 } else { &m8 };
            let tw = t.choose(0, &[0, 1, 2], m, now);
            let cw = c.choose(0, &[0, 1, 2], m, now);
            assert_eq!(tw, cw, "diverged at step {i}");
            t.commit(tw, m, now);
            c.commit(cw, m, now);
            now += 40;
        }
    }

    #[test]
    fn thermal_ties_prefer_the_hotter_worker() {
        // both workers end with identical resident state and drained
        // queues, but worker 1's shadow automaton was heated by far more
        // committed work: completion and writes tie exactly, and the heat
        // tie-break alone routes to the warm clock (cost, scored on the
        // same inputs, would take the lower index)
        let m = single_tile_module(8);
        let desc = AcceleratorDescriptor::opengemm().with_reference_timing();
        let workers = vec![desc.clone(), desc];
        let mut s = Scheduler::new(Policy::Thermal, &workers, 1);
        s.commit(0, &m, 0);
        for _ in 0..256 {
            s.commit(1, &m, 0);
        }
        let drained = (0..2).map(|w| s.outstanding(w, 0)).max().unwrap();
        // inside the cooldown window worker 1's heat survives the drain
        assert_eq!(s.load().predicted_mode(0, drained), FreqState::Cold);
        assert_ne!(s.load().predicted_mode(1, drained), FreqState::Cold);
        // identical shadows: a repeat ties on writes (0) and predicted
        // completion, so only the tie-break separates the candidates
        assert_eq!(s.load().writes_for(0, &m), 0);
        assert_eq!(s.load().writes_for(1, &m), 0);
        assert_eq!(s.choose(0, &[0, 1], &m, drained), 1);
    }

    #[test]
    fn thermal_kicks_traffic_heavy_dispatches_off_a_busy_window() {
        // worker 0 is mid-busy-window holding part of the probe's
        // configuration (fewer writes — cost stays sticky); worker 1 is
        // idle and blank. The queue gap alone is inside the slack
        // horizon, but charging the contention penalty of pushing the
        // probe's remaining config traffic into worker 0's busy window
        // crosses the boundary — thermal routes to the idle worker where
        // cost does not.
        let warm_shape = single_tile_module(8);
        let probe = single_tile_module(16);
        let desc = AcceleratorDescriptor::opengemm().with_reference_timing();
        let workers = [desc.clone(), desc.clone()];
        let mut load = LoadTracker::new(&workers);
        load.commit(0, &warm_shape, 0, true);
        let w0 = load.writes_for(0, &probe);
        let w1 = load.writes_for(1, &probe);
        assert!(
            w0 > 0 && w0 < w1,
            "probe must partially overlap: {w0} vs {w1}"
        );
        let contention = desc.timing.contention.expect("reference timing");
        let penalty = contention.host_penalty(w0 * desc.accel.csr_payload_bytes);
        assert!(penalty > 0, "config traffic must contend");
        // park worker 0's queue so the completion gap is one cycle short
        // of the slack horizon before the penalty and past it after
        let d0 = load.predicted_cycles(0, &probe, w0);
        let d1 = load.predicted_cycles(1, &probe, w1);
        load.set_ready(0, LOAD_SLACK_CYCLES - 1 + d1 - d0);
        let mut thermal = ThermalPolicy;
        let mut cost = CostPolicy;
        assert_eq!(cost.choose(&load, 0, &[0, 1], &probe, 0), 0);
        assert_eq!(thermal.choose(&load, 0, &[0, 1], &probe, 0), 1);
    }

    #[test]
    fn fifo_policy_ignores_load_and_residency() {
        let m = single_tile_module(8);
        for policy in [Policy::Fifo, Policy::FifoElide] {
            let mut s = Scheduler::new(policy, &uniform(4), 2);
            let picks: Vec<usize> = (0..5).map(|_| s.choose(0, &[0, 1], &m, 0)).collect();
            assert_eq!(picks, vec![0, 1, 0, 1, 0]);
            // the second group's counter is independent
            assert_eq!(s.choose(1, &[2, 3], &m, 0), 2);
        }
    }
}
