//! Pool workers: each owns a persistent simulated [`Machine`] and executes
//! dispatched jobs by replaying launch plans as *delta programs*.
//!
//! A worker's accelerator keeps its configuration registers across
//! requests, so the program built for a dispatch contains only the writes
//! whose values differ from the resident state
//! ([`DispatchPlan::delta_program`]), plus the launches and the final
//! await. Execution is fully functional — the tile matmuls run on the
//! worker's memory and every request is checked against the reference
//! result — and cycle-accurate: per-request counters feed the latency and
//! throughput metrics directly, and each completion's measured cycles are
//! what the serve loop retires into the scheduler's online cost refiner
//! ([`CostRefiner`]), making the workers the runtime's measurement plane
//! as well as its execution plane.
//!
//! [`DispatchPlan::delta_program`]: crate::plan::DispatchPlan::delta_program
//! [`CostRefiner`]: crate::cache::CostRefiner

use crate::cache::CompiledModule;
use crate::plan::RegMap;
use accfg_sim::{AccelSim, Counters, FreqState, Machine};
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{check_result, fill_inputs, TrafficRequest};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// One dispatched unit of work.
#[derive(Debug, Clone)]
pub struct Job {
    /// The request being served.
    pub request: TrafficRequest,
    /// The compiled module to replay.
    pub module: Arc<CompiledModule>,
    /// Position of the request in the caller's stream slice (echoed back
    /// in the completion, so results can be collected out of order).
    pub slot: usize,
    /// Whether the dispatch may elide writes already resident on the
    /// worker (`false` under the cold [`Policy::Fifo`] baseline).
    ///
    /// [`Policy::Fifo`]: crate::policy::Policy::Fifo
    pub elide: bool,
}

/// The outcome of one executed job.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The job's stream slot.
    pub slot: usize,
    /// Id of the served request.
    pub request_id: u64,
    /// Worker that executed it.
    pub worker: usize,
    /// Simulator counters for the dispatch (cycles, config bytes, ...).
    /// `counters.cycles` is the measured dispatch cost the online cost
    /// refiner learns from once this completion retires.
    pub counters: Counters,
    /// Configuration writes actually emitted (after resident-state
    /// elision).
    pub emitted_writes: u64,
    /// Writes a cold (blank-state) dispatch of the same module performs.
    pub cold_writes: u64,
    /// DVFS frequency state the dispatch's last launch ran at
    /// ([`FreqState::Cold`] under the identity timing model) — the key the
    /// frequency-keyed cost refiner files this completion's measured
    /// cycles under.
    pub freq: FreqState,
    /// Functional-check failure, if any.
    pub check_error: Option<String>,
    /// Simulator failure, if any (the functional check is skipped then).
    pub sim_error: Option<String>,
}

/// A pool worker: persistent machine plus resident-state tracking.
#[derive(Debug)]
pub struct Worker {
    /// Pool-wide worker index.
    pub index: usize,
    desc: AcceleratorDescriptor,
    machine: Machine,
    resident: RegMap,
    fuel: u64,
    /// The worker's simulated clock: the finish cycle of its last
    /// dispatch under the serve loop's timing rule
    /// (`start = max(previous finish, arrival)`). Dispatched programs
    /// each count cycles from 0, so this is the only place the real
    /// inter-dispatch idle gap is known — it is fed to the accelerator's
    /// DVFS automaton so an idle worker cools back down.
    clock: u64,
}

impl Worker {
    /// Creates a worker for `desc` with `mem_bytes` of memory and a
    /// per-dispatch instruction budget of `fuel`.
    pub fn new(index: usize, desc: AcceleratorDescriptor, mem_bytes: usize, fuel: u64) -> Self {
        let machine = Machine::new(
            desc.host.clone(),
            // the worker's machine is charged under the platform's timing
            // model (identity unless the descriptor enables contention /
            // DVFS), and its DVFS history persists across dispatches
            AccelSim::with_timing(desc.accel.clone(), desc.timing),
            mem_bytes,
        );
        Self {
            index,
            desc,
            machine,
            resident: RegMap::new(),
            fuel,
            clock: 0,
        }
    }

    /// The accelerator this worker serves.
    pub fn accelerator(&self) -> &str {
        &self.desc.name
    }

    /// Executes one job: fill inputs, build the delta program, run it, and
    /// functionally check the result.
    pub fn execute(&mut self, job: &Job) -> Completion {
        let module = &job.module;
        // heterogeneous pools replay one compiled plan on platform
        // variants; the runtime validates group compatibility up front,
        // so a mismatch here is a scheduler routing bug
        debug_assert!(
            module.plan.executable_on(&self.desc),
            "module for `{}` dispatched to incompatible worker {} (`{}`)",
            module.key.accelerator,
            self.index,
            self.desc.name
        );
        let spec = module.key.spec;
        let mut completion = Completion {
            slot: job.slot,
            request_id: job.request.id,
            worker: self.index,
            counters: Counters::default(),
            emitted_writes: 0,
            cold_writes: module.plan.cold_writes,
            freq: FreqState::Cold,
            check_error: None,
            sim_error: None,
        };
        if let Err(e) = fill_inputs(
            &mut self.machine.mem,
            &spec,
            &module.layout,
            job.request.seed,
        ) {
            completion.sim_error = Some(format!("input fill failed: {e}"));
            return completion;
        }

        if !job.elide {
            // cold-baseline dispatch: forget the resident state so the
            // program reprograms its full configuration
            self.resident.clear();
        }
        let (program, emitted_writes) = module.plan.delta_program(&mut self.resident);
        completion.emitted_writes = emitted_writes;

        // the dispatch starts when the queue has drained and the request
        // has arrived — the same rule the serve loop and the latency
        // replay use — so the gap since the last finish is the worker's
        // real simulated idle time, which cools the DVFS automaton
        let start = self.clock.max(job.request.arrival);
        self.machine.accel.note_idle(start - self.clock);

        match self.machine.run(&program, self.fuel) {
            Ok(counters) => {
                completion.counters = counters;
                completion.freq = self.machine.accel.last_launch_state();
                self.clock = start + counters.cycles;
                // the program drained the accelerator; re-base its busy
                // window so the next dispatch starts from a clean clock
                self.machine.accel.reset_clock(counters.cycles);
                if let Err(e) = check_result(&self.machine.mem, &spec, &module.layout) {
                    completion.check_error = Some(e);
                }
            }
            Err(e) => {
                // recovery: resident tracking is now unreliable, so drop it
                // (the next dispatch reprograms everything — its emitted
                // writes equal the cold cost, keeping the ≤-cold guarantee)
                // and force the accelerator idle so the stale absolute busy
                // window cannot bleed stall cycles into later dispatches.
                // The scheduler's shadow copy diverges here, which only
                // degrades affinity scoring quality for this worker, never
                // correctness.
                self.resident.clear();
                self.machine.accel.reset_clock(u64::MAX);
                // a failed dispatch carries no measured cycles, and the
                // serve loop's finish accounting treats it the same way
                self.clock = start;
                completion.sim_error = Some(e.to_string());
            }
        }
        completion
    }

    /// Thread entry point: executes jobs until the channel closes.
    pub fn run_loop(mut self, jobs: Receiver<Job>, results: Sender<Completion>) {
        while let Ok(job) = jobs.recv() {
            let completion = self.execute(&job);
            if results.send(completion).is_err() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::build_module;
    use accfg::pipeline::OptLevel;
    use accfg_workloads::MatmulSpec;

    fn request(id: u64, accel: &str, spec: MatmulSpec, seed: u64) -> TrafficRequest {
        TrafficRequest {
            id,
            accelerator: accel.into(),
            spec,
            arrival: 0,
            seed,
        }
    }

    #[test]
    fn repeated_single_tile_dispatch_elides_all_configuration() {
        let desc = AcceleratorDescriptor::opengemm();
        // a single-invocation shape: the whole register file is identical
        // across same-shape requests
        let spec = MatmulSpec::opengemm_paper(8).unwrap();
        assert_eq!(spec.invocations(), 1);
        let module = Arc::new(build_module(&desc, spec, OptLevel::All).unwrap());
        let mut worker = Worker::new(0, desc, 1 << 20, 10_000_000);

        let first = worker.execute(&Job {
            request: request(0, "opengemm", spec, 1),
            module: Arc::clone(&module),
            slot: 0,
            elide: true,
        });
        assert!(first.sim_error.is_none(), "{:?}", first.sim_error);
        assert!(first.check_error.is_none(), "{:?}", first.check_error);
        assert_eq!(first.emitted_writes, module.plan.cold_writes);

        let second = worker.execute(&Job {
            request: request(1, "opengemm", spec, 2),
            module: Arc::clone(&module),
            slot: 0,
            elide: true,
        });
        assert!(second.check_error.is_none(), "{:?}", second.check_error);
        // same shape, same canonical addresses: only the launch remains —
        // the configuration is entirely resident
        assert_eq!(second.emitted_writes, 0);
        assert!(second.counters.cycles < first.counters.cycles);
        assert_eq!(second.counters.launches as i64, spec.invocations());
    }

    #[test]
    fn repeated_tiled_dispatch_elides_the_invariant_fields() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        assert!(spec.invocations() > 1);
        let module = Arc::new(build_module(&desc, spec, OptLevel::All).unwrap());
        let mut worker = Worker::new(0, desc, 1 << 20, 10_000_000);
        let jobs: Vec<Completion> = (0..3)
            .map(|i| {
                worker.execute(&Job {
                    request: request(i, "opengemm", spec, i),
                    module: Arc::clone(&module),
                    slot: 0,
                    elide: true,
                })
            })
            .collect();
        for c in &jobs {
            assert!(c.check_error.is_none(), "{:?}", c.check_error);
        }
        assert_eq!(jobs[0].emitted_writes, module.plan.cold_writes);
        // warm repeats still rewrite the per-tile fields of each launch,
        // but the shape-invariant configuration stays resident
        assert!(jobs[1].emitted_writes < jobs[0].emitted_writes);
        // the second and third repeats are in steady state
        assert_eq!(jobs[1].emitted_writes, jobs[2].emitted_writes);
    }

    #[test]
    fn cold_dispatch_ignores_resident_state() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(8).unwrap();
        let module = Arc::new(build_module(&desc, spec, OptLevel::All).unwrap());
        let mut worker = Worker::new(0, desc, 1 << 20, 10_000_000);
        for i in 0..2 {
            let c = worker.execute(&Job {
                request: request(i, "opengemm", spec, i),
                module: Arc::clone(&module),
                slot: 0,
                elide: false,
            });
            // every non-eliding dispatch pays the full cold cost
            assert_eq!(c.emitted_writes, module.plan.cold_writes);
            assert!(c.check_error.is_none());
        }
    }

    #[test]
    fn rocc_worker_is_functionally_correct_across_shapes() {
        let desc = AcceleratorDescriptor::gemmini();
        let small = MatmulSpec::gemmini_paper(16).unwrap();
        let large = MatmulSpec::gemmini_paper(64).unwrap();
        let small_m = Arc::new(build_module(&desc, small, OptLevel::Dedup).unwrap());
        let large_m = Arc::new(build_module(&desc, large, OptLevel::Dedup).unwrap());
        let mut worker = Worker::new(0, desc, 1 << 20, 10_000_000);
        for (i, (spec, module)) in [(small, &small_m), (large, &large_m), (small, &small_m)]
            .into_iter()
            .enumerate()
        {
            let c = worker.execute(&Job {
                request: request(i as u64, "gemmini", spec, 7 + i as u64),
                module: Arc::clone(module),
                slot: 0,
                elide: true,
            });
            assert!(c.sim_error.is_none(), "{:?}", c.sim_error);
            assert!(c.check_error.is_none(), "{:?}", c.check_error);
        }
    }

    #[test]
    fn idle_gaps_between_dispatches_cool_the_dvfs_automaton() {
        let desc = AcceleratorDescriptor::opengemm().with_reference_timing();
        let cooldown = desc.timing.dvfs.unwrap().cooldown_idle_cycles;
        let spec = MatmulSpec::opengemm_paper(32).unwrap();
        let module = Arc::new(build_module(&desc, spec, OptLevel::All).unwrap());
        let mut worker = Worker::new(0, desc, 1 << 20, 10_000_000);
        let dispatch = |worker: &mut Worker, id: u64, arrival: u64| {
            let c = worker.execute(&Job {
                request: TrafficRequest {
                    id,
                    accelerator: "opengemm".into(),
                    spec,
                    arrival,
                    seed: id,
                },
                module: Arc::clone(&module),
                slot: 0,
                elide: true,
            });
            assert!(c.sim_error.is_none(), "{:?}", c.sim_error);
        };
        // back-to-back dispatches accumulate heat across the program
        // boundary (the clock re-base hides no idle time)
        dispatch(&mut worker, 0, 0);
        let first = worker.machine.accel.dvfs_heat();
        assert!(first > 0);
        dispatch(&mut worker, 1, 0);
        assert!(worker.machine.accel.dvfs_heat() > first);
        // a cooldown-length simulated idle gap resets the history: the
        // next dispatch starts from the cold state again
        let finish = worker.clock;
        dispatch(&mut worker, 2, finish + cooldown);
        assert_eq!(
            worker.machine.accel.dvfs_heat(),
            first,
            "heat after the gap must equal one cold dispatch's"
        );
    }

    #[test]
    fn sim_error_resets_resident_state_and_busy_window() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(8).unwrap();
        let module = Arc::new(build_module(&desc, spec, OptLevel::All).unwrap());
        // memory covers A and B but not the C region: input fill succeeds,
        // the accelerator's store faults mid-run
        assert!(module.layout.c_addr > 0x2100);
        let mut worker = Worker::new(0, desc, 0x2100, 10_000_000);
        let failed = worker.execute(&Job {
            request: request(0, "opengemm", spec, 1),
            module: Arc::clone(&module),
            slot: 0,
            elide: true,
        });
        assert!(failed.sim_error.is_some(), "store fault expected");
        // recovery: accelerator idle, resident dropped — the next dispatch
        // starts from a clean clock and pays exactly the cold cost
        assert!(!worker.machine.accel.is_busy(0));
        assert!(worker.resident.is_empty());
        let retry = worker.execute(&Job {
            request: request(1, "opengemm", spec, 2),
            module: Arc::clone(&module),
            slot: 0,
            elide: true,
        });
        assert_eq!(retry.emitted_writes, module.plan.cold_writes);
    }

    #[test]
    fn delta_dispatch_matches_cold_program_results() {
        // the delta-dispatched result must equal running the full cached
        // program on a fresh machine
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(24).unwrap();
        let module = Arc::new(build_module(&desc, spec, OptLevel::All).unwrap());

        let mut worker = Worker::new(0, desc.clone(), 1 << 20, 10_000_000);
        // warm the worker with a different seed first
        worker.execute(&Job {
            request: request(0, "opengemm", spec, 11),
            module: Arc::clone(&module),
            slot: 0,
            elide: true,
        });
        let delta = worker.execute(&Job {
            request: request(1, "opengemm", spec, 22),
            module: Arc::clone(&module),
            slot: 0,
            elide: true,
        });
        assert!(delta.check_error.is_none());
        let delta_c = worker
            .machine
            .mem
            .read_i32_slice(module.layout.c_addr as u64, (spec.m * spec.n) as usize)
            .unwrap();

        let mut fresh = Machine::new(
            desc.host.clone(),
            AccelSim::new(desc.accel.clone()),
            1 << 20,
        );
        fill_inputs(&mut fresh.mem, &spec, &module.layout, 22).unwrap();
        fresh.run(&module.program, 10_000_000).unwrap();
        let cold_c = fresh
            .mem
            .read_i32_slice(module.layout.c_addr as u64, (spec.m * spec.n) as usize)
            .unwrap();
        assert_eq!(delta_c, cold_c);
    }
}
