//! Typed persistence layers over [`accfg_store`]: the module store and the
//! cost store that give a fresh serving process a fleet warm start.
//!
//! Two key namespaces share one [`KeyValueStore`]:
//!
//! - `m` + encoded [`CacheKey`] → a serialized [`CompiledModule`]
//!   (program, launch plan, layout, analytic anchors) keyed by
//!   `(family, shape, opt)`;
//! - `c` + platform name + encoded [`CacheKey`] → one platform row of the
//!   [`CostRefiner`]'s learned EWMA state, keyed by
//!   `(platform, module, bucket)`: the mode-agnostic warmth buckets
//!   followed by one bucket row per DVFS frequency state, packed into
//!   the value. Stores written before frequency-keyed refinement carry
//!   only the agnostic buckets; [`load_costs`] detects the short value
//!   and fills the keyed rows with unseen sentinels, so old store files
//!   keep warm-starting new processes (the key encoding is unchanged,
//!   preserving sort order and byte-equality elision for rows whose
//!   learned state did not change).
//!
//! Cost rows are keyed by platform *name*, not the pool-local platform
//! index: indices are assigned per serve call by first appearance, so they
//! do not survive a process restart, while names are pinned to one
//! provisioning by the runtime's ambiguity guard
//! ([`ServeError::AmbiguousVariantName`]). On load, names the current pool
//! does not field are skipped silently — a store written by a bigger
//! heterogeneous fleet safely warm-starts a subset pool.
//!
//! Module rows are validated the same way on load: a module is restored
//! only when the pool fields a base descriptor with the module's
//! accelerator name and the persisted plan's configuration style matches
//! it. Everything else decodes but stays on disk.
//!
//! Determinism contract: save functions sort rows by encoded key before
//! writing, and the codec is canonical, so identical runs drive identical
//! `put` sequences — which [`accfg_store::LogStore`] turns into
//! byte-identical files.
//!
//! [`ServeError::AmbiguousVariantName`]: crate::ServeError::AmbiguousVariantName
//! [`CostRefiner`]: crate::CostRefiner

use crate::cache::{CacheKey, CompiledModule, CostModel, CostRow, ModuleCache, WARMTH_BUCKETS};
use crate::plan::{DispatchPlan, LaunchSpec, RegMap};
use accfg::pipeline::OptLevel;
use accfg_sim::{AluOp, BranchCond, Inst, Label, Program, Reg, Width};
use accfg_store::{ByteReader, ByteWriter, KeyValueStore, StoreError};
use accfg_targets::{AcceleratorDescriptor, ConfigStyle};
use accfg_workloads::{MatmulLayout, MatmulSpec};

/// Key-namespace prefix for compiled-module records.
pub const MODULE_PREFIX: u8 = b'm';
/// Key-namespace prefix for cost-refiner records.
pub const COST_PREFIX: u8 = b'c';

/// One persisted cost-refiner row: the EWMA bucket rows of `module` on
/// the platform named `platform` — the mode-agnostic row followed by one
/// row per DVFS frequency state (raw fixed-point, `-1` for unseen
/// buckets).
pub type CostSnapshotEntry = (String, CacheKey, CostRow);

fn put_spec(w: &mut ByteWriter, spec: &MatmulSpec) {
    w.put_i64(spec.m);
    w.put_i64(spec.n);
    w.put_i64(spec.k);
    w.put_i64(spec.tile_m);
    w.put_i64(spec.tile_k);
    w.put_i64(spec.tile_n);
    w.put_bool(spec.relu);
}

fn read_spec(r: &mut ByteReader) -> Result<MatmulSpec, StoreError> {
    Ok(MatmulSpec {
        m: r.i64()?,
        n: r.i64()?,
        k: r.i64()?,
        tile_m: r.i64()?,
        tile_k: r.i64()?,
        tile_n: r.i64()?,
        relu: r.bool()?,
    })
}

fn put_opt(w: &mut ByteWriter, opt: OptLevel) {
    w.put_u8(match opt {
        OptLevel::Base => 0,
        OptLevel::Dedup => 1,
        OptLevel::Overlap => 2,
        OptLevel::All => 3,
    });
}

fn read_opt(r: &mut ByteReader) -> Result<OptLevel, StoreError> {
    match r.u8()? {
        0 => Ok(OptLevel::Base),
        1 => Ok(OptLevel::Dedup),
        2 => Ok(OptLevel::Overlap),
        3 => Ok(OptLevel::All),
        tag => Err(StoreError::codec(format!("invalid opt-level tag {tag}"))),
    }
}

fn put_cache_key(w: &mut ByteWriter, key: &CacheKey) {
    w.put_str(&key.accelerator);
    put_spec(w, &key.spec);
    put_opt(w, key.opt);
}

fn read_cache_key(r: &mut ByteReader) -> Result<CacheKey, StoreError> {
    Ok(CacheKey {
        accelerator: r.str()?,
        spec: read_spec(r)?,
        opt: read_opt(r)?,
    })
}

/// The store key a module is filed under: `m` + canonical `(family,
/// shape, opt)` encoding.
pub fn module_key_bytes(key: &CacheKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(MODULE_PREFIX);
    put_cache_key(&mut w, key);
    w.finish()
}

/// The store key a cost row is filed under: `c` + platform name +
/// canonical module key encoding.
pub fn cost_key_bytes(platform: &str, key: &CacheKey) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(COST_PREFIX);
    w.put_str(platform);
    put_cache_key(&mut w, key);
    w.finish()
}

fn put_style(w: &mut ByteWriter, style: ConfigStyle) {
    match style {
        ConfigStyle::Csr => w.put_u8(0),
        ConfigStyle::RoccPairs { launch_funct } => {
            w.put_u8(1);
            w.put_u8(launch_funct);
        }
    }
}

fn read_style(r: &mut ByteReader) -> Result<ConfigStyle, StoreError> {
    match r.u8()? {
        0 => Ok(ConfigStyle::Csr),
        1 => Ok(ConfigStyle::RoccPairs {
            launch_funct: r.u8()?,
        }),
        tag => Err(StoreError::codec(format!("invalid config-style tag {tag}"))),
    }
}

fn put_regmap(w: &mut ByteWriter, regs: &RegMap) {
    w.put_u32(regs.len() as u32);
    for (&reg, &value) in regs {
        w.put_u16(reg);
        w.put_i64(value);
    }
}

fn read_regmap(r: &mut ByteReader) -> Result<RegMap, StoreError> {
    let count = r.u32()?;
    let mut regs = RegMap::new();
    for _ in 0..count {
        let reg = r.u16()?;
        let value = r.i64()?;
        regs.insert(reg, value);
    }
    Ok(regs)
}

fn put_plan(w: &mut ByteWriter, plan: &DispatchPlan) {
    put_style(w, plan.style);
    w.put_u32(plan.launches.len() as u32);
    for launch in &plan.launches {
        put_regmap(w, &launch.registers);
    }
    w.put_u64(plan.cold_writes);
}

fn read_plan(r: &mut ByteReader) -> Result<DispatchPlan, StoreError> {
    let style = read_style(r)?;
    let count = r.u32()?;
    let mut launches = Vec::with_capacity(count as usize);
    for _ in 0..count {
        launches.push(LaunchSpec {
            registers: read_regmap(r)?,
        });
    }
    Ok(DispatchPlan {
        style,
        launches,
        cold_writes: r.u64()?,
    })
}

fn put_alu_op(w: &mut ByteWriter, op: AluOp) {
    w.put_u8(match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Divu => 3,
        AluOp::Remu => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Sll => 8,
        AluOp::Srl => 9,
        AluOp::Slt => 10,
        AluOp::Sltu => 11,
    });
}

fn read_alu_op(r: &mut ByteReader) -> Result<AluOp, StoreError> {
    Ok(match r.u8()? {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Divu,
        4 => AluOp::Remu,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Sll,
        9 => AluOp::Srl,
        10 => AluOp::Slt,
        11 => AluOp::Sltu,
        tag => return Err(StoreError::codec(format!("invalid alu-op tag {tag}"))),
    })
}

fn put_width(w: &mut ByteWriter, width: Width) {
    w.put_u8(match width {
        Width::Byte => 0,
        Width::Word => 1,
        Width::Double => 2,
    });
}

fn read_width(r: &mut ByteReader) -> Result<Width, StoreError> {
    Ok(match r.u8()? {
        0 => Width::Byte,
        1 => Width::Word,
        2 => Width::Double,
        tag => return Err(StoreError::codec(format!("invalid width tag {tag}"))),
    })
}

fn put_cond(w: &mut ByteWriter, cond: BranchCond) {
    w.put_u8(match cond {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
    });
}

fn read_cond(r: &mut ByteReader) -> Result<BranchCond, StoreError> {
    Ok(match r.u8()? {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        tag => return Err(StoreError::codec(format!("invalid branch-cond tag {tag}"))),
    })
}

fn put_inst(w: &mut ByteWriter, inst: &Inst) {
    match *inst {
        Inst::Li { rd, imm } => {
            w.put_u8(0);
            w.put_u32(rd.0);
            w.put_i64(imm);
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            w.put_u8(1);
            put_alu_op(w, op);
            w.put_u32(rd.0);
            w.put_u32(rs1.0);
            w.put_u32(rs2.0);
        }
        Inst::AluI { op, rd, rs1, imm } => {
            w.put_u8(2);
            put_alu_op(w, op);
            w.put_u32(rd.0);
            w.put_u32(rs1.0);
            w.put_i64(imm);
        }
        Inst::Ld {
            rd,
            base,
            offset,
            width,
        } => {
            w.put_u8(3);
            w.put_u32(rd.0);
            w.put_u32(base.0);
            w.put_i64(offset);
            put_width(w, width);
        }
        Inst::St {
            rs,
            base,
            offset,
            width,
        } => {
            w.put_u8(4);
            w.put_u32(rs.0);
            w.put_u32(base.0);
            w.put_i64(offset);
            put_width(w, width);
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            w.put_u8(5);
            put_cond(w, cond);
            w.put_u32(rs1.0);
            w.put_u32(rs2.0);
            w.put_u32(target.index());
        }
        Inst::Jump { target } => {
            w.put_u8(6);
            w.put_u32(target.index());
        }
        Inst::CsrWrite { csr, rs } => {
            w.put_u8(7);
            w.put_u16(csr);
            w.put_u32(rs.0);
        }
        Inst::RoccCmd { funct, rs1, rs2 } => {
            w.put_u8(8);
            w.put_u8(funct);
            w.put_u32(rs1.0);
            w.put_u32(rs2.0);
        }
        Inst::Launch => w.put_u8(9),
        Inst::AwaitIdle => w.put_u8(10),
        Inst::Halt => w.put_u8(11),
    }
}

fn read_inst(r: &mut ByteReader) -> Result<Inst, StoreError> {
    Ok(match r.u8()? {
        0 => Inst::Li {
            rd: Reg(r.u32()?),
            imm: r.i64()?,
        },
        1 => Inst::Alu {
            op: read_alu_op(r)?,
            rd: Reg(r.u32()?),
            rs1: Reg(r.u32()?),
            rs2: Reg(r.u32()?),
        },
        2 => Inst::AluI {
            op: read_alu_op(r)?,
            rd: Reg(r.u32()?),
            rs1: Reg(r.u32()?),
            imm: r.i64()?,
        },
        3 => Inst::Ld {
            rd: Reg(r.u32()?),
            base: Reg(r.u32()?),
            offset: r.i64()?,
            width: read_width(r)?,
        },
        4 => Inst::St {
            rs: Reg(r.u32()?),
            base: Reg(r.u32()?),
            offset: r.i64()?,
            width: read_width(r)?,
        },
        5 => Inst::Branch {
            cond: read_cond(r)?,
            rs1: Reg(r.u32()?),
            rs2: Reg(r.u32()?),
            target: Label::from_index(r.u32()?),
        },
        6 => Inst::Jump {
            target: Label::from_index(r.u32()?),
        },
        7 => Inst::CsrWrite {
            csr: r.u16()?,
            rs: Reg(r.u32()?),
        },
        8 => Inst::RoccCmd {
            funct: r.u8()?,
            rs1: Reg(r.u32()?),
            rs2: Reg(r.u32()?),
        },
        9 => Inst::Launch,
        10 => Inst::AwaitIdle,
        11 => Inst::Halt,
        tag => return Err(StoreError::codec(format!("invalid instruction tag {tag}"))),
    })
}

fn put_program(w: &mut ByteWriter, program: &Program) {
    w.put_usize(program.reg_count());
    w.put_u32(program.insts().len() as u32);
    for inst in program.insts() {
        put_inst(w, inst);
    }
    w.put_u32(program.label_targets().len() as u32);
    for &target in program.label_targets() {
        w.put_usize(target);
    }
}

fn read_program(r: &mut ByteReader) -> Result<Program, StoreError> {
    let reg_count = r.usize()?;
    let inst_count = r.u32()?;
    let mut insts = Vec::with_capacity(inst_count as usize);
    for _ in 0..inst_count {
        insts.push(read_inst(r)?);
    }
    let label_count = r.u32()?;
    let mut label_targets = Vec::with_capacity(label_count as usize);
    for _ in 0..label_count {
        label_targets.push(r.usize()?);
    }
    Program::from_parts(insts, label_targets, reg_count)
        .ok_or_else(|| StoreError::codec("program parts are self-inconsistent"))
}

fn put_cost_model(w: &mut ByteWriter, cost: &CostModel) {
    w.put_u64(cost.cold_writes);
    w.put_u64(cost.cold_cycles);
    w.put_u64(cost.warm_writes);
    w.put_u64(cost.warm_cycles);
}

fn read_cost_model(r: &mut ByteReader) -> Result<CostModel, StoreError> {
    Ok(CostModel {
        cold_writes: r.u64()?,
        cold_cycles: r.u64()?,
        warm_writes: r.u64()?,
        warm_cycles: r.u64()?,
    })
}

/// Serializes one compiled module to its canonical store value.
pub fn encode_module(module: &CompiledModule) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_cache_key(&mut w, &module.key);
    w.put_i64(module.layout.a_addr);
    w.put_i64(module.layout.b_addr);
    w.put_i64(module.layout.c_addr);
    w.put_i64(module.layout.end);
    put_program(&mut w, &module.program);
    put_plan(&mut w, &module.plan);
    put_cost_model(&mut w, &module.cost);
    w.put_usize(module.ir_setup_writes);
    w.finish()
}

/// Deserializes a compiled module written by [`encode_module`].
///
/// # Errors
/// [`StoreError::Codec`] on any malformed or truncated payload.
pub fn decode_module(bytes: &[u8]) -> Result<CompiledModule, StoreError> {
    let mut r = ByteReader::new(bytes);
    let key = read_cache_key(&mut r)?;
    let layout = MatmulLayout {
        a_addr: r.i64()?,
        b_addr: r.i64()?,
        c_addr: r.i64()?,
        end: r.i64()?,
    };
    let program = read_program(&mut r)?;
    let plan = read_plan(&mut r)?;
    let cost = read_cost_model(&mut r)?;
    let ir_setup_writes = r.usize()?;
    r.expect_exhausted("compiled module")?;
    Ok(CompiledModule {
        key,
        layout,
        program,
        plan,
        cost,
        ir_setup_writes,
    })
}

/// Persists every cached module, sorted by encoded key so identical
/// caches drive identical write sequences. Returns the number of modules
/// written (including unchanged ones the store elides as no-ops).
///
/// # Errors
/// Propagates store I/O failures.
pub fn save_modules(store: &mut dyn KeyValueStore, cache: &ModuleCache) -> Result<u64, StoreError> {
    let mut rows: Vec<(Vec<u8>, Vec<u8>)> = cache
        .snapshot()
        .iter()
        .map(|module| (module_key_bytes(&module.key), encode_module(module)))
        .collect();
    rows.sort();
    let count = rows.len() as u64;
    for (key, value) in rows {
        store.put(&key, &value)?;
    }
    Ok(count)
}

/// Loads every persisted module the pool described by `descriptors` (one
/// base descriptor per pool family) can actually field: the module's
/// accelerator name must match a descriptor and its plan's configuration
/// style must be executable there. Non-matching modules are left on disk
/// untouched — that is what makes one store safely shareable across
/// differently-shaped pools.
///
/// # Errors
/// [`StoreError::Codec`] if a live module record fails to decode.
pub fn load_modules(
    store: &dyn KeyValueStore,
    descriptors: &[&AcceleratorDescriptor],
) -> Result<Vec<CompiledModule>, StoreError> {
    let mut modules = Vec::new();
    for key in store.keys_with_prefix(&[MODULE_PREFIX]) {
        let value = store
            .get(&key)
            .ok_or_else(|| StoreError::codec("module key vanished during scan"))?;
        let module = decode_module(value)?;
        if module_key_bytes(&module.key) != key {
            return Err(StoreError::codec("module filed under the wrong key"));
        }
        let fielded = descriptors
            .iter()
            .any(|desc| desc.name == module.key.accelerator && module.plan.executable_on(desc));
        if fielded {
            modules.push(module);
        }
    }
    Ok(modules)
}

/// Persists cost-refiner rows (platform-name keyed), sorted by encoded
/// key. Returns the number of rows written.
///
/// # Errors
/// Propagates store I/O failures.
pub fn save_costs(
    store: &mut dyn KeyValueStore,
    entries: &[CostSnapshotEntry],
) -> Result<u64, StoreError> {
    let mut rows: Vec<(Vec<u8>, Vec<u8>)> = entries
        .iter()
        .map(|(platform, key, buckets)| {
            let mut w = ByteWriter::new();
            for row in buckets {
                for &slot in row {
                    w.put_i64(slot);
                }
            }
            (cost_key_bytes(platform, key), w.finish())
        })
        .collect();
    rows.sort();
    let count = rows.len() as u64;
    for (key, value) in rows {
        store.put(&key, &value)?;
    }
    Ok(count)
}

/// Loads every persisted cost row, in sorted key order. Platform-name
/// filtering happens at seeding time (names the pool does not field are
/// skipped there), so this returns the full fleet snapshot.
///
/// # Errors
/// [`StoreError::Codec`] if a live cost record fails to decode.
pub fn load_costs(store: &dyn KeyValueStore) -> Result<Vec<CostSnapshotEntry>, StoreError> {
    let mut entries = Vec::new();
    for key in store.keys_with_prefix(&[COST_PREFIX]) {
        let value = store
            .get(&key)
            .ok_or_else(|| StoreError::codec("cost key vanished during scan"))?;
        let mut kr = ByteReader::new(&key);
        kr.u8()?; // prefix
        let platform = kr.str()?;
        let cache_key = read_cache_key(&mut kr)?;
        kr.expect_exhausted("cost key")?;
        let mut r = ByteReader::new(value);
        // the mode-agnostic row comes first in both formats; unseen
        // sentinels (`-1`) fill the keyed rows when the value predates
        // frequency-keyed refinement and carries only the agnostic row
        let mut buckets: CostRow = [[-1i64; WARMTH_BUCKETS]; crate::cache::COST_ROWS];
        for slot in &mut buckets[crate::cache::COST_ROW_AGNOSTIC] {
            *slot = r.i64()?;
        }
        if !r.is_exhausted() {
            for row in buckets.iter_mut().skip(1) {
                for slot in row {
                    *slot = r.i64()?;
                }
            }
            r.expect_exhausted("cost row")?;
        }
        entries.push((platform, cache_key, buckets));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{build_module, CostRefiner, COST_ROWS, COST_ROW_AGNOSTIC};
    use accfg_sim::FreqState;
    use accfg_store::MemStore;

    #[test]
    fn module_codec_round_trips() {
        for (desc, spec) in [
            (
                AcceleratorDescriptor::opengemm(),
                MatmulSpec::opengemm_paper(16).unwrap(),
            ),
            (
                AcceleratorDescriptor::gemmini(),
                MatmulSpec::gemmini_paper(32).unwrap(),
            ),
        ] {
            for opt in [OptLevel::Base, OptLevel::All] {
                let module = build_module(&desc, spec, opt).unwrap();
                let decoded = decode_module(&encode_module(&module)).unwrap();
                assert_eq!(decoded, module);
            }
        }
    }

    #[test]
    fn module_store_restores_only_what_the_pool_fields() {
        let opengemm = AcceleratorDescriptor::opengemm();
        let gemmini = AcceleratorDescriptor::gemmini();
        let mut cache = ModuleCache::new();
        cache
            .get_or_build(
                &opengemm,
                MatmulSpec::opengemm_paper(16).unwrap(),
                OptLevel::All,
            )
            .unwrap();
        cache
            .get_or_build(
                &gemmini,
                MatmulSpec::gemmini_paper(32).unwrap(),
                OptLevel::All,
            )
            .unwrap();

        let mut store = MemStore::new();
        assert_eq!(save_modules(&mut store, &cache).unwrap(), 2);

        // A pool fielding only OpenGeMM restores only the OpenGeMM module.
        let restored = load_modules(&store, &[&opengemm]).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].key.accelerator, opengemm.name);
        // The full pool restores both.
        assert_eq!(
            load_modules(&store, &[&opengemm, &gemmini]).unwrap().len(),
            2
        );
        // An empty pool restores nothing, and the store is untouched.
        assert!(load_modules(&store, &[]).unwrap().is_empty());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn cost_rows_round_trip_through_the_store() {
        let module = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let mut refiner = CostRefiner::new();
        refiner.observe(&module.key, 0, 0, FreqState::Cold, 500);
        refiner.observe(&module.key, 1, WARMTH_BUCKETS - 1, FreqState::Boost, 900);

        let entries: Vec<CostSnapshotEntry> = refiner
            .snapshot()
            .into_iter()
            .map(|(key, platform, buckets)| (format!("variant{platform}"), key, buckets))
            .collect();
        assert_eq!(entries.len(), 2);

        let mut store = MemStore::new();
        save_costs(&mut store, &entries).unwrap();
        let mut loaded = load_costs(&store).unwrap();
        let mut expected = entries.clone();
        loaded.sort_by_key(|(p, k, _)| (p.clone(), cost_key_bytes(p, k)));
        expected.sort_by_key(|(p, k, _)| (p.clone(), cost_key_bytes(p, k)));
        assert_eq!(loaded, expected);
    }

    #[test]
    fn old_format_cost_values_load_with_unseen_keyed_rows() {
        // a store written before frequency-keyed refinement packs only
        // the agnostic warmth buckets into each cost value; loading it
        // must fill every keyed row with unseen sentinels rather than
        // fail — old fleet stores keep warm-starting new binaries
        let module = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let agnostic: [i64; WARMTH_BUCKETS] = std::array::from_fn(|b| (b as i64 + 2) << 8);
        let mut w = ByteWriter::new();
        for &slot in &agnostic {
            w.put_i64(slot);
        }
        let mut store = MemStore::new();
        store
            .put(&cost_key_bytes("opengemm", &module.key), &w.finish())
            .unwrap();

        let loaded = load_costs(&store).unwrap();
        assert_eq!(loaded.len(), 1);
        let (platform, key, buckets) = &loaded[0];
        assert_eq!(platform, "opengemm");
        assert_eq!(key, &module.key);
        assert_eq!(buckets[COST_ROW_AGNOSTIC], agnostic);
        for row in &buckets[COST_ROW_AGNOSTIC + 1..COST_ROWS] {
            assert_eq!(row, &[-1i64; WARMTH_BUCKETS]);
        }

        // saving the loaded entry upgrades the value to the keyed format
        save_costs(&mut store, &loaded).unwrap();
        let reloaded = load_costs(&store).unwrap();
        assert_eq!(reloaded, loaded);
    }

    #[test]
    fn corrupt_module_payload_is_a_codec_error() {
        let module = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let mut bytes = encode_module(&module);
        bytes.truncate(bytes.len() / 2);
        assert!(matches!(
            decode_module(&bytes),
            Err(StoreError::Codec { .. })
        ));
    }
}
