//! Serve engines: the deterministic simulated-clock loop (the test
//! oracle) and the sharded parallel engine behind the same facade.
//!
//! [`Runtime::serve`] resolves modules, sorts the dispatch order, and
//! builds the worker pool, then hands the *serve loop proper* to one of
//! two engines selected by [`ServeConfig::mode`]:
//!
//! - [`ServeMode::Deterministic`] (the default) runs the single-threaded
//!   simulated-clock loop: one scheduler over the whole pool, every
//!   blocking and decision point a function of simulated time only.
//!   This is the **oracle** — its per-request outcomes (writes, cycles,
//!   latencies, prediction samples) define correct behaviour, and its
//!   reports are byte-identical across runs and host thread counts.
//! - [`ServeMode::Parallel`] shards the serve loop **per pool group**:
//!   each group gets its own scheduler shard processing that group's
//!   subsequence of the arrival order, while a pool of executor threads
//!   owns the workers and runs dispatches as jobs arrive over channels.
//!   Completions flow back to the owning shard over a per-shard channel
//!   instead of the loop blocking on one worker at a time. A thread
//!   budget of 1 runs the same shards sequentially on the calling
//!   thread with inline execution — the fully serial baseline that
//!   wall-clock scaling is measured against.
//!
//! # Why sharding preserves the oracle's outcomes
//!
//! The deterministic loop's processing of each group's subsequence is
//! independent of every other group:
//!
//! - routing reads only the group's candidate workers (policies score
//!   `candidates` exclusively, and `fifo` keeps per-group round-robin
//!   counters);
//! - commits touch only the chosen worker's queue and shadow state;
//! - refiner rows are keyed `(module key, platform)`, and a group's
//!   module keys name its *base* platform — so observation state is
//!   disjoint across groups whenever base platform names are distinct;
//! - batch coalescing scans only the group's own arrival subsequence
//!   (other groups' requests never interpose);
//! - worker cycle counts are pure functions of the worker's own job
//!   sequence (machines share no state), so per-worker completions are
//!   identical however executor threads interleave them.
//!
//! Each shard therefore replays exactly the decisions the global loop
//! makes for its group, and the merged per-request outcomes are equal
//! by construction. The one configuration that breaks the argument —
//! two groups sharing a base platform *name* (their modules would share
//! refiner rows) — makes the parallel engine silently fall back to the
//! deterministic loop: the engine choice is a performance knob, never a
//! semantic one. The contract is enforced end to end by
//! `tests/differential.rs`, which runs every bench stream × policy pair
//! through both engines and asserts outcome-by-outcome equality.
//!
//! [`Runtime::serve`]: crate::runtime::Runtime::serve
//! [`ServeConfig::mode`]: crate::runtime::ServeConfig::mode

use crate::cache::CompiledModule;
use crate::error::ServeError;
use crate::persist::CostSnapshotEntry;
use crate::runtime::{ServeBudget, ServeConfig};
use crate::scheduler::{CommitOutcome, Scheduler};
use crate::worker::{Completion, Job, Worker};
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::TrafficRequest;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// Which serve engine processes the dispatch loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// The single-threaded simulated-clock loop — the deterministic test
    /// oracle. Reports are byte-identical across runs; this is the
    /// default, and the only mode benchmark artifacts are committed
    /// from.
    #[default]
    Deterministic,
    /// The sharded engine: one scheduler shard per pool group, with
    /// dispatch execution spread over `threads` executor threads that
    /// own the workers. Produces per-request outcomes identical to the
    /// deterministic oracle (see the module docs for the argument and
    /// the fallback case); wall-clock throughput scales with `threads`.
    Parallel {
        /// The engine's thread budget (clamped to at least 1). `1` runs
        /// the shards one after another on the calling thread, executing
        /// every dispatch inline — the fully serial baseline wall-clock
        /// speedups are measured against. `>= 2` spawns one thread per
        /// scheduler shard plus `threads` executor threads; worker `w`
        /// is owned by executor `w % threads`, so `threads >=` pool
        /// worker count gives every worker its own executor.
        threads: usize,
    },
}

/// Everything the serve loop needs, prepared by `Runtime::serve`'s
/// prologue (module resolution, pool construction, store restore).
pub(crate) struct EngineInput<'a> {
    pub stream: &'a [TrafficRequest],
    /// Dispatch order: stream slots sorted by `(arrival, id, slot)`.
    pub order: &'a [usize],
    /// Per-slot compiled module, resolved for every slot in `order`.
    pub modules: &'a [Option<Arc<CompiledModule>>],
    /// Per-slot pool-group index.
    pub group_idx: &'a [usize],
    /// Per-group worker indices, ascending.
    pub groups: &'a [Vec<usize>],
    /// Per-worker platform descriptors.
    pub worker_descs: &'a [AcceleratorDescriptor],
    /// The worker pool itself (consumed: engines move workers onto
    /// execution threads).
    pub workers: Vec<Worker>,
    /// Persisted cost rows to seed the refiner(s) with.
    pub cost_seed: &'a [CostSnapshotEntry],
    /// Per-group boost power caps (`None` leaves boosting unbounded).
    pub power_caps: &'a [Option<usize>],
    pub cfg: &'a ServeConfig,
}

/// Per-worker group membership, inverted from the per-group lists.
fn group_of_worker(groups: &[Vec<usize>], worker_count: usize) -> Vec<usize> {
    let mut worker_group = vec![0usize; worker_count];
    for (g, group) in groups.iter().enumerate() {
        for &w in group {
            worker_group[w] = g;
        }
    }
    worker_group
}

/// What the serve loop produced, consumed by `Runtime::serve`'s epilogue
/// (latency replay, metrics, store flush).
pub(crate) struct EngineOutput {
    /// Per-slot completions, in stream order.
    pub completions: Vec<Completion>,
    /// Per-slot worker assignment.
    pub assignment: Vec<usize>,
    /// Per-slot commit predictions.
    pub outcomes: Vec<CommitOutcome>,
    /// Requests that rode along in a batch (batch size minus one, summed).
    pub batched_requests: u64,
    /// Persisted cost rows the refiner was seeded with.
    pub ewma_entries_seeded: u64,
    /// The refiner's final rows, re-keyed from pool-local platform index
    /// to platform name — ready for [`crate::persist::save_costs`].
    pub cost_snapshot: Vec<CostSnapshotEntry>,
}

/// Tracks a [`ServeBudget`]'s running totals against the full stream
/// length, deciding — exactly, thanks to determinism — when the final
/// metrics are already beyond a bound.
struct BudgetTracker {
    budget: ServeBudget,
    /// Latencies above `p99_bound` seen so far; each pulled completion's
    /// latency is final, so this count only grows.
    exceed_count: u64,
    /// How many over-bound latencies the nearest-rank p99 tolerates:
    /// `n - ceil(0.99 * n)`. One more proves p99 > bound.
    allowed_exceed: u64,
    /// Running sum of setup writes across pulled completions.
    writes: u64,
    /// Completions pulled so far.
    completed: u64,
}

impl BudgetTracker {
    fn new(budget: ServeBudget, stream_len: usize) -> Self {
        // the same nearest-rank convention as LatencyStats::percentile:
        // rank = ceil(0.99 * n) clamped to 1..=n
        let n = stream_len as u64;
        let rank = (((stream_len as f64) * 0.99).ceil() as u64).clamp(1.min(n), n);
        Self {
            budget,
            exceed_count: 0,
            allowed_exceed: n - rank,
            writes: 0,
            completed: 0,
        }
    }

    /// Folds one pulled completion in; `Err` the moment a bound is
    /// provably exceeded by the *final* metrics.
    fn admit(&mut self, latency: u64, setup_writes: u64) -> Result<(), ServeError> {
        self.completed += 1;
        self.writes += setup_writes;
        if let Some(bound) = self.budget.p99_bound {
            if latency > bound {
                self.exceed_count += 1;
            }
        }
        let p99_exceeded = self
            .budget
            .p99_bound
            .is_some_and(|_| self.exceed_count > self.allowed_exceed);
        let writes_exceeded = self
            .budget
            .max_setup_writes
            .is_some_and(|max| self.writes > max);
        if p99_exceeded || writes_exceeded {
            return Err(ServeError::BudgetExceeded {
                completed: self.completed,
                p99_exceeded,
                writes_exceeded,
            });
        }
        Ok(())
    }
}

/// Runs the serve loop under the engine `input.cfg.mode` selects. A
/// budgeted serve always runs on the deterministic oracle — the abort
/// argument (`BudgetTracker`) is stated against the oracle's pull order,
/// so like the duplicate-base-name case this overrides the performance
/// knob rather than weakening the contract.
pub(crate) fn run(input: EngineInput<'_>) -> Result<EngineOutput, ServeError> {
    match input.cfg.mode {
        ServeMode::Deterministic => run_deterministic(input),
        ServeMode::Parallel { .. } if input.cfg.budget.is_some_and(|b| !b.is_unbounded()) => {
            run_deterministic(input)
        }
        ServeMode::Parallel { threads } => run_parallel(input, threads.max(1)),
    }
}

/// The deterministic oracle: one scheduler over the whole pool, one
/// thread per worker running ahead eagerly, the loop pulling completions
/// only when the simulated clock proves their dispatch has started.
///
/// With a [`ServeBudget`] configured, every pulled completion's (final)
/// latency and setup writes feed a [`BudgetTracker`]; the loop stops
/// scheduling the moment a bound is provably exceeded, drains the
/// in-flight tail to join the worker threads cleanly, and returns
/// [`ServeError::BudgetExceeded`] instead of an output.
fn run_deterministic(input: EngineInput<'_>) -> Result<EngineOutput, ServeError> {
    let EngineInput {
        stream,
        order,
        modules,
        group_idx,
        groups,
        worker_descs,
        workers,
        cost_seed,
        power_caps,
        cfg,
    } = input;
    let module_of = |i: usize| modules[i].as_ref().expect("resolved by the prologue");
    let worker_count = workers.len();

    let mut scheduler = Scheduler::new(cfg.policy, worker_descs, groups.len())
        .with_refinement(cfg.refine_cost)
        .with_slack(cfg.load_slack)
        .with_power_caps(group_of_worker(groups, worker_count), power_caps.to_vec());
    let ewma_entries_seeded = scheduler.seed_refiner(cost_seed);
    let elide = scheduler.elides();
    let mut assignment = vec![0usize; stream.len()];
    let mut outcomes = vec![CommitOutcome::default(); stream.len()];
    let mut batched_requests = 0u64;
    let max_batch = cfg.max_batch.max(1);
    let mut completions: Vec<Option<Completion>> = (0..stream.len()).map(|_| None).collect();
    let mut budget = cfg
        .budget
        .filter(|b| !b.is_unbounded())
        .map(|b| BudgetTracker::new(b, stream.len()));
    let mut abort: Option<ServeError> = None;
    thread::scope(|scope| {
        let mut job_txs = Vec::new();
        let mut result_rxs = Vec::new();
        for worker in workers {
            let (job_tx, job_rx) = mpsc::channel::<Job>();
            let (result_tx, result_rx) = mpsc::channel::<Completion>();
            job_txs.push(job_tx);
            result_rxs.push(result_rx);
            scope.spawn(move || worker.run_loop(job_rx, result_tx));
        }

        // per-worker dispatches sent but not yet pulled back, oldest
        // first; `finish_known[w]` is the simulated finish of the last
        // pulled dispatch, so the head's start cycle is exact
        let mut inflight: Vec<VecDeque<usize>> = vec![VecDeque::new(); worker_count];
        let mut finish_known = vec![0u64; worker_count];
        // pulled completions whose finish is still in the future,
        // retired in deterministic (finish, slot) order
        let mut unretired: BTreeSet<(u64, usize)> = BTreeSet::new();
        let mut scheduled = vec![false; stream.len()];

        let mut cursor = 0usize;
        loop {
            while cursor < order.len() && scheduled[order[cursor]] {
                cursor += 1;
            }
            if cursor == order.len() {
                break;
            }
            // heads are taken at advancing positions of the
            // arrival-sorted order (batch coalescing skips ahead only
            // for *members*), so this clock is monotone
            let head = order[cursor];
            let now = stream[head].arrival;

            // pull every completion the clock proves has *started*
            // (its worker-queue predecessors all finished by now) —
            // the worker thread is already executing it, so the recv
            // blocks at most for real work already in progress
            for w in 0..worker_count {
                while let Some(&slot) = inflight[w].front() {
                    let start = finish_known[w].max(stream[slot].arrival);
                    if start > now {
                        break;
                    }
                    let completion = result_rxs[w].recv().expect("worker alive while jobs pend");
                    debug_assert_eq!(completion.slot, slot);
                    let finish = start + completion.counters.cycles;
                    finish_known[w] = finish;
                    if completion.sim_error.is_none() {
                        unretired.insert((finish, slot));
                    }
                    // a pulled completion's latency is final — the clock
                    // proved its start — so the budget verdict is exact
                    if let Some(tracker) = budget.as_mut() {
                        if let Err(e) =
                            tracker.admit(finish - stream[slot].arrival, completion.emitted_writes)
                        {
                            abort = Some(e);
                        }
                    }
                    completions[slot] = Some(completion);
                    inflight[w].pop_front();
                    if abort.is_some() {
                        break;
                    }
                }
                if abort.is_some() {
                    break;
                }
            }
            if abort.is_some() {
                // stop scheduling; fall through to the tail drain so the
                // worker threads join cleanly
                break;
            }
            // retire completed dispatches into the cost refiner, in
            // simulated completion order
            while let Some(&(finish, slot)) = unretired.iter().next() {
                if finish > now {
                    break;
                }
                unretired.remove(&(finish, slot));
                let completion = completions[slot].as_ref().expect("pulled above");
                scheduler.observe(
                    assignment[slot],
                    module_of(slot),
                    outcomes[slot].bucket,
                    completion.freq,
                    completion.counters.cycles,
                );
            }

            // route the batch head, then coalesce same-module requests
            // adjacent in this group's arrival order (requests bound
            // for other accelerator groups never interpose), stopping
            // at the batch cutoff: once the worker's estimated
            // outstanding cycles reach the horizon, further requests
            // are better served by a fresh routing decision than by
            // joining the queue
            let g = group_idx[head];
            let worker = scheduler.choose(g, &groups[g], module_of(head), now);
            let mut members = 0usize;
            let mut scan = cursor;
            while scan < order.len() {
                let slot = order[scan];
                scan += 1;
                if scheduled[slot] || group_idx[slot] != g {
                    continue;
                }
                if members > 0 {
                    if members >= max_batch || module_of(slot).key != module_of(head).key {
                        break;
                    }
                    if let Some(cutoff) = cfg.batch_cutoff {
                        if scheduler.outstanding(worker, stream[slot].arrival) >= cutoff {
                            break;
                        }
                    }
                }
                outcomes[slot] = scheduler.commit(worker, module_of(slot), stream[slot].arrival);
                assignment[slot] = worker;
                scheduled[slot] = true;
                inflight[worker].push_back(slot);
                job_txs[worker]
                    .send(Job {
                        request: stream[slot].clone(),
                        module: Arc::clone(module_of(slot)),
                        slot,
                        elide,
                    })
                    .expect("worker thread alive while jobs pend");
                members += 1;
            }
            batched_requests += (members - 1) as u64;
        }

        // drain the tail: close the job channels and collect whatever is
        // still in flight, in per-worker dispatch order so the budget
        // tracker sees every completion's exact latency — the bounds are
        // thereby *exact*: a budgeted run completes if and only if its
        // final metrics are within budget
        drop(job_txs);
        for (w, result_rx) in result_rxs.into_iter().enumerate() {
            while let Some(slot) = inflight[w].pop_front() {
                let completion = result_rx.recv().expect("worker alive while jobs pend");
                debug_assert_eq!(completion.slot, slot);
                let start = finish_known[w].max(stream[slot].arrival);
                let finish = start + completion.counters.cycles;
                finish_known[w] = finish;
                if abort.is_none() {
                    if let Some(tracker) = budget.as_mut() {
                        if let Err(e) =
                            tracker.admit(finish - stream[slot].arrival, completion.emitted_writes)
                        {
                            abort = Some(e);
                        }
                    }
                }
                completions[slot] = Some(completion);
            }
        }
    });
    if let Some(e) = abort {
        return Err(e);
    }
    let cost_snapshot = snapshot_by_name(&scheduler);
    Ok(EngineOutput {
        completions: completions
            .into_iter()
            .map(|c| c.expect("every dispatched job completes"))
            .collect(),
        assignment,
        outcomes,
        batched_requests,
        ewma_entries_seeded,
        cost_snapshot,
    })
}

/// The refiner's rows re-keyed from platform index to platform name.
fn snapshot_by_name(scheduler: &Scheduler) -> Vec<CostSnapshotEntry> {
    let variants = scheduler.load().variants();
    scheduler
        .refiner()
        .snapshot()
        .into_iter()
        .map(|(key, platform, buckets)| (variants[platform].name.clone(), key, buckets))
        .collect()
}

/// Shared read-only context every scheduler shard runs against.
#[derive(Clone, Copy)]
struct Shared<'a> {
    stream: &'a [TrafficRequest],
    order: &'a [usize],
    modules: &'a [Option<Arc<CompiledModule>>],
    group_idx: &'a [usize],
    groups: &'a [Vec<usize>],
    worker_descs: &'a [AcceleratorDescriptor],
    power_caps: &'a [Option<usize>],
    cfg: &'a ServeConfig,
    worker_count: usize,
}

/// How a shard dispatches jobs and collects their completions: over the
/// executor channels (the threaded engine), or inline on the calling
/// thread (the single-thread budget — the shard executes each job itself
/// at dispatch time, so a "receive" just replays the stashed result).
enum ShardLane {
    /// Jobs go to executor `worker % threads`; completions come back on
    /// the shard's own channel.
    Threaded {
        job_txs: Vec<mpsc::Sender<(usize, Job)>>,
        comp_rx: mpsc::Receiver<Completion>,
        threads: usize,
    },
    /// The shard owns its group's workers and executes synchronously.
    Inline {
        workers: HashMap<usize, Worker>,
        done: VecDeque<Completion>,
    },
}

impl ShardLane {
    fn dispatch(&mut self, worker: usize, job: Job) {
        match self {
            ShardLane::Threaded {
                job_txs, threads, ..
            } => job_txs[worker % *threads]
                .send((worker, job))
                .expect("executor thread alive while jobs pend"),
            ShardLane::Inline { workers, done } => {
                let completion = workers
                    .get_mut(&worker)
                    .expect("worker owned by this shard")
                    .execute(&job);
                done.push_back(completion);
            }
        }
    }

    fn recv(&mut self) -> Completion {
        match self {
            ShardLane::Threaded { comp_rx, .. } => {
                comp_rx.recv().expect("executor alive while jobs pend")
            }
            ShardLane::Inline { done, .. } => done
                .pop_front()
                .expect("inline dispatches complete synchronously"),
        }
    }
}

/// What one scheduler shard hands back to be merged into stream order.
struct ShardResult {
    /// `(slot, worker, outcome, completion)` per request of the group.
    slots: Vec<(usize, usize, CommitOutcome, Completion)>,
    batched_requests: u64,
    /// The shard refiner's final rows, re-keyed to platform names.
    snapshot: Vec<CostSnapshotEntry>,
}

/// The parallel engine: one scheduler shard per pool group, execution
/// spread over `threads` executor threads owning the workers. Budgeted
/// serves never reach this engine (`run` routes them to the oracle), so
/// the only error path is the fallback's.
fn run_parallel(input: EngineInput<'_>, threads: usize) -> Result<EngineOutput, ServeError> {
    // Two groups sharing a base platform *name* would share refiner rows
    // (module keys name the base platform), coupling the shards' cost
    // state. That shape cannot be decomposed, so serve it on the oracle
    // instead — the engine choice is a performance knob, not a semantic
    // one.
    let mut base_names = HashSet::new();
    for group in input.groups {
        if !base_names.insert(input.worker_descs[group[0]].name.as_str()) {
            return run_deterministic(input);
        }
    }

    let n_groups = input.groups.len();
    let worker_count = input.workers.len();
    // Split the persisted cost rows by owning shard: shard `g` seeds the
    // rows naming one of its member platforms for modules compiled
    // against its base. Rows the pool fields but no shard can own (a
    // member platform shared with another group, keyed by a foreign
    // base) are routing-dead — no shard ever reads or writes them — but
    // the oracle's refiner would still carry them, so they pass through
    // to the final snapshot verbatim to keep store flushes identical.
    let member_names: Vec<HashSet<&str>> = input
        .groups
        .iter()
        .map(|group| {
            group
                .iter()
                .map(|&w| input.worker_descs[w].name.as_str())
                .collect()
        })
        .collect();
    let fielded: HashSet<&str> = input.worker_descs.iter().map(|d| d.name.as_str()).collect();
    let mut shard_seeds: Vec<Vec<CostSnapshotEntry>> = vec![Vec::new(); n_groups];
    let mut passthrough: Vec<CostSnapshotEntry> = Vec::new();
    let mut ewma_entries_seeded = 0u64;
    if input.cfg.refine_cost {
        for entry in input.cost_seed {
            let (name, key, _) = entry;
            if !fielded.contains(name.as_str()) {
                continue;
            }
            // counted exactly as `LoadTracker::seed_refiner` would
            ewma_entries_seeded += 1;
            let owner = (0..n_groups).find(|&g| {
                member_names[g].contains(name.as_str())
                    && input.worker_descs[input.groups[g][0]].name == key.accelerator
            });
            match owner {
                Some(g) => shard_seeds[g].push(entry.clone()),
                None => passthrough.push(entry.clone()),
            }
        }
    }

    let shared = Shared {
        stream: input.stream,
        order: input.order,
        modules: input.modules,
        group_idx: input.group_idx,
        groups: input.groups,
        worker_descs: input.worker_descs,
        power_caps: input.power_caps,
        cfg: input.cfg,
        worker_count,
    };

    let stream_len = input.stream.len();
    let mut completions: Vec<Option<Completion>> = (0..stream_len).map(|_| None).collect();
    let mut assignment = vec![0usize; stream_len];
    let mut outcomes = vec![CommitOutcome::default(); stream_len];
    let mut batched_requests = 0u64;
    let mut cost_snapshot = passthrough;
    let mut merge = |shard: ShardResult| {
        batched_requests += shard.batched_requests;
        cost_snapshot.extend(shard.snapshot);
        for (slot, worker, outcome, completion) in shard.slots {
            assignment[slot] = worker;
            outcomes[slot] = outcome;
            completions[slot] = Some(completion);
        }
    };
    if threads == 1 {
        // the single-thread budget: same shards, same decisions, but run
        // one after another on the calling thread with every dispatch
        // executed inline — the fully serial baseline that wall-clock
        // speedups at higher budgets are measured against
        let mut workers: Vec<Option<Worker>> = input.workers.into_iter().map(Some).collect();
        for (g, seed) in shard_seeds.into_iter().enumerate() {
            let owned: HashMap<usize, Worker> = input.groups[g]
                .iter()
                .map(|&w| (w, workers[w].take().expect("each worker has one group")))
                .collect();
            let lane = ShardLane::Inline {
                workers: owned,
                done: VecDeque::new(),
            };
            merge(run_shard(shared, g, seed, lane));
        }
        return Ok(EngineOutput {
            completions: completions
                .into_iter()
                .map(|c| c.expect("every dispatched job completes"))
                .collect(),
            assignment,
            outcomes,
            batched_requests,
            ewma_entries_seeded,
            cost_snapshot,
        });
    }
    thread::scope(|scope| {
        // executor channels: worker `w` is owned by executor `w % threads`
        let mut exec_txs = Vec::with_capacity(threads);
        let mut exec_rxs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<(usize, Job)>();
            exec_txs.push(tx);
            exec_rxs.push(rx);
        }
        // per-shard completion channels, addressed per worker
        let mut shard_comp_txs = Vec::with_capacity(n_groups);
        let mut shard_comp_rxs = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let (tx, rx) = mpsc::channel::<Completion>();
            shard_comp_txs.push(tx);
            shard_comp_rxs.push(rx);
        }
        let mut worker_group = vec![0usize; worker_count];
        for (g, group) in input.groups.iter().enumerate() {
            for &w in group {
                worker_group[w] = g;
            }
        }
        let comp_tx_of_worker: Vec<mpsc::Sender<Completion>> = (0..worker_count)
            .map(|w| shard_comp_txs[worker_group[w]].clone())
            .collect();
        drop(shard_comp_txs);

        // executor threads own the workers and execute jobs in arrival
        // order; a worker's jobs all come from its group's single shard,
        // so per-sender channel FIFO preserves each worker's dispatch
        // sequence exactly as the shard committed it
        let mut owned: Vec<HashMap<usize, Worker>> = (0..threads).map(|_| HashMap::new()).collect();
        for (w, worker) in input.workers.into_iter().enumerate() {
            owned[w % threads].insert(w, worker);
        }
        for (mut workers, job_rx) in owned.into_iter().zip(exec_rxs) {
            let comp_txs = comp_tx_of_worker.clone();
            scope.spawn(move || {
                while let Ok((w, job)) = job_rx.recv() {
                    let completion = workers
                        .get_mut(&w)
                        .expect("job routed to its owning executor")
                        .execute(&job);
                    if comp_txs[w].send(completion).is_err() {
                        break;
                    }
                }
            });
        }
        drop(comp_tx_of_worker);

        // scheduler shards: one per pool group
        let mut handles = Vec::with_capacity(n_groups);
        for (g, (comp_rx, seed)) in shard_comp_rxs.into_iter().zip(shard_seeds).enumerate() {
            let lane = ShardLane::Threaded {
                job_txs: exec_txs.clone(),
                comp_rx,
                threads,
            };
            handles.push(scope.spawn(move || run_shard(shared, g, seed, lane)));
        }
        drop(exec_txs);

        for handle in handles {
            merge(handle.join().expect("scheduler shard panicked"));
        }
    });
    Ok(EngineOutput {
        completions: completions
            .into_iter()
            .map(|c| c.expect("every dispatched job completes"))
            .collect(),
        assignment,
        outcomes,
        batched_requests,
        ewma_entries_seeded,
        cost_snapshot,
    })
}

/// One scheduler shard: replays the oracle's loop over group `g`'s
/// subsequence of the arrival order, against a full-width scheduler (so
/// platform indices match the oracle's) that only ever routes within the
/// group's candidates.
fn run_shard(
    shared: Shared<'_>,
    g: usize,
    seed: Vec<CostSnapshotEntry>,
    mut lane: ShardLane,
) -> ShardResult {
    let Shared {
        stream,
        order,
        modules,
        group_idx,
        groups,
        worker_descs,
        power_caps,
        cfg,
        worker_count,
    } = shared;
    let module_of = |i: usize| modules[i].as_ref().expect("resolved by the prologue");
    let members = &groups[g];

    let mut scheduler = Scheduler::new(cfg.policy, worker_descs, groups.len())
        .with_refinement(cfg.refine_cost)
        .with_slack(cfg.load_slack)
        .with_power_caps(group_of_worker(groups, worker_count), power_caps.to_vec());
    scheduler.seed_refiner(&seed);
    let elide = scheduler.elides();
    let max_batch = cfg.max_batch.max(1);

    // this group's subsequence of the arrival order
    let my_order: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| group_idx[i] == g)
        .collect();

    // completions arrive on one lane for all member workers, in
    // execution order, which need not match the simulated-clock order the
    // shard consumes them in — buffer strays by slot until needed
    let mut pending: HashMap<usize, Completion> = HashMap::new();
    fn wait_for(
        slot: usize,
        lane: &mut ShardLane,
        pending: &mut HashMap<usize, Completion>,
    ) -> Completion {
        loop {
            if let Some(completion) = pending.remove(&slot) {
                return completion;
            }
            let completion = lane.recv();
            pending.insert(completion.slot, completion);
        }
    }

    let mut slots: Vec<(usize, usize, CommitOutcome, Completion)> =
        Vec::with_capacity(my_order.len());
    let mut assignment: HashMap<usize, usize> = HashMap::new();
    let mut outcomes: HashMap<usize, CommitOutcome> = HashMap::new();
    let mut completions: HashMap<usize, Completion> = HashMap::new();
    let mut inflight: Vec<VecDeque<usize>> = vec![VecDeque::new(); worker_count];
    let mut finish_known = vec![0u64; worker_count];
    let mut unretired: BTreeSet<(u64, usize)> = BTreeSet::new();
    let mut scheduled = vec![false; stream.len()];
    let mut batched_requests = 0u64;

    let mut cursor = 0usize;
    loop {
        while cursor < my_order.len() && scheduled[my_order[cursor]] {
            cursor += 1;
        }
        if cursor == my_order.len() {
            break;
        }
        let head = my_order[cursor];
        let now = stream[head].arrival;

        // pull every member completion the clock proves has started —
        // exactly the oracle's pull rule, restricted to this group's
        // workers
        for &w in members {
            while let Some(&slot) = inflight[w].front() {
                let start = finish_known[w].max(stream[slot].arrival);
                if start > now {
                    break;
                }
                let completion = wait_for(slot, &mut lane, &mut pending);
                debug_assert_eq!(completion.slot, slot);
                let finish = start + completion.counters.cycles;
                finish_known[w] = finish;
                if completion.sim_error.is_none() {
                    unretired.insert((finish, slot));
                }
                completions.insert(slot, completion);
                inflight[w].pop_front();
            }
        }
        // retire completed dispatches into this shard's cost refiner, in
        // simulated completion order
        while let Some(&(finish, slot)) = unretired.iter().next() {
            if finish > now {
                break;
            }
            unretired.remove(&(finish, slot));
            let completion = &completions[&slot];
            scheduler.observe(
                assignment[&slot],
                module_of(slot),
                outcomes[&slot].bucket,
                completion.freq,
                completion.counters.cycles,
            );
        }

        // route the batch head, then coalesce — the oracle's scan over
        // this group's subsequence, verbatim
        let worker = scheduler.choose(g, members, module_of(head), now);
        let mut batch = 0usize;
        let mut scan = cursor;
        while scan < my_order.len() {
            let slot = my_order[scan];
            scan += 1;
            if scheduled[slot] {
                continue;
            }
            if batch > 0 {
                if batch >= max_batch || module_of(slot).key != module_of(head).key {
                    break;
                }
                if let Some(cutoff) = cfg.batch_cutoff {
                    if scheduler.outstanding(worker, stream[slot].arrival) >= cutoff {
                        break;
                    }
                }
            }
            outcomes.insert(
                slot,
                scheduler.commit(worker, module_of(slot), stream[slot].arrival),
            );
            assignment.insert(slot, worker);
            scheduled[slot] = true;
            inflight[worker].push_back(slot);
            lane.dispatch(
                worker,
                Job {
                    request: stream[slot].clone(),
                    module: Arc::clone(module_of(slot)),
                    slot,
                    elide,
                },
            );
            batch += 1;
        }
        batched_requests += (batch - 1) as u64;
    }

    // drain the tail: everything dispatched executes before the lane
    // closes, so each remaining inflight slot's completion is already on
    // its way (or, inline, already stashed)
    for &w in members {
        while let Some(slot) = inflight[w].pop_front() {
            let completion = wait_for(slot, &mut lane, &mut pending);
            completions.insert(slot, completion);
        }
    }

    let snapshot = snapshot_by_name(&scheduler);
    for (slot, completion) in completions {
        slots.push((slot, assignment[&slot], outcomes[&slot], completion));
    }
    ShardResult {
        slots,
        batched_requests,
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::runtime::{PoolConfig, Runtime, ServeConfig};
    use accfg_workloads::{mixed_serving_classes, TrafficConfig};

    fn pool() -> PoolConfig {
        PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ])
    }

    fn stream(requests: usize, seed: u64) -> Vec<TrafficRequest> {
        TrafficConfig {
            classes: mixed_serving_classes(),
            requests,
            mean_gap: 80,
            seed,
        }
        .open_loop_stream()
        .unwrap()
    }

    fn serve(pool: PoolConfig, stream: &[TrafficRequest], cfg: &ServeConfig) -> crate::ServeReport {
        Runtime::new(pool).serve(stream, cfg).unwrap()
    }

    #[test]
    fn parallel_matches_the_oracle_per_request() {
        let stream = stream(250, 21);
        for policy in [
            Policy::Fifo,
            Policy::FifoElide,
            Policy::ConfigAffinity,
            Policy::Cost,
            Policy::Thermal,
        ] {
            let base = ServeConfig {
                policy,
                ..ServeConfig::default()
            };
            let oracle = serve(pool(), &stream, &base);
            for threads in [1, 3] {
                let parallel = serve(
                    pool(),
                    &stream,
                    &ServeConfig {
                        mode: ServeMode::Parallel { threads },
                        ..base.clone()
                    },
                );
                assert_eq!(
                    oracle.metrics,
                    parallel.metrics,
                    "{} x{threads}",
                    policy.label()
                );
                assert_eq!(oracle.latencies, parallel.latencies);
                assert_eq!(oracle.predictions, parallel.predictions);
            }
        }
    }

    #[test]
    fn parallel_matches_the_oracle_with_batching() {
        let stream = stream(300, 22);
        let base = ServeConfig {
            max_batch: 8,
            ..ServeConfig::default()
        };
        let oracle = serve(pool(), &stream, &base);
        let parallel = serve(
            pool(),
            &stream,
            &ServeConfig {
                mode: ServeMode::Parallel { threads: 2 },
                ..base
            },
        );
        assert_eq!(oracle.metrics, parallel.metrics);
        assert_eq!(oracle.latencies, parallel.latencies);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let stream = stream(60, 23);
        let oracle = serve(pool(), &stream, &ServeConfig::default());
        let parallel = serve(
            pool(),
            &stream,
            &ServeConfig {
                mode: ServeMode::Parallel { threads: 0 },
                ..ServeConfig::default()
            },
        );
        assert_eq!(oracle.metrics, parallel.metrics);
    }

    #[test]
    fn duplicate_base_names_fall_back_to_the_oracle() {
        // two groups fielding the same base platform cannot be sharded
        // (their modules share refiner rows); the parallel engine must
        // still serve them correctly — by falling back
        let gemmini = AcceleratorDescriptor::gemmini();
        let pool = PoolConfig {
            groups: vec![
                crate::runtime::PoolGroup {
                    family: "a".into(),
                    members: vec![gemmini.clone(), gemmini.clone()],
                    power_cap: None,
                },
                crate::runtime::PoolGroup {
                    family: "b".into(),
                    members: vec![gemmini.clone(), gemmini],
                    power_cap: None,
                },
            ],
            mem_bytes: 1 << 21,
            fuel: 100_000_000,
        };
        let mut stream = stream(80, 24);
        for (i, request) in stream.iter_mut().enumerate() {
            request.accelerator = if i % 2 == 0 { "a".into() } else { "b".into() };
            request.spec = accfg_workloads::MatmulSpec::gemmini_paper(16).unwrap();
        }
        let oracle = serve(pool.clone(), &stream, &ServeConfig::default());
        let parallel = serve(
            pool,
            &stream,
            &ServeConfig {
                mode: ServeMode::Parallel { threads: 4 },
                ..ServeConfig::default()
            },
        );
        assert_eq!(oracle.metrics, parallel.metrics);
        assert_eq!(oracle.latencies, parallel.latencies);
    }
}
