//! The compiled-module cache: repeated shapes skip the whole
//! IR-build → pass-pipeline → lower path.
//!
//! Serving traffic draws from a small set of shapes, so the expensive part
//! of a dispatch — generating the tiled IR, running the accfg passes,
//! lowering to target instructions, and extracting the launch plan — is
//! done once per distinct `(accelerator, shape, opt level)` and shared
//! (via [`Arc`]) by every subsequent request. Cached programs are compiled
//! against the shape's canonical memory layout, so same-shape requests are
//! byte-identical and their configuration state is maximally reusable
//! across dispatches.

use crate::error::ServeError;
use crate::plan::{DispatchPlan, RegMap};
use accfg::interp::interpret;
use accfg::pipeline::{pipeline, OptLevel};
use accfg_sim::{FreqState, Program, FREQ_STATES};
use accfg_targets::{compile, AcceleratorDescriptor, ConfigStyle};
use accfg_workloads::{matmul_ir, MatmulLayout, MatmulSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// Interpreter fuel for plan extraction (largest served shapes are a few
/// hundred launches).
const PLAN_FUEL: u64 = 50_000_000;

/// The cache key: everything that determines the compiled artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Accelerator (descriptor) name.
    pub accelerator: String,
    /// Problem shape and tiling.
    pub spec: MatmulSpec,
    /// Optimization level the pipeline ran at.
    pub opt: OptLevel,
}

/// Number of warmth buckets the online cost refiner learns per module.
///
/// A dispatch's *warmth* is its predicted write count relative to the
/// module's cold cost: bucket 0 holds fully-resident repeats, the last
/// bucket holds cold (blank-state) dispatches, and the buckets between
/// hold the partially-warm dispatches whose cycles the static anchors can
/// only interpolate. Eight buckets are enough to separate the clusters a
/// serving mix actually produces (cold first dispatch, steady-state
/// repeat, cross-shape partial overlap) without diluting any bucket's
/// sample stream.
pub const WARMTH_BUCKETS: usize = 8;

/// Binary exponent of the EWMA smoothing factor: each observation moves
/// the estimate by `1/2^EWMA_ALPHA_SHIFT` of the residual (α = 1/8).
const EWMA_ALPHA_SHIFT: u32 = 3;

/// Fixed-point fractional bits of the stored EWMA estimates. Integer
/// fixed-point keeps the refiner bit-deterministic: the same request
/// stream always produces the same estimates, on any host.
const EWMA_FRAC_BITS: u32 = 8;

/// Rows the refiner learns per `(module, platform)`: one mode-agnostic
/// row (index [`COST_ROW_AGNOSTIC`]) plus one row per DVFS frequency
/// state. Every observation lands in the agnostic row *and* its mode's
/// keyed row, so the agnostic row always reproduces the un-keyed
/// refiner's estimates bit-exactly and the keyed rows sharpen on top.
pub const COST_ROWS: usize = FREQ_STATES + 1;

/// Index of the mode-agnostic row in a [`CostRow`].
pub const COST_ROW_AGNOSTIC: usize = 0;

/// One `(module, platform)`'s learned fixed-point EWMA state: the
/// mode-agnostic warmth buckets first, then one keyed bucket set per
/// frequency state (`1 + FreqState::index()`).
pub type CostRow = [[i64; WARMTH_BUCKETS]; COST_ROWS];

/// Row index of frequency state `mode` within a [`CostRow`].
fn mode_row(mode: FreqState) -> usize {
    1 + mode.index()
}

/// Predicted execution cycles of one dispatch as a function of the
/// configuration writes it must emit.
///
/// The anchors are *analytic*, derived at build time from the descriptor's
/// host instruction costs, launch overhead, and peak compute rate — a
/// serial-sum estimate that costs nothing to produce (earlier revisions
/// ran the dispatch program twice on a scratch machine per module build,
/// two full simulations the serve path paid before the first request).
/// The scheduler interpolates linearly between the cold and warm anchors
/// on the write count — exactly the quantity affinity scoring already
/// computes — so queue depth can be held in *estimated outstanding
/// cycles* instead of dispatch counts.
///
/// Being analytic, the anchors drift where timing has microstructure the
/// serial sum ignores — on concurrently-configured targets, writes issued
/// while the accelerator is busy hide under its busy window, so the
/// estimate overshoots by the hidden overlap. The [`CostRefiner`] closes
/// that gap online from the measured cycles of retired dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Writes a dispatch onto a blank register file emits.
    pub cold_writes: u64,
    /// Measured cycles of that cold dispatch.
    pub cold_cycles: u64,
    /// Writes a steady-state same-module repeat emits.
    pub warm_writes: u64,
    /// Measured cycles of that warm repeat.
    pub warm_cycles: u64,
}

impl CostModel {
    /// Predicted cycles for a dispatch that must emit `writes`
    /// configuration writes.
    pub fn predict(&self, writes: u64) -> u64 {
        if self.cold_writes <= self.warm_writes || self.cold_cycles <= self.warm_cycles {
            // degenerate anchors (e.g. a plan with no elidable state):
            // every dispatch costs the larger measurement
            return self.cold_cycles.max(self.warm_cycles);
        }
        let span_w = self.cold_writes - self.warm_writes;
        let span_c = self.cold_cycles - self.warm_cycles;
        if writes >= self.cold_writes {
            self.cold_cycles
        } else if writes >= self.warm_writes {
            self.warm_cycles + (writes - self.warm_writes) * span_c / span_w
        } else {
            // fully-resident dispatches (fewer writes than even the warm
            // repeat) extrapolate below the warm anchor
            self.warm_cycles
                .saturating_sub((self.warm_writes - writes) * span_c / span_w)
        }
    }

    /// Maps a dispatch's predicted write count to its warmth bucket:
    /// `0` for fully-resident repeats up to `WARMTH_BUCKETS - 1` for cold
    /// (blank-state) dispatches. Write counts above the cold anchor clamp
    /// into the cold bucket.
    pub fn bucket(&self, writes: u64) -> usize {
        if self.cold_writes == 0 {
            return WARMTH_BUCKETS - 1;
        }
        (writes.min(self.cold_writes) * (WARMTH_BUCKETS as u64 - 1) / self.cold_writes) as usize
    }

    /// Builds the analytic anchors for `plan` on `desc`: configuration
    /// writes cost their host instruction sequence, every launch pays its
    /// issue cost plus the accelerator's pipeline overhead, and compute is
    /// charged at the MAC rate of the platform's *isolated from-cold*
    /// operating point — the descriptor's [`TimingModel`] parameters, at
    /// the one state an anchor can honestly assume. A deliberate *serial*
    /// sum over that point: it ignores config/compute overlap, bandwidth
    /// contention under load, and the DVFS heat a busy worker accumulates
    /// — exactly the load-dependent drift the online refiner measures
    /// away. Under the identity timing model this reduces to the peak-rate
    /// estimate bit-exactly.
    ///
    /// [`TimingModel`]: accfg_sim::TimingModel
    pub fn estimate(desc: &AcceleratorDescriptor, spec: &MatmulSpec, plan: &DispatchPlan) -> Self {
        let host = &desc.host;
        let accel = &desc.accel;
        let per_write = match plan.style {
            // materialize the value, then write the register
            ConfigStyle::Csr => host.li + host.csr_write,
            // materialize both halves, then issue the pair command
            ConfigStyle::RoccPairs { .. } => 2 * host.li + host.rocc,
        };
        let per_launch = accel.launch_overhead
            + match plan.style {
                ConfigStyle::Csr => host.launch,
                // the launch-semantic RoCC command carries a zero pair
                ConfigStyle::RoccPairs { .. } => 2 * host.li + host.rocc,
            };
        let launches = plan.launches.len() as u64;
        let anchor_rate = desc.timing.anchor_macs_per_cycle(accel.macs_per_cycle);
        let compute = ((spec.m * spec.n * spec.k) as u64) / anchor_rate;
        let base = launches * per_launch + compute + host.poll;
        let mut warm_state = RegMap::new();
        plan.apply_writes(&mut warm_state);
        let warm_writes = plan.writes_against(&warm_state);
        Self {
            cold_writes: plan.cold_writes,
            cold_cycles: plan.cold_writes * per_write + base,
            warm_writes,
            warm_cycles: warm_writes * per_write + base,
        }
    }
}

/// Online refinement of [`CostModel`] predictions: an exponentially
/// weighted moving average of *measured* dispatch cycles per
/// `(module, platform, warmth bucket)`, updated as the serve loop retires
/// completed dispatches.
///
/// The static anchors are estimated analytically at build time and
/// interpolated linearly, which is exact at the cold and
/// steady-state-warm extremes but drifts for partially-warm dispatches.
/// The refiner learns each bucket's actual cycle cost from the stream
/// itself; once a bucket has an observation, [`CostRefiner::predict`]
/// quotes the EWMA instead of the interpolation, and the scheduler's
/// outstanding-cycle estimates — and with them the affinity slack
/// horizon, the batch cutoff, and the `cost` policy's completion
/// estimates — sharpen as the run warms up.
///
/// Heterogeneous pools run one module on *differently provisioned*
/// platform variants (same configuration interface, different geometry
/// and speed), so observations are kept per platform: `platform` is the
/// pool-assigned index of the worker's platform variant
/// ([`LoadTracker::platform`]), and a measurement taken on one variant
/// never contaminates another's estimates. Uniform pools only ever use
/// one platform index per module, which reduces to the old behaviour
/// exactly.
///
/// Under a DVFS timing model one warmth bucket still mixes launches that
/// ran cold, warm, and boosted — three different compute rates — so the
/// agnostic EWMA tracks a drifting mixture mean. Observations therefore
/// also land in a *frequency-keyed* row per [`FreqState`]
/// ([`CostRefiner::observe`] takes the mode the launch actually ran at):
/// [`CostRefiner::predict_for_mode`] quotes the keyed row when it has
/// been observed, falls back to the mode-agnostic row while the keyed
/// row is cold, and to the anchors before any observation at all. The
/// mode-agnostic row is updated exactly as before, so every consumer of
/// [`CostRefiner::predict`] is bit-identical with or without the keyed
/// rows.
///
/// Estimates are integer fixed-point, so refinement is a pure function of
/// the request stream: two serves of the same stream produce bit-identical
/// estimates, predictions, and therefore schedules.
///
/// [`LoadTracker::platform`]: crate::scheduler::LoadTracker::platform
#[derive(Debug, Clone, Default)]
pub struct CostRefiner {
    /// Per-module, per-platform fixed-point EWMA cycles (outer index:
    /// platform; inner: agnostic + per-mode rows), `UNSEEN` where no
    /// dispatch of that warmth has retired yet.
    ewma: HashMap<CacheKey, Vec<CostRow>>,
}

/// Sentinel for a bucket with no observations (cycles are nonnegative).
const UNSEEN: i64 = -1;

impl CostRefiner {
    /// A refiner with no observations: every prediction falls back to the
    /// static anchors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one measured dispatch (`cycles`, landing in `bucket`, run on
    /// platform variant `platform` in frequency state `mode`) into the
    /// module's estimates: the mode-agnostic row first (exactly the
    /// un-keyed refiner's update), then `mode`'s keyed row. The first
    /// observation of a slot seeds the EWMA exactly; later ones move it
    /// by α = 1/8 of the residual.
    pub fn observe(
        &mut self,
        key: &CacheKey,
        platform: usize,
        bucket: usize,
        mode: FreqState,
        cycles: u64,
    ) {
        let platforms = self.ewma.entry(key.clone()).or_default();
        if platforms.len() <= platform {
            platforms.resize(platform + 1, [[UNSEEN; WARMTH_BUCKETS]; COST_ROWS]);
        }
        let bucket = bucket.min(WARMTH_BUCKETS - 1);
        let observed = (cycles as i64) << EWMA_FRAC_BITS;
        for row in [COST_ROW_AGNOSTIC, mode_row(mode)] {
            let slot = &mut platforms[platform][row][bucket];
            if *slot == UNSEEN {
                *slot = observed;
            } else {
                *slot += (observed - *slot) >> EWMA_ALPHA_SHIFT;
            }
        }
    }

    /// The mode-agnostic refined estimate for `bucket` of the module keyed
    /// by `key` on `platform`, or `None` while that bucket has no
    /// observations there.
    pub fn refined(&self, key: &CacheKey, platform: usize, bucket: usize) -> Option<u64> {
        self.row_slot(key, platform, COST_ROW_AGNOSTIC, bucket)
    }

    /// The frequency-keyed refined estimate for `bucket` at `mode`,
    /// falling back to the mode-agnostic row while the keyed slot is
    /// cold, or `None` when neither has an observation.
    pub fn refined_for_mode(
        &self,
        key: &CacheKey,
        platform: usize,
        bucket: usize,
        mode: FreqState,
    ) -> Option<u64> {
        self.row_slot(key, platform, mode_row(mode), bucket)
            .or_else(|| self.refined(key, platform, bucket))
    }

    fn row_slot(&self, key: &CacheKey, platform: usize, row: usize, bucket: usize) -> Option<u64> {
        let slot = *self.ewma.get(key)?.get(platform)?.get(row)?.get(bucket)?;
        (slot != UNSEEN).then_some((slot >> EWMA_FRAC_BITS) as u64)
    }

    /// Predicted cycles for a dispatch of the module keyed by `key`
    /// emitting `writes` configuration writes on `platform`: the warmth
    /// bucket's mode-agnostic EWMA when it has been observed there, the
    /// interpolation of `anchors` (the platform's analytic cost model)
    /// otherwise.
    pub fn predict(
        &self,
        key: &CacheKey,
        platform: usize,
        anchors: &CostModel,
        writes: u64,
    ) -> u64 {
        self.refined(key, platform, anchors.bucket(writes))
            .unwrap_or_else(|| anchors.predict(writes))
    }

    /// Predicted cycles for the same dispatch assuming it launches in
    /// frequency state `mode`: keyed row first, mode-agnostic row while
    /// the keyed row is cold, anchors before any observation at all.
    pub fn predict_for_mode(
        &self,
        key: &CacheKey,
        platform: usize,
        anchors: &CostModel,
        writes: u64,
        mode: FreqState,
    ) -> u64 {
        self.refined_for_mode(key, platform, anchors.bucket(writes), mode)
            .unwrap_or_else(|| anchors.predict(writes))
    }

    /// Number of modules with at least one observed bucket.
    pub fn modules_observed(&self) -> usize {
        self.ewma.len()
    }

    /// The refiner's learned state as `(module, platform, rows)` entries —
    /// raw fixed-point EWMA values (agnostic + per-mode rows), one entry
    /// per platform that has at least one observed slot. Entries come out
    /// in arbitrary (hash-map) order; the persistence layer sorts them by
    /// encoded key, which is what makes identical runs write
    /// byte-identical store files.
    pub fn snapshot(&self) -> Vec<(CacheKey, usize, CostRow)> {
        self.ewma
            .iter()
            .flat_map(|(key, platforms)| {
                platforms
                    .iter()
                    .enumerate()
                    .filter(|(_, rows)| {
                        rows.iter()
                            .any(|buckets| buckets.iter().any(|&slot| slot != UNSEEN))
                    })
                    .map(move |(platform, rows)| (key.clone(), platform, *rows))
            })
            .collect()
    }

    /// Restores one snapshot entry: installs `rows` (raw fixed-point EWMA
    /// values, `-1` for unseen) as the module's estimates on `platform`,
    /// replacing whatever was there. Restoring a snapshot and then taking
    /// one yields the identical entries back — the round-trip identity the
    /// persistence tests pin.
    pub fn seed(&mut self, key: CacheKey, platform: usize, rows: CostRow) {
        let platforms = self.ewma.entry(key).or_default();
        if platforms.len() <= platform {
            platforms.resize(platform + 1, [[UNSEEN; WARMTH_BUCKETS]; COST_ROWS]);
        }
        platforms[platform] = rows;
    }
}

/// One fully compiled, dispatch-ready module.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModule {
    /// The key this module was built for.
    pub key: CacheKey,
    /// Canonical memory placement (every same-shape request reuses it).
    pub layout: MatmulLayout,
    /// The lowered target program, with the canonical addresses bound —
    /// what a cache-less system would execute per request.
    pub program: Program,
    /// The launch-level plan the dispatcher diffs against resident state.
    pub plan: DispatchPlan,
    /// Cold/warm cycle measurements for queue-depth prediction.
    pub cost: CostModel,
    /// Field writes the optimized IR performs (the compiler's static count,
    /// for comparison against the dispatcher's dynamic count).
    pub ir_setup_writes: usize,
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a new module.
    pub misses: u64,
}

impl CacheStats {
    /// Hits over total lookups (1.0 for an all-hit run; 0.0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The module cache itself.
#[derive(Debug, Default)]
pub struct ModuleCache {
    entries: HashMap<CacheKey, Arc<CompiledModule>>,
    /// Lookup statistics.
    pub stats: CacheStats,
}

impl ModuleCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct compiled modules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the compiled module for `(desc, spec, opt)`, building it on
    /// first use.
    ///
    /// # Errors
    /// Propagates pipeline, lowering, and plan-extraction failures.
    pub fn get_or_build(
        &mut self,
        desc: &AcceleratorDescriptor,
        spec: MatmulSpec,
        opt: OptLevel,
    ) -> Result<Arc<CompiledModule>, ServeError> {
        let key = CacheKey {
            accelerator: desc.name.clone(),
            spec,
            opt,
        };
        if let Some(entry) = self.entries.get(&key) {
            self.stats.hits += 1;
            return Ok(Arc::clone(entry));
        }
        self.stats.misses += 1;
        let entry = Arc::new(build_module(desc, spec, opt)?);
        self.entries.insert(key, Arc::clone(&entry));
        Ok(entry)
    }

    /// Every cached module, in arbitrary (hash-map) order; the persistence
    /// layer sorts by encoded key before writing.
    pub fn snapshot(&self) -> Vec<Arc<CompiledModule>> {
        self.entries.values().map(Arc::clone).collect()
    }

    /// Installs a previously compiled module without touching the hit/miss
    /// counters. Returns `false` (and keeps the resident entry) when the
    /// key is already cached — a module this process built fresh wins over
    /// a restored one.
    pub fn restore(&mut self, module: CompiledModule) -> bool {
        match self.entries.entry(module.key.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Arc::new(module));
                true
            }
        }
    }
}

/// Compiles one module end-to-end: IR generation, accfg passes, target
/// lowering, and plan extraction.
///
/// # Errors
/// See [`ServeError`].
pub fn build_module(
    desc: &AcceleratorDescriptor,
    spec: MatmulSpec,
    opt: OptLevel,
) -> Result<CompiledModule, ServeError> {
    let mut module = matmul_ir(desc, &spec);
    let mut pm = pipeline(opt, desc.overlap_filter());
    if cfg!(debug_assertions) || cfg!(feature = "validate") {
        // translation-validate every pass: a rewrite that changes any
        // launch's reaching configuration state aborts the build instead
        // of serving a silently miscompiled module
        pm.validate_each(accfg_analyze::pass_validator());
    }
    pm.run(&mut module)
        .map_err(|e| ServeError::Pipeline(e.to_string()))?;
    let layout = MatmulLayout::at(0x1000, &spec);
    let args = [layout.a_addr, layout.b_addr, layout.c_addr];
    let program = compile(&module, "matmul", desc, &args)?;
    let trace = interpret(&module, "matmul", &args, PLAN_FUEL)?;
    let plan = DispatchPlan::from_trace(&trace, desc)?;
    let cost = CostModel::estimate(desc, &spec, &plan);
    Ok(CompiledModule {
        key: CacheKey {
            accelerator: desc.name.clone(),
            spec,
            opt,
        },
        layout,
        program,
        plan,
        cost,
        ir_setup_writes: trace.setup_writes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        let mut cache = ModuleCache::new();
        let a = cache.get_or_build(&desc, spec, OptLevel::All).unwrap();
        let b = cache.get_or_build(&desc, spec, OptLevel::All).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats, CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_modules() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        let mut cache = ModuleCache::new();
        cache.get_or_build(&desc, spec, OptLevel::All).unwrap();
        cache.get_or_build(&desc, spec, OptLevel::Base).unwrap();
        let other = MatmulSpec::opengemm_paper(24).unwrap();
        cache.get_or_build(&desc, other, OptLevel::All).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats.misses, 3);
        assert!((cache.stats.hit_rate() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn plan_matches_program_launch_count() {
        for (desc, spec) in [
            (
                AcceleratorDescriptor::opengemm(),
                MatmulSpec::opengemm_paper(16).unwrap(),
            ),
            (
                AcceleratorDescriptor::gemmini(),
                MatmulSpec::gemmini_paper(32).unwrap(),
            ),
        ] {
            let module = build_module(&desc, spec, OptLevel::All).unwrap();
            assert_eq!(module.plan.launches.len() as i64, spec.invocations());
            assert!(module.plan.cold_writes > 0);
            assert!(!module.program.is_empty());
        }
    }

    #[test]
    fn cost_model_anchors_are_estimated_and_ordered() {
        for (desc, spec) in [
            (
                AcceleratorDescriptor::opengemm(),
                MatmulSpec::opengemm_paper(16).unwrap(),
            ),
            (
                AcceleratorDescriptor::gemmini(),
                MatmulSpec::gemmini_paper(32).unwrap(),
            ),
        ] {
            let module = build_module(&desc, spec, OptLevel::All).unwrap();
            let cost = module.cost;
            assert_eq!(cost.cold_writes, module.plan.cold_writes);
            assert!(cost.cold_cycles > 0);
            assert!(cost.warm_cycles > 0);
            // eliding resident state can only shrink a dispatch
            assert!(cost.warm_writes <= cost.cold_writes);
            assert!(cost.warm_cycles <= cost.cold_cycles, "{cost:?}");
            // the steady-state warm repeat of a tiled module still pays
            // its per-tile writes, launches, and compute
            assert!(cost.warm_cycles >= module.plan.launches.len() as u64);
        }
    }

    #[test]
    fn analytic_anchors_track_the_write_and_launch_structure() {
        // the estimate must scale with what it models: more launches and
        // more writes cost more, and the warm anchor differs from cold by
        // exactly the elided writes' host cost
        let desc = AcceleratorDescriptor::opengemm();
        let small = build_module(
            &desc,
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let large = build_module(
            &desc,
            MatmulSpec::opengemm_paper(32).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        assert!(large.cost.cold_cycles > small.cost.cold_cycles);
        let span_w = small.cost.cold_writes - small.cost.warm_writes;
        let span_c = small.cost.cold_cycles - small.cost.warm_cycles;
        assert_eq!(span_c % span_w, 0, "cold-warm gap is per-write linear");
    }

    #[test]
    fn cost_prediction_interpolates_between_anchors() {
        let cost = CostModel {
            cold_writes: 100,
            cold_cycles: 1000,
            warm_writes: 20,
            warm_cycles: 200,
        };
        assert_eq!(cost.predict(100), 1000);
        assert_eq!(cost.predict(200), 1000); // clamped above the cold anchor
        assert_eq!(cost.predict(20), 200);
        assert_eq!(cost.predict(60), 600);
        // fully-resident dispatches extrapolate below the warm anchor
        assert!(cost.predict(0) < 200);
        // prediction is monotone in the write count
        let preds: Vec<u64> = (0..=120).map(|w| cost.predict(w)).collect();
        assert!(preds.windows(2).all(|p| p[0] <= p[1]));
        // degenerate anchors never divide by zero
        let flat = CostModel {
            cold_writes: 5,
            cold_cycles: 50,
            warm_writes: 5,
            warm_cycles: 50,
        };
        assert_eq!(flat.predict(0), 50);
        assert_eq!(flat.predict(99), 50);
    }

    #[test]
    fn warmth_buckets_span_the_write_range() {
        let cost = CostModel {
            cold_writes: 100,
            cold_cycles: 1000,
            warm_writes: 20,
            warm_cycles: 200,
        };
        assert_eq!(cost.bucket(0), 0);
        assert_eq!(cost.bucket(100), WARMTH_BUCKETS - 1);
        // above-cold write counts clamp into the cold bucket
        assert_eq!(cost.bucket(500), WARMTH_BUCKETS - 1);
        // buckets are monotone in the write count
        let buckets: Vec<usize> = (0..=100).map(|w| cost.bucket(w)).collect();
        assert!(buckets.windows(2).all(|b| b[0] <= b[1]));
        // a degenerate all-launch plan has only the cold bucket
        let flat = CostModel {
            cold_writes: 0,
            cold_cycles: 50,
            warm_writes: 0,
            warm_cycles: 50,
        };
        assert_eq!(flat.bucket(0), WARMTH_BUCKETS - 1);
    }

    #[test]
    fn refiner_seeds_then_tracks_observations() {
        let module = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let mut refiner = CostRefiner::new();
        let anchors = module.cost;
        // unseen: falls back to the static anchors
        assert_eq!(
            refiner.predict(&module.key, 0, &anchors, anchors.cold_writes),
            anchors.cold_cycles
        );
        assert_eq!(refiner.modules_observed(), 0);
        // the first observation seeds the bucket exactly
        let cold_bucket = anchors.bucket(anchors.cold_writes);
        refiner.observe(&module.key, 0, cold_bucket, FreqState::Cold, 400);
        assert_eq!(refiner.refined(&module.key, 0, cold_bucket), Some(400));
        assert_eq!(
            refiner.predict(&module.key, 0, &anchors, anchors.cold_writes),
            400
        );
        assert_eq!(refiner.modules_observed(), 1);
        // repeated identical observations keep the estimate fixed
        refiner.observe(&module.key, 0, cold_bucket, FreqState::Cold, 400);
        assert_eq!(refiner.refined(&module.key, 0, cold_bucket), Some(400));
        // a shifted observation moves the estimate toward it by α = 1/8
        refiner.observe(&module.key, 0, cold_bucket, FreqState::Cold, 480);
        assert_eq!(refiner.refined(&module.key, 0, cold_bucket), Some(410));
        // other buckets are untouched
        assert_eq!(refiner.refined(&module.key, 0, 0), None);
        assert_eq!(
            refiner.predict(&module.key, 0, &anchors, 0),
            anchors.predict(0)
        );
    }

    #[test]
    fn refiner_keeps_platforms_independent() {
        // a heterogeneous pool runs one module on differently provisioned
        // variants: an observation on one platform must not leak into
        // another's estimates
        let module = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let anchors = module.cost;
        let mut refiner = CostRefiner::new();
        refiner.observe(&module.key, 1, 0, FreqState::Cold, 777);
        assert_eq!(refiner.refined(&module.key, 1, 0), Some(777));
        assert_eq!(refiner.refined(&module.key, 0, 0), None);
        assert_eq!(
            refiner.predict(&module.key, 0, &anchors, 0),
            anchors.predict(0)
        );
        assert_eq!(refiner.predict(&module.key, 1, &anchors, 0), 777);
        // one module, two platforms: still one observed module
        assert_eq!(refiner.modules_observed(), 1);
    }

    #[test]
    fn refiner_converges_to_a_steady_observation() {
        let module = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let mut refiner = CostRefiner::new();
        refiner.observe(&module.key, 0, 0, FreqState::Cold, 1000);
        for _ in 0..64 {
            refiner.observe(&module.key, 0, 0, FreqState::Cold, 200);
        }
        let estimate = refiner.refined(&module.key, 0, 0).unwrap();
        assert!(
            estimate.abs_diff(200) <= 2,
            "estimate {estimate} far from 200"
        );
    }

    #[test]
    fn frequency_keyed_rows_separate_the_modes() {
        let module = build_module(
            &AcceleratorDescriptor::opengemm(),
            MatmulSpec::opengemm_paper(16).unwrap(),
            OptLevel::All,
        )
        .unwrap();
        let anchors = module.cost;
        let mut refiner = CostRefiner::new();
        // a bucket fed a mix of boosted (fast) and cold (slow) launches:
        // the agnostic row tracks the mixture, the keyed rows stay pure
        refiner.observe(&module.key, 0, 0, FreqState::Boost, 100);
        refiner.observe(&module.key, 0, 0, FreqState::Cold, 900);
        assert_eq!(
            refiner.refined_for_mode(&module.key, 0, 0, FreqState::Boost),
            Some(100)
        );
        assert_eq!(
            refiner.refined_for_mode(&module.key, 0, 0, FreqState::Cold),
            Some(900)
        );
        // the agnostic row saw both and drifted off either cluster
        let mixed = refiner.refined(&module.key, 0, 0).unwrap();
        assert!(mixed > 100 && mixed < 900, "agnostic estimate {mixed}");
        // an unobserved mode falls back to the agnostic row…
        assert_eq!(
            refiner.refined_for_mode(&module.key, 0, 0, FreqState::Warm),
            Some(mixed)
        );
        assert_eq!(
            refiner.predict_for_mode(&module.key, 0, &anchors, 0, FreqState::Warm),
            mixed
        );
        // …and an unobserved bucket falls all the way back to the anchors
        assert_eq!(
            refiner.predict_for_mode(
                &module.key,
                0,
                &anchors,
                anchors.cold_writes,
                FreqState::Boost
            ),
            anchors.cold_cycles
        );
        // keyed observations round-trip through snapshot/seed
        let rows = refiner.snapshot();
        assert_eq!(rows.len(), 1);
        let mut restored = CostRefiner::new();
        for (key, platform, row) in rows {
            restored.seed(key, platform, row);
        }
        assert_eq!(
            restored.refined_for_mode(&module.key, 0, 0, FreqState::Boost),
            Some(100)
        );
        assert_eq!(restored.refined(&module.key, 0, 0), Some(mixed));
    }

    #[test]
    fn plan_register_files_are_complete() {
        // every launch's register file carries the full tile descriptor,
        // whatever the opt level did to the instruction stream
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        for opt in [OptLevel::Base, OptLevel::All] {
            let module = build_module(&desc, spec, opt).unwrap();
            for launch in &module.plan.launches {
                assert!(launch.registers.len() >= 10, "{:?}", launch.registers);
            }
        }
    }
}
