//! The compiled-module cache: repeated shapes skip the whole
//! IR-build → pass-pipeline → lower path.
//!
//! Serving traffic draws from a small set of shapes, so the expensive part
//! of a dispatch — generating the tiled IR, running the accfg passes,
//! lowering to target instructions, and extracting the launch plan — is
//! done once per distinct `(accelerator, shape, opt level)` and shared
//! (via [`Arc`]) by every subsequent request. Cached programs are compiled
//! against the shape's canonical memory layout, so same-shape requests are
//! byte-identical and their configuration state is maximally reusable
//! across dispatches.

use crate::error::ServeError;
use crate::plan::DispatchPlan;
use accfg::interp::interpret;
use accfg::pipeline::{pipeline, OptLevel};
use accfg_sim::Program;
use accfg_targets::{compile, AcceleratorDescriptor};
use accfg_workloads::{matmul_ir, MatmulLayout, MatmulSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// Interpreter fuel for plan extraction (largest served shapes are a few
/// hundred launches).
const PLAN_FUEL: u64 = 50_000_000;

/// The cache key: everything that determines the compiled artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Accelerator (descriptor) name.
    pub accelerator: String,
    /// Problem shape and tiling.
    pub spec: MatmulSpec,
    /// Optimization level the pipeline ran at.
    pub opt: OptLevel,
}

/// One fully compiled, dispatch-ready module.
#[derive(Debug)]
pub struct CompiledModule {
    /// The key this module was built for.
    pub key: CacheKey,
    /// Canonical memory placement (every same-shape request reuses it).
    pub layout: MatmulLayout,
    /// The lowered target program, with the canonical addresses bound —
    /// what a cache-less system would execute per request.
    pub program: Program,
    /// The launch-level plan the dispatcher diffs against resident state.
    pub plan: DispatchPlan,
    /// Field writes the optimized IR performs (the compiler's static count,
    /// for comparison against the dispatcher's dynamic count).
    pub ir_setup_writes: usize,
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a new module.
    pub misses: u64,
}

impl CacheStats {
    /// Hits over total lookups (1.0 for an all-hit run; 0.0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The module cache itself.
#[derive(Debug, Default)]
pub struct ModuleCache {
    entries: HashMap<CacheKey, Arc<CompiledModule>>,
    /// Lookup statistics.
    pub stats: CacheStats,
}

impl ModuleCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct compiled modules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the compiled module for `(desc, spec, opt)`, building it on
    /// first use.
    ///
    /// # Errors
    /// Propagates pipeline, lowering, and plan-extraction failures.
    pub fn get_or_build(
        &mut self,
        desc: &AcceleratorDescriptor,
        spec: MatmulSpec,
        opt: OptLevel,
    ) -> Result<Arc<CompiledModule>, ServeError> {
        let key = CacheKey {
            accelerator: desc.name.clone(),
            spec,
            opt,
        };
        if let Some(entry) = self.entries.get(&key) {
            self.stats.hits += 1;
            return Ok(Arc::clone(entry));
        }
        self.stats.misses += 1;
        let entry = Arc::new(build_module(desc, spec, opt)?);
        self.entries.insert(key, Arc::clone(&entry));
        Ok(entry)
    }
}

/// Compiles one module end-to-end: IR generation, accfg passes, target
/// lowering, and plan extraction.
///
/// # Errors
/// See [`ServeError`].
pub fn build_module(
    desc: &AcceleratorDescriptor,
    spec: MatmulSpec,
    opt: OptLevel,
) -> Result<CompiledModule, ServeError> {
    let mut module = matmul_ir(desc, &spec);
    pipeline(opt, desc.overlap_filter())
        .run(&mut module)
        .map_err(|e| ServeError::Pipeline(e.to_string()))?;
    let layout = MatmulLayout::at(0x1000, &spec);
    let args = [layout.a_addr, layout.b_addr, layout.c_addr];
    let program = compile(&module, "matmul", desc, &args)?;
    let trace = interpret(&module, "matmul", &args, PLAN_FUEL)?;
    let plan = DispatchPlan::from_trace(&trace, desc)?;
    Ok(CompiledModule {
        key: CacheKey {
            accelerator: desc.name.clone(),
            spec,
            opt,
        },
        layout,
        program,
        plan,
        ir_setup_writes: trace.setup_writes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        let mut cache = ModuleCache::new();
        let a = cache.get_or_build(&desc, spec, OptLevel::All).unwrap();
        let b = cache.get_or_build(&desc, spec, OptLevel::All).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats, CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_modules() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        let mut cache = ModuleCache::new();
        cache.get_or_build(&desc, spec, OptLevel::All).unwrap();
        cache.get_or_build(&desc, spec, OptLevel::Base).unwrap();
        let other = MatmulSpec::opengemm_paper(24).unwrap();
        cache.get_or_build(&desc, other, OptLevel::All).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats.misses, 3);
        assert!((cache.stats.hit_rate() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn plan_matches_program_launch_count() {
        for (desc, spec) in [
            (
                AcceleratorDescriptor::opengemm(),
                MatmulSpec::opengemm_paper(16).unwrap(),
            ),
            (
                AcceleratorDescriptor::gemmini(),
                MatmulSpec::gemmini_paper(32).unwrap(),
            ),
        ] {
            let module = build_module(&desc, spec, OptLevel::All).unwrap();
            assert_eq!(module.plan.launches.len() as i64, spec.invocations());
            assert!(module.plan.cold_writes > 0);
            assert!(!module.program.is_empty());
        }
    }

    #[test]
    fn plan_register_files_are_complete() {
        // every launch's register file carries the full tile descriptor,
        // whatever the opt level did to the instruction stream
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        for opt in [OptLevel::Base, OptLevel::All] {
            let module = build_module(&desc, spec, opt).unwrap();
            for launch in &module.plan.launches {
                assert!(launch.registers.len() >= 10, "{:?}", launch.registers);
            }
        }
    }
}
