//! The compiled-module cache: repeated shapes skip the whole
//! IR-build → pass-pipeline → lower path.
//!
//! Serving traffic draws from a small set of shapes, so the expensive part
//! of a dispatch — generating the tiled IR, running the accfg passes,
//! lowering to target instructions, and extracting the launch plan — is
//! done once per distinct `(accelerator, shape, opt level)` and shared
//! (via [`Arc`]) by every subsequent request. Cached programs are compiled
//! against the shape's canonical memory layout, so same-shape requests are
//! byte-identical and their configuration state is maximally reusable
//! across dispatches.

use crate::error::ServeError;
use crate::plan::{DispatchPlan, RegMap};
use accfg::interp::interpret;
use accfg::pipeline::{pipeline, OptLevel};
use accfg_sim::{AccelSim, Machine, Program};
use accfg_targets::{compile, AcceleratorDescriptor};
use accfg_workloads::{matmul_ir, MatmulLayout, MatmulSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// Interpreter fuel for plan extraction (largest served shapes are a few
/// hundred launches).
const PLAN_FUEL: u64 = 50_000_000;

/// The cache key: everything that determines the compiled artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Accelerator (descriptor) name.
    pub accelerator: String,
    /// Problem shape and tiling.
    pub spec: MatmulSpec,
    /// Optimization level the pipeline ran at.
    pub opt: OptLevel,
}

/// Predicted execution cycles of one dispatch as a function of the
/// configuration writes it must emit.
///
/// Built by running the module's dispatch program twice on a scratch
/// machine at compile time: once against a blank register file (the cold
/// cost) and once against the plan's own final state (the steady-state
/// warm repeat). The scheduler interpolates linearly between the two
/// anchors on the write count — exactly the quantity affinity scoring
/// already computes — so queue depth can be held in *estimated
/// outstanding cycles* instead of dispatch counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Writes a dispatch onto a blank register file emits.
    pub cold_writes: u64,
    /// Measured cycles of that cold dispatch.
    pub cold_cycles: u64,
    /// Writes a steady-state same-module repeat emits.
    pub warm_writes: u64,
    /// Measured cycles of that warm repeat.
    pub warm_cycles: u64,
}

impl CostModel {
    /// Predicted cycles for a dispatch that must emit `writes`
    /// configuration writes.
    pub fn predict(&self, writes: u64) -> u64 {
        if self.cold_writes <= self.warm_writes || self.cold_cycles <= self.warm_cycles {
            // degenerate anchors (e.g. a plan with no elidable state):
            // every dispatch costs the larger measurement
            return self.cold_cycles.max(self.warm_cycles);
        }
        let span_w = self.cold_writes - self.warm_writes;
        let span_c = self.cold_cycles - self.warm_cycles;
        if writes >= self.cold_writes {
            self.cold_cycles
        } else if writes >= self.warm_writes {
            self.warm_cycles + (writes - self.warm_writes) * span_c / span_w
        } else {
            // fully-resident dispatches (fewer writes than even the warm
            // repeat) extrapolate below the warm anchor
            self.warm_cycles
                .saturating_sub((self.warm_writes - writes) * span_c / span_w)
        }
    }
}

/// One fully compiled, dispatch-ready module.
#[derive(Debug)]
pub struct CompiledModule {
    /// The key this module was built for.
    pub key: CacheKey,
    /// Canonical memory placement (every same-shape request reuses it).
    pub layout: MatmulLayout,
    /// The lowered target program, with the canonical addresses bound —
    /// what a cache-less system would execute per request.
    pub program: Program,
    /// The launch-level plan the dispatcher diffs against resident state.
    pub plan: DispatchPlan,
    /// Cold/warm cycle measurements for queue-depth prediction.
    pub cost: CostModel,
    /// Field writes the optimized IR performs (the compiler's static count,
    /// for comparison against the dispatcher's dynamic count).
    pub ir_setup_writes: usize,
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled a new module.
    pub misses: u64,
}

impl CacheStats {
    /// Hits over total lookups (1.0 for an all-hit run; 0.0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The module cache itself.
#[derive(Debug, Default)]
pub struct ModuleCache {
    entries: HashMap<CacheKey, Arc<CompiledModule>>,
    /// Lookup statistics.
    pub stats: CacheStats,
}

impl ModuleCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct compiled modules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the compiled module for `(desc, spec, opt)`, building it on
    /// first use.
    ///
    /// # Errors
    /// Propagates pipeline, lowering, and plan-extraction failures.
    pub fn get_or_build(
        &mut self,
        desc: &AcceleratorDescriptor,
        spec: MatmulSpec,
        opt: OptLevel,
    ) -> Result<Arc<CompiledModule>, ServeError> {
        let key = CacheKey {
            accelerator: desc.name.clone(),
            spec,
            opt,
        };
        if let Some(entry) = self.entries.get(&key) {
            self.stats.hits += 1;
            return Ok(Arc::clone(entry));
        }
        self.stats.misses += 1;
        let entry = Arc::new(build_module(desc, spec, opt)?);
        self.entries.insert(key, Arc::clone(&entry));
        Ok(entry)
    }
}

/// Compiles one module end-to-end: IR generation, accfg passes, target
/// lowering, and plan extraction.
///
/// # Errors
/// See [`ServeError`].
pub fn build_module(
    desc: &AcceleratorDescriptor,
    spec: MatmulSpec,
    opt: OptLevel,
) -> Result<CompiledModule, ServeError> {
    let mut module = matmul_ir(desc, &spec);
    pipeline(opt, desc.overlap_filter())
        .run(&mut module)
        .map_err(|e| ServeError::Pipeline(e.to_string()))?;
    let layout = MatmulLayout::at(0x1000, &spec);
    let args = [layout.a_addr, layout.b_addr, layout.c_addr];
    let program = compile(&module, "matmul", desc, &args)?;
    let trace = interpret(&module, "matmul", &args, PLAN_FUEL)?;
    let plan = DispatchPlan::from_trace(&trace, desc)?;
    let cost = measure_cost(desc, &layout, &plan)?;
    Ok(CompiledModule {
        key: CacheKey {
            accelerator: desc.name.clone(),
            spec,
            opt,
        },
        layout,
        program,
        plan,
        cost,
        ir_setup_writes: trace.setup_writes,
    })
}

/// Measures the plan's cold and warm dispatch cycles on a scratch machine
/// (zeroed inputs — only timing is sampled, not results), anchoring the
/// [`CostModel`] the scheduler predicts queue depth with.
fn measure_cost(
    desc: &AcceleratorDescriptor,
    layout: &MatmulLayout,
    plan: &DispatchPlan,
) -> Result<CostModel, ServeError> {
    let mut machine = Machine::new(
        desc.host.clone(),
        AccelSim::new(desc.accel.clone()),
        layout.end as usize,
    );
    let measure = |machine: &mut Machine, program: &Program| -> Result<u64, ServeError> {
        let counters = machine
            .run(program, PLAN_FUEL)
            .map_err(|e| ServeError::CostMeasurement(e.to_string()))?;
        // the program drained the accelerator; re-base its busy window so
        // the warm run starts from a clean clock, like a pool worker
        machine.accel.reset_clock(counters.cycles);
        Ok(counters.cycles)
    };
    let mut resident = RegMap::new();
    let (cold_program, cold_writes) = plan.delta_program(&mut resident);
    let cold_cycles = measure(&mut machine, &cold_program)?;
    let (warm_program, warm_writes) = plan.delta_program(&mut resident);
    let warm_cycles = measure(&mut machine, &warm_program)?;
    Ok(CostModel {
        cold_writes,
        cold_cycles,
        warm_writes,
        warm_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        let mut cache = ModuleCache::new();
        let a = cache.get_or_build(&desc, spec, OptLevel::All).unwrap();
        let b = cache.get_or_build(&desc, spec, OptLevel::All).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats, CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_modules() {
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        let mut cache = ModuleCache::new();
        cache.get_or_build(&desc, spec, OptLevel::All).unwrap();
        cache.get_or_build(&desc, spec, OptLevel::Base).unwrap();
        let other = MatmulSpec::opengemm_paper(24).unwrap();
        cache.get_or_build(&desc, other, OptLevel::All).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats.misses, 3);
        assert!((cache.stats.hit_rate() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn plan_matches_program_launch_count() {
        for (desc, spec) in [
            (
                AcceleratorDescriptor::opengemm(),
                MatmulSpec::opengemm_paper(16).unwrap(),
            ),
            (
                AcceleratorDescriptor::gemmini(),
                MatmulSpec::gemmini_paper(32).unwrap(),
            ),
        ] {
            let module = build_module(&desc, spec, OptLevel::All).unwrap();
            assert_eq!(module.plan.launches.len() as i64, spec.invocations());
            assert!(module.plan.cold_writes > 0);
            assert!(!module.program.is_empty());
        }
    }

    #[test]
    fn cost_model_anchors_are_measured_and_ordered() {
        for (desc, spec) in [
            (
                AcceleratorDescriptor::opengemm(),
                MatmulSpec::opengemm_paper(16).unwrap(),
            ),
            (
                AcceleratorDescriptor::gemmini(),
                MatmulSpec::gemmini_paper(32).unwrap(),
            ),
        ] {
            let module = build_module(&desc, spec, OptLevel::All).unwrap();
            let cost = module.cost;
            assert_eq!(cost.cold_writes, module.plan.cold_writes);
            assert!(cost.cold_cycles > 0);
            assert!(cost.warm_cycles > 0);
            // eliding resident state can only shrink a dispatch
            assert!(cost.warm_writes <= cost.cold_writes);
            assert!(cost.warm_cycles <= cost.cold_cycles, "{cost:?}");
        }
    }

    #[test]
    fn cost_prediction_interpolates_between_anchors() {
        let cost = CostModel {
            cold_writes: 100,
            cold_cycles: 1000,
            warm_writes: 20,
            warm_cycles: 200,
        };
        assert_eq!(cost.predict(100), 1000);
        assert_eq!(cost.predict(200), 1000); // clamped above the cold anchor
        assert_eq!(cost.predict(20), 200);
        assert_eq!(cost.predict(60), 600);
        // fully-resident dispatches extrapolate below the warm anchor
        assert!(cost.predict(0) < 200);
        // prediction is monotone in the write count
        let preds: Vec<u64> = (0..=120).map(|w| cost.predict(w)).collect();
        assert!(preds.windows(2).all(|p| p[0] <= p[1]));
        // degenerate anchors never divide by zero
        let flat = CostModel {
            cold_writes: 5,
            cold_cycles: 50,
            warm_writes: 5,
            warm_cycles: 50,
        };
        assert_eq!(flat.predict(0), 50);
        assert_eq!(flat.predict(99), 50);
    }

    #[test]
    fn plan_register_files_are_complete() {
        // every launch's register file carries the full tile descriptor,
        // whatever the opt level did to the instruction stream
        let desc = AcceleratorDescriptor::opengemm();
        let spec = MatmulSpec::opengemm_paper(16).unwrap();
        for opt in [OptLevel::Base, OptLevel::All] {
            let module = build_module(&desc, spec, opt).unwrap();
            for launch in &module.plan.launches {
                assert!(launch.registers.len() >= 10, "{:?}", launch.registers);
            }
        }
    }
}
