//! The serving runtime: pool construction, the serve loop, and metric
//! aggregation.
//!
//! [`Runtime::serve`] processes an open-loop request stream end to end:
//!
//! 1. every request's module is resolved through the compiled-module
//!    cache (repeated shapes skip IR build, passes, and lowering);
//! 2. the scheduler assigns each request — or each *batch* of same-module
//!    requests adjacent in their group's arrival order — to a worker
//!    through the run's [`SchedulePolicy`] (round-robin, config-affinity,
//!    or cycle-cost routing), cutting a batch off once the target
//!    worker's estimated outstanding cycles reach the slack horizon;
//! 3. worker threads execute their dispatch sequences on persistent
//!    simulated machines, eliding configuration writes already resident;
//! 4. as the simulated clock passes each dispatch's completion, its
//!    *measured* cycles retire into the scheduler's online cost refiner,
//!    sharpening the queue estimates later routing decisions use;
//! 5. completions are folded into [`ServeMetrics`], with latencies
//!    replayed deterministically from per-request cycle counts.
//!
//! Scheduling interleaves with execution — the serve loop blocks on a
//! worker's next completion exactly when the simulated clock proves that
//! dispatch has started — but every decision point is a function of
//! simulated time only, so two serves of the same stream produce
//! bit-identical reports regardless of thread interleaving.
//!
//! Pools may be heterogeneous: a [`PoolGroup`] can mix differently
//! provisioned platform variants of one family (validated for
//! plan-compatibility at serve time), with modules compiled once against
//! the group's base platform and cost estimates re-anchored per variant.
//!
//! [`SchedulePolicy`]: crate::policy::SchedulePolicy

use crate::cache::{CacheKey, CacheStats, CompiledModule, ModuleCache};
use crate::engine::{self, ServeMode};
use crate::error::ServeError;
use crate::metrics::{
    class_label, ClassLatency, DepthHistogram, LatencyStats, PredictionStats, ServeMetrics,
    WarmStartStats, WorkerMetrics,
};
use crate::persist::{self, CostSnapshotEntry};
use crate::policy::Policy;
use crate::scheduler::LOAD_SLACK_CYCLES;
use crate::worker::{Completion, Worker};
use accfg::pipeline::OptLevel;
use accfg_sim::FREQ_STATES;
use accfg_store::{KeyValueStore, LogStore};
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{TrafficClass, TrafficRequest};
use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

/// One routing group of the pool: the *family* name requests address,
/// plus the per-worker platform descriptors serving it.
///
/// A uniform group repeats one descriptor; a heterogeneous group mixes
/// differently provisioned variants of one platform family (same
/// configuration interface and field table — validated against
/// [`AcceleratorDescriptor::plan_compatible`] at serve time). Modules are
/// compiled once per family against `members[0]`, the group's *base*
/// platform, and replayed on every member; the scheduler re-anchors cost
/// estimates per variant.
#[derive(Debug, Clone)]
pub struct PoolGroup {
    /// The accelerator family requests name (`TrafficRequest::accelerator`).
    pub family: String,
    /// Per-worker platform descriptors; `members[0]` is the compile
    /// target for the family's modules.
    pub members: Vec<AcceleratorDescriptor>,
    /// Boost power cap: the maximum number of this group's workers the
    /// scheduler's shadow DVFS automaton will predict as simultaneously
    /// boosted (`None` = unbounded). Enforced in the load tracker — a
    /// candidate whose mirror would boost past the cap is predicted (and
    /// charged) at warm — which is what makes frequency-aware routing a
    /// real trade-off instead of "boost everything". Validated at serve
    /// time: a cap of 0 or above the group's worker count is
    /// [`ServeError::InvalidPowerCap`].
    ///
    /// [`ServeError::InvalidPowerCap`]:
    ///     crate::error::ServeError::InvalidPowerCap
    pub power_cap: Option<usize>,
}

/// Static configuration of the worker pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// The routing groups (one per served accelerator family).
    pub groups: Vec<PoolGroup>,
    /// Memory per worker machine, in bytes.
    pub mem_bytes: usize,
    /// Per-dispatch dynamic instruction budget.
    pub fuel: u64,
}

impl PoolConfig {
    /// A uniform pool over `descriptors` — one group per entry, named
    /// after the descriptor, with 2 workers each — and defaults sized for
    /// the evaluation shapes.
    pub fn new(descriptors: Vec<AcceleratorDescriptor>) -> Self {
        let groups = descriptors
            .into_iter()
            .map(|d| PoolGroup {
                family: d.name.clone(),
                members: vec![d.clone(), d],
                power_cap: None,
            })
            .collect();
        Self {
            groups,
            mem_bytes: 1 << 21,
            fuel: 100_000_000,
        }
    }

    /// Sets the worker count per group, making each group `workers`
    /// instances of its base platform (call before adding variants with
    /// [`PoolConfig::with_variant`]).
    ///
    /// # Panics
    /// Panics if any group is already heterogeneous — resizing would
    /// silently discard its variants; set the worker count first.
    #[must_use]
    pub fn with_workers_per_accelerator(mut self, workers: usize) -> Self {
        for group in &mut self.groups {
            let base = group.members.first().cloned();
            assert!(
                group.members.iter().all(|m| Some(m) == base.as_ref()),
                "group `{}` already has platform variants; \
                 call with_workers_per_accelerator before with_variant",
                group.family
            );
            group.members = match base {
                Some(base) => vec![base; workers],
                None => Vec::new(),
            };
        }
        self
    }

    /// Makes the pool heterogeneous: replaces the *last remaining
    /// base-platform worker* of `family`'s group with the platform
    /// variant `desc`, keeping the group's worker count — and with it
    /// the pool's capacity comparison against a uniform pool —
    /// unchanged. Repeated calls install further variants without
    /// discarding earlier ones; `members[0]` — the group's compile
    /// target — is never displaced (except in a single-worker group,
    /// where replacing the only worker is a wholesale platform swap).
    ///
    /// # Panics
    /// Panics if no group is named `family`, or if every replaceable
    /// base-platform worker already holds a variant — both configuration
    /// bugs worth failing loudly on.
    #[must_use]
    pub fn with_variant(mut self, family: &str, desc: AcceleratorDescriptor) -> Self {
        let group = self
            .groups
            .iter_mut()
            .find(|g| g.family == family)
            .unwrap_or_else(|| panic!("no pool group for family `{family}`"));
        let base = group
            .members
            .first()
            .unwrap_or_else(|| panic!("group `{family}` has no workers to replace"))
            .clone();
        let slot = if group.members.len() == 1 {
            0
        } else {
            group
                .members
                .iter()
                .rposition(|member| *member == base)
                .filter(|&slot| slot >= 1)
                .unwrap_or_else(|| {
                    panic!(
                        "group `{family}` has no base-platform worker left to replace \
                         (members[0] stays the compile target)"
                    )
                })
        };
        group.members[slot] = desc;
        self
    }

    /// Sets `family`'s boost power cap: at most `cap` of the group's
    /// workers are predicted simultaneously boosted by the scheduler's
    /// shadow DVFS automaton (see [`PoolGroup::power_cap`]). Range
    /// validation (`1..=` the group's worker count) happens at serve
    /// time, after the pool's final shape is known.
    ///
    /// # Panics
    /// Panics if no group is named `family`.
    #[must_use]
    pub fn with_power_cap(mut self, family: &str, cap: usize) -> Self {
        let group = self
            .groups
            .iter_mut()
            .find(|g| g.family == family)
            .unwrap_or_else(|| panic!("no pool group for family `{family}`"));
        group.power_cap = Some(cap);
        self
    }

    /// Total workers across all groups.
    pub fn worker_count(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }
}

/// Mean measured service time (execution cycles) per traffic class, from
/// a completed serve run — the numbers a closed-loop generator needs to
/// drive its feedback with observed behaviour instead of a static
/// estimate ([`ClosedLoopConfig::stream_with_service_times`]).
///
/// Returns one entry per class, aligned with `classes`; requests whose
/// simulation failed are excluded, and a class with no measured requests
/// falls back to `fallback`. Deterministic: a pure fold over the report.
///
/// [`ClosedLoopConfig::stream_with_service_times`]:
///     accfg_workloads::ClosedLoopConfig::stream_with_service_times
pub fn measured_class_service_times(
    classes: &[TrafficClass],
    stream: &[TrafficRequest],
    report: &ServeReport,
    fallback: u64,
) -> Vec<u64> {
    classes
        .iter()
        .map(|class| {
            let (mut sum, mut samples) = (0u64, 0u64);
            for (request, completion) in stream.iter().zip(&report.completions) {
                if completion.sim_error.is_none()
                    && request.accelerator == class.accelerator
                    && request.spec == class.spec
                {
                    sum += completion.counters.cycles;
                    samples += 1;
                }
            }
            sum.checked_div(samples).unwrap_or(fallback)
        })
        .collect()
}

/// Early-termination bounds for a *capped* serve run, in the style of
/// LeapsAndBounds racing: the engine tracks the running latency
/// distribution and cumulative setup writes, and aborts the serve with
/// [`ServeError::BudgetExceeded`] the moment either final metric is
/// *provably* beyond its bound — no matter how the rest of the stream
/// plays out. Because the serve is deterministic, an abort is exact
/// evidence (not a noisy sample) that the full run would have violated
/// the bound, which is what lets an autotuner race candidate
/// configurations against an incumbent without ever finishing a loser.
///
/// The p99 rule: with `n` stream requests, the nearest-rank p99 exceeds
/// `bound` if and only if more than `n - ceil(0.99 * n)` latencies
/// exceed `bound`. Every pulled completion's latency is final (the
/// simulated clock has proved its start cycle), so the observed
/// exceed-count only ever grows — crossing the threshold mid-run is
/// conclusive. Setup writes are monotone in completed requests, so the
/// write rule is a plain running-sum comparison. Both bounds are *exact*,
/// not merely sound: every completion (including the drained tail) feeds
/// the tracker, so a budgeted serve completes if and only if the full
/// run's final p99 and setup-write totals are within the bounds.
///
/// Budgeted serves always run on the deterministic oracle engine
/// regardless of [`ServeConfig::mode`] — like the parallel engine's
/// duplicate-base-name fallback, the budget makes engine choice a
/// correctness matter, and the oracle is the engine whose pull order the
/// abort argument is stated against.
///
/// An aborted run flushes nothing to a warm-start store (the flush sits
/// after the engine in [`Runtime::serve`], and the abort returns early),
/// so capped tuning runs cannot poison persisted EWMA state.
///
/// [`ServeError::BudgetExceeded`]: crate::error::ServeError::BudgetExceeded
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeBudget {
    /// Abort once the final p99 latency provably exceeds this bound
    /// (`None` leaves the latency tail unbounded).
    pub p99_bound: Option<u64>,
    /// Abort once cumulative setup writes across pulled completions
    /// exceed this bound (`None` leaves writes unbounded).
    pub max_setup_writes: Option<u64>,
}

impl ServeBudget {
    /// `true` if no bound is set — the budget can never trigger.
    pub fn is_unbounded(&self) -> bool {
        self.p99_bound.is_none() && self.max_setup_writes.is_none()
    }
}

/// Per-serve-run configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Routing policy.
    pub policy: Policy,
    /// Optimization level for compiled modules.
    pub opt: OptLevel,
    /// Maximum same-module requests (adjacent in their group's arrival
    /// order) coalesced into one batch (1 disables batching).
    pub max_batch: usize,
    /// The load-slack horizon in estimated outstanding cycles: how far a
    /// worker's queue may run ahead of its group's best candidate before
    /// policy scoring prefers balance over resident-state overlap.
    /// Defaults to [`LOAD_SLACK_CYCLES`] (256, the PR 2 sweep's choice).
    /// Note `batch_cutoff` does not follow this field automatically when
    /// set directly — use [`ServeConfig::with_load_slack`] to sweep the
    /// horizon with both knobs in lockstep (as `serve_bench --slack`
    /// does).
    pub load_slack: u64,
    /// Queue-depth-aware batch cutoff: stop coalescing further requests
    /// into a batch once the target worker's estimated outstanding cycles
    /// (measured at the candidate's arrival) reach this horizon. `None`
    /// coalesces up to `max_batch` unconditionally — the pre-cutoff
    /// behaviour whose tail cost `serve_bench` documents.
    pub batch_cutoff: Option<u64>,
    /// Online cost refinement: feed each retired dispatch's measured
    /// cycles into a per-`(module, warmth bucket)` EWMA and let it sharpen
    /// the scheduler's queue estimates. `false` pins the estimates to the
    /// static build-time anchors (the ablation the prediction-error
    /// metrics compare against).
    pub refine_cost: bool,
    /// Path of a persistent warm-start store (`accfg-store` log file;
    /// created if absent). When set, the serve restores previously
    /// compiled modules and learned EWMA cost rows on start and flushes
    /// its own back on finish, reporting provenance in
    /// [`WarmStartStats`]. `None` (the default) serves fully cold and
    /// keeps the run byte-identical to the pre-store behaviour.
    pub store: Option<PathBuf>,
    /// Which serve engine processes the dispatch loop:
    /// [`ServeMode::Deterministic`] (the default) is the single-threaded
    /// simulated-clock oracle whose reports are byte-identical across
    /// runs; [`ServeMode::Parallel`] shards the scheduler per pool group
    /// and spreads execution over executor threads, producing identical
    /// per-request outcomes at real wall-clock parallelism (see
    /// [`crate::engine`] for the contract).
    pub mode: ServeMode,
    /// Early-termination bounds for capped tuning runs (see
    /// [`ServeBudget`]). `None` (the default) serves the full stream
    /// unconditionally; `Some` routes the serve to the deterministic
    /// oracle and aborts with [`ServeError::BudgetExceeded`] as soon as
    /// a bound is provably violated.
    ///
    /// [`ServeError::BudgetExceeded`]:
    ///     crate::error::ServeError::BudgetExceeded
    pub budget: Option<ServeBudget>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            policy: Policy::ConfigAffinity,
            opt: OptLevel::All,
            max_batch: 1,
            load_slack: LOAD_SLACK_CYCLES,
            batch_cutoff: Some(LOAD_SLACK_CYCLES),
            refine_cost: true,
            store: None,
            mode: ServeMode::Deterministic,
            budget: None,
        }
    }
}

impl ServeConfig {
    /// Sets the load-slack horizon *and* keeps `batch_cutoff` in lockstep:
    /// a capped cutoff follows `slack`, while an uncapped (`None`) cutoff
    /// stays uncapped — sweeping the horizon should not silently re-enable
    /// the cutoff ablation. Setting `load_slack` directly instead leaves
    /// `batch_cutoff` untouched, which is almost never what a knob sweep
    /// wants.
    #[must_use]
    pub fn with_load_slack(mut self, slack: u64) -> Self {
        self.load_slack = slack;
        self.batch_cutoff = self.batch_cutoff.map(|_| slack);
        self
    }
}

/// The per-dispatch cycle predictions recorded at commit time, kept so
/// observed-vs-predicted error can be examined request by request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionSample {
    /// Cycles the static build-time anchors predicted.
    pub anchor: u64,
    /// Cycles the scheduler charged (the EWMA estimate once the warmth
    /// bucket has observations; the anchor prediction before, or always
    /// when refinement is off).
    pub ewma: u64,
    /// Cycles the dispatch actually took (0 if its simulation failed).
    pub observed: u64,
}

/// The outcome of one serve run.
#[derive(Debug)]
pub struct ServeReport {
    /// Aggregate metrics.
    pub metrics: ServeMetrics,
    /// Per-request completions, in stream order.
    pub completions: Vec<Completion>,
    /// Arrival-to-completion latency per request, in stream order.
    pub latencies: Vec<u64>,
    /// Per-request cycle predictions vs. observations, in stream order.
    pub predictions: Vec<PredictionSample>,
}

/// A pooled serving runtime with a persistent module cache.
#[derive(Debug)]
pub struct Runtime {
    pool: PoolConfig,
    cache: ModuleCache,
}

impl Runtime {
    /// Creates a runtime over `pool`.
    pub fn new(pool: PoolConfig) -> Self {
        Self {
            pool,
            cache: ModuleCache::new(),
        }
    }

    /// The module cache's lifetime statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Serves `stream` under `cfg` and returns the report.
    ///
    /// Requests are dispatched in arrival order (ties broken by id). Each
    /// serve run starts from fresh (blank-state) workers; the module cache
    /// persists across runs.
    ///
    /// # Errors
    /// Fails on an empty pool, a request for an unknown accelerator, or a
    /// module compilation failure. Per-request simulator or functional
    /// failures do *not* abort the run — they are reported in the metrics
    /// and completions. A serve with a [`ServeBudget`] additionally fails
    /// with [`ServeError::BudgetExceeded`] when a bound is provably
    /// violated mid-run; nothing is flushed to the warm-start store in
    /// that case.
    pub fn serve(
        &mut self,
        stream: &[TrafficRequest],
        cfg: &ServeConfig,
    ) -> Result<ServeReport, ServeError> {
        if self.pool.groups.is_empty() || self.pool.groups.iter().any(|g| g.members.is_empty()) {
            return Err(ServeError::EmptyPool);
        }
        // heterogeneous groups must agree on the configuration interface:
        // every member replays plans compiled for the group's base
        for group in &self.pool.groups {
            let base = &group.members[0];
            for member in &group.members[1..] {
                if !base.plan_compatible(member) {
                    return Err(ServeError::IncompatiblePool {
                        family: group.family.clone(),
                        member: member.name.clone(),
                    });
                }
            }
        }
        // a power cap must actually bound something: 0 forbids boosting
        // outright and a cap beyond the group's size caps nothing — both
        // are configuration bugs, rejected instead of silently clamped
        for group in &self.pool.groups {
            if let Some(cap) = group.power_cap {
                if cap == 0 || cap > group.members.len() {
                    return Err(ServeError::InvalidPowerCap {
                        family: group.family.clone(),
                        cap,
                        workers: group.members.len(),
                    });
                }
            }
        }
        // a descriptor name must identify exactly one provisioning: the
        // scheduler keys platform cost anchors and refinement state by
        // name, so a same-name-but-different variant would silently share
        // another platform's estimates
        let members = || self.pool.groups.iter().flat_map(|g| &g.members);
        for (i, a) in members().enumerate() {
            if members().take(i).any(|b| a.name == b.name && a != b) {
                return Err(ServeError::AmbiguousVariantName {
                    name: a.name.clone(),
                });
            }
        }
        let cache_before = self.cache.stats;

        // warm start: open the persistent store (if configured), restore
        // every module this pool can field into the cache, and hold the
        // fleet's cost rows for seeding once the scheduler exists. A
        // corrupt store *tail* is recovered from with a warning; anything
        // worse is a typed error.
        let mut store: Option<LogStore> = None;
        let mut restored_keys: HashSet<CacheKey> = HashSet::new();
        let mut cost_seed: Vec<CostSnapshotEntry> = Vec::new();
        let mut warm_start = WarmStartStats::default();
        if let Some(path) = &cfg.store {
            let opened = LogStore::open(path)?;
            if let Some(tail) = opened.recovery() {
                eprintln!("accfg-store: {} in {}", tail, path.display());
            }
            let bases: Vec<&AcceleratorDescriptor> =
                self.pool.groups.iter().map(|g| &g.members[0]).collect();
            for module in persist::load_modules(&opened, &bases)? {
                restored_keys.insert(module.key.clone());
                if self.cache.restore(module) {
                    warm_start.modules_restored += 1;
                }
            }
            cost_seed = persist::load_costs(&opened)?;
            store = Some(opened);
        }

        // worker pool: one routing group per family, workers run their
        // own (possibly variant) platform descriptors
        let mut workers = Vec::new();
        let mut worker_descs: Vec<AcceleratorDescriptor> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for pool_group in &self.pool.groups {
            let mut group = Vec::new();
            for desc in &pool_group.members {
                let index = workers.len();
                group.push(index);
                worker_descs.push(desc.clone());
                workers.push(Worker::new(
                    index,
                    desc.clone(),
                    self.pool.mem_bytes,
                    self.pool.fuel,
                ));
            }
            groups.push(group);
        }
        let group_of = |accelerator: &str| -> Result<usize, ServeError> {
            self.pool
                .groups
                .iter()
                .position(|g| g.family == accelerator)
                .ok_or_else(|| ServeError::UnknownAccelerator(accelerator.to_string()))
        };

        // dispatch order: by arrival, ties by id then slot
        let mut order: Vec<usize> = (0..stream.len()).collect();
        order.sort_by_key(|&i| (stream[i].arrival, stream[i].id, i));

        // resolve modules (and groups) through the cache, in dispatch order
        let mut modules: Vec<Option<Arc<CompiledModule>>> = vec![None; stream.len()];
        let mut group_idx = vec![0usize; stream.len()];
        for &i in &order {
            let request = &stream[i];
            let g = group_of(&request.accelerator)?;
            let module =
                self.cache
                    .get_or_build(&self.pool.groups[g].members[0], request.spec, cfg.opt)?;
            modules[i] = Some(module);
            group_idx[i] = g;
        }

        // compile builds the restored modules saved this run: distinct
        // stream keys a restored entry satisfied instead of a fresh build
        warm_start.builds_avoided = modules
            .iter()
            .flatten()
            .map(|m| &m.key)
            .filter(|key| restored_keys.contains(*key))
            .collect::<HashSet<_>>()
            .len() as u64;

        let accel_of_worker: Vec<String> = workers
            .iter()
            .map(|w| w.accelerator().to_string())
            .collect();
        let worker_count = workers.len();

        // The serve loop proper: scheduling interleaved with execution,
        // behind the engine `cfg.mode` selects. The deterministic oracle
        // advances one simulated clock over the whole pool; the parallel
        // engine shards it per group with identical per-request outcomes
        // (see `crate::engine`). Either way, every dispatch the clock
        // proves *complete* retires its measured cycles into the
        // scheduler's cost refiner, so later queue estimates learn from
        // the stream itself.
        let power_caps: Vec<Option<usize>> = self.pool.groups.iter().map(|g| g.power_cap).collect();
        // A budget abort returns here — before the flush-on-finish block
        // below — so a capped run can never persist partial EWMA state.
        let engine_out = engine::run(engine::EngineInput {
            stream,
            order: &order,
            modules: &modules,
            group_idx: &group_idx,
            groups: &groups,
            worker_descs: &worker_descs,
            workers,
            cost_seed: &cost_seed,
            power_caps: &power_caps,
            cfg,
        })?;
        warm_start.ewma_entries_seeded = engine_out.ewma_entries_seeded;
        let completions: Vec<Completion> = engine_out.completions;
        let assignment = engine_out.assignment;
        let outcomes = engine_out.outcomes;
        let batched_requests = engine_out.batched_requests;

        // per-worker dispatch sequences (for latency replay)
        let mut dispatch_order: Vec<Vec<usize>> = vec![Vec::new(); worker_count];
        for &i in &order {
            dispatch_order[assignment[i]].push(i);
        }

        // deterministic latency replay: each worker executes its dispatch
        // sequence back-to-back on the simulated clock; along the way,
        // record the queue depth each request observed at its arrival
        // (how many earlier dispatches on its worker were still pending)
        let mut latencies = vec![0u64; stream.len()];
        let mut worker_metrics = Vec::new();
        let mut queue_depth = DepthHistogram::new();
        for (w, slots) in dispatch_order.iter().enumerate() {
            let mut ready = 0u64;
            let mut busy = 0u64;
            let mut finishes: Vec<u64> = Vec::with_capacity(slots.len());
            let mut drained = 0usize;
            for &i in slots {
                let cycles = completions[i].counters.cycles;
                let start = ready.max(stream[i].arrival);
                let finish = start + cycles;
                latencies[i] = finish - stream[i].arrival;
                ready = finish;
                busy += cycles;
                // finishes are monotone and arrivals nondecreasing per
                // worker, so a single pointer drains completed work
                while drained < finishes.len() && finishes[drained] <= stream[i].arrival {
                    drained += 1;
                }
                queue_depth.record((finishes.len() - drained) as u64);
                finishes.push(finish);
            }
            worker_metrics.push(WorkerMetrics {
                index: w,
                accelerator: accel_of_worker[w].clone(),
                requests: slots.len() as u64,
                busy_cycles: busy,
                finish: ready,
            });
        }

        // per-class latency distributions (the SLO view), keyed by
        // accelerator + shape, in sorted label order
        let mut class_latencies: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (i, request) in stream.iter().enumerate() {
            class_latencies
                .entry(class_label(&request.accelerator, &request.spec))
                .or_default()
                .push(latencies[i]);
        }
        let per_class: Vec<ClassLatency> = class_latencies
            .into_iter()
            .map(|(class, lat)| ClassLatency {
                class,
                requests: lat.len() as u64,
                latency: LatencyStats::from_latencies(&lat),
            })
            .collect();

        // observed-vs-predicted error, for both predictors on the same
        // dispatch sequence (simulation failures carry no valid cycles).
        // Each sample also lands in the per-frequency-mode breakdown,
        // where the ewma column is the *frequency-keyed* estimate for the
        // mode the dispatch actually ran in — summed across modes it is
        // the keyed estimator's MAE, next to `prediction`'s mode-agnostic
        // one.
        let mut prediction = PredictionStats::default();
        let mut freq_prediction = [PredictionStats::default(); FREQ_STATES];
        let predictions: Vec<PredictionSample> = completions
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let sample = PredictionSample {
                    anchor: outcomes[i].anchor_cycles,
                    ewma: outcomes[i].predicted_cycles,
                    observed: if c.sim_error.is_none() {
                        c.counters.cycles
                    } else {
                        0
                    },
                };
                if c.sim_error.is_none() {
                    prediction.samples += 1;
                    prediction.anchor_abs_error += sample.anchor.abs_diff(sample.observed);
                    prediction.ewma_abs_error += sample.ewma.abs_diff(sample.observed);
                    let keyed = &mut freq_prediction[c.freq.index()];
                    keyed.samples += 1;
                    keyed.anchor_abs_error += sample.anchor.abs_diff(sample.observed);
                    keyed.ewma_abs_error +=
                        outcomes[i].keyed_cycles[c.freq.index()].abs_diff(sample.observed);
                }
                sample
            })
            .collect();

        // flush-on-finish: persist every compiled module and the refiner's
        // learned rows (re-keyed from pool-local platform index to
        // platform name) back to the store. Saves are sorted and identical
        // values are elided at the log layer, so an identical re-run
        // leaves the file byte-for-byte unchanged.
        if let Some(store) = &mut store {
            persist::save_modules(store, &self.cache)?;
            persist::save_costs(store, &engine_out.cost_snapshot)?;
            store.sync()?;
        }

        let cache_after = self.cache.stats;
        let metrics = ServeMetrics {
            policy: cfg.policy.label().to_string(),
            requests: stream.len() as u64,
            check_failures: completions
                .iter()
                .filter(|c| c.check_error.is_some())
                .count() as u64,
            sim_failures: completions.iter().filter(|c| c.sim_error.is_some()).count() as u64,
            setup_writes: completions.iter().map(|c| c.emitted_writes).sum(),
            cold_setup_writes: completions.iter().map(|c| c.cold_writes).sum(),
            config_bytes: completions.iter().map(|c| c.counters.config_bytes).sum(),
            launches: completions.iter().map(|c| c.counters.launches).sum(),
            sim_cycles: completions.iter().map(|c| c.counters.cycles).sum(),
            contention_cycles: completions
                .iter()
                .map(|c| c.counters.contention_cycles)
                .sum(),
            freq_launches: completions.iter().fold([0u64; 3], |mut acc, c| {
                for (slot, n) in acc.iter_mut().zip(c.counters.freq_launches) {
                    *slot += n;
                }
                acc
            }),
            makespan: worker_metrics.iter().map(|w| w.finish).max().unwrap_or(0),
            latency: LatencyStats::from_latencies(&latencies),
            per_class,
            queue_depth,
            prediction,
            freq_prediction,
            cache: CacheStats {
                hits: cache_after.hits - cache_before.hits,
                misses: cache_after.misses - cache_before.misses,
            },
            warm_start: cfg.store.is_some().then_some(warm_start),
            batched_requests,
            workers: worker_metrics,
        };
        Ok(ServeReport {
            metrics,
            completions,
            latencies,
            predictions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accfg_workloads::{mixed_serving_classes, TrafficClass, TrafficConfig};

    fn pool() -> PoolConfig {
        PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ])
    }

    fn stream(requests: usize, seed: u64) -> Vec<TrafficRequest> {
        TrafficConfig {
            classes: mixed_serving_classes(),
            requests,
            mean_gap: 50,
            seed,
        }
        .open_loop_stream()
        .unwrap()
    }

    #[test]
    fn serves_a_mixed_stream_functionally() {
        let mut rt = Runtime::new(pool());
        let stream = stream(200, 1);
        let report = rt.serve(&stream, &ServeConfig::default()).unwrap();
        assert_eq!(report.metrics.requests, 200);
        assert_eq!(report.metrics.check_failures, 0);
        assert_eq!(report.metrics.sim_failures, 0);
        assert!(report.metrics.launches >= 200);
        // six shapes → six compiled modules, everything else cache hits
        assert_eq!(report.metrics.cache.misses, 6);
        assert_eq!(report.metrics.cache.hits, 194);
        // completions come back in stream order
        for (i, c) in report.completions.iter().enumerate() {
            assert_eq!(c.slot, i);
        }
    }

    #[test]
    fn affinity_writes_less_than_fifo() {
        let stream = stream(400, 2);
        let mut rt = Runtime::new(pool());
        let serve = |rt: &mut Runtime, policy| {
            rt.serve(
                &stream,
                &ServeConfig {
                    policy,
                    ..ServeConfig::default()
                },
            )
            .unwrap()
        };
        let fifo = serve(&mut rt, Policy::Fifo);
        let fifo_elide = serve(&mut rt, Policy::FifoElide);
        let affinity = serve(&mut rt, Policy::ConfigAffinity);
        // the cold baseline pays every dispatch's full configuration
        assert_eq!(fifo.metrics.setup_writes, fifo.metrics.cold_setup_writes);
        // state tracking alone already cuts writes; affinity routing on
        // top of it never exceeds the cold baseline by construction
        assert!(fifo_elide.metrics.setup_writes < fifo.metrics.setup_writes);
        assert!(
            affinity.metrics.setup_writes < fifo.metrics.setup_writes,
            "affinity {} !< fifo {}",
            affinity.metrics.setup_writes,
            fifo.metrics.setup_writes
        );
        assert!(affinity.metrics.write_savings_vs(&fifo.metrics) > 0.30);
    }

    #[test]
    fn serving_is_deterministic() {
        let stream = stream(150, 3);
        let run = || {
            let mut rt = Runtime::new(pool());
            rt.serve(&stream, &ServeConfig::default()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.latencies, b.latencies);
    }

    #[test]
    fn batching_coalesces_adjacent_same_shape_requests() {
        let stream = stream(300, 4);
        let mut rt = Runtime::new(pool());
        let unbatched = rt.serve(&stream, &ServeConfig::default()).unwrap();
        assert_eq!(unbatched.metrics.batched_requests, 0);
        let batched = rt
            .serve(
                &stream,
                &ServeConfig {
                    max_batch: 8,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        assert!(batched.metrics.batched_requests > 0);
        assert_eq!(batched.metrics.check_failures, 0);
        // batching changes placement only at load-slack boundaries, so its
        // write cost stays within a few percent of the unbatched run (and
        // always within the cold bound)
        let tolerance = unbatched.metrics.setup_writes / 20;
        assert!(
            batched.metrics.setup_writes <= unbatched.metrics.setup_writes + tolerance,
            "batched {} far exceeds unbatched {}",
            batched.metrics.setup_writes,
            unbatched.metrics.setup_writes
        );
        assert!(batched.metrics.setup_writes <= batched.metrics.cold_setup_writes);
    }

    fn hetero_pool() -> PoolConfig {
        PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ])
        .with_variant("gemmini", AcceleratorDescriptor::gemmini_turbo())
        .with_variant("opengemm", AcceleratorDescriptor::opengemm_lite())
    }

    #[test]
    fn heterogeneous_pool_serves_functionally_under_every_policy() {
        let stream = stream(200, 9);
        let mut rt = Runtime::new(hetero_pool());
        for policy in [
            Policy::Fifo,
            Policy::FifoElide,
            Policy::ConfigAffinity,
            Policy::Cost,
            Policy::Thermal,
        ] {
            let report = rt
                .serve(
                    &stream,
                    &ServeConfig {
                        policy,
                        ..ServeConfig::default()
                    },
                )
                .unwrap();
            assert_eq!(report.metrics.requests, 200, "{}", policy.label());
            assert_eq!(report.metrics.check_failures, 0, "{}", policy.label());
            assert_eq!(report.metrics.sim_failures, 0, "{}", policy.label());
        }
        // the variant workers are visible in the per-worker metrics
        let report = rt.serve(&stream, &ServeConfig::default()).unwrap();
        let accels: Vec<&str> = report
            .metrics
            .workers
            .iter()
            .map(|w| w.accelerator.as_str())
            .collect();
        assert_eq!(
            accels,
            vec!["gemmini", "gemmini-turbo", "opengemm", "opengemm-lite"]
        );
    }

    #[test]
    fn heterogeneous_serving_is_deterministic() {
        let stream = stream(150, 10);
        let run = |policy| {
            let mut rt = Runtime::new(hetero_pool());
            rt.serve(
                &stream,
                &ServeConfig {
                    policy,
                    ..ServeConfig::default()
                },
            )
            .unwrap()
        };
        for policy in [Policy::ConfigAffinity, Policy::Cost] {
            let a = run(policy);
            let b = run(policy);
            assert_eq!(a.metrics, b.metrics, "{}", policy.label());
            assert_eq!(a.latencies, b.latencies);
            assert_eq!(a.predictions, b.predictions);
        }
    }

    #[test]
    fn incompatible_group_members_are_rejected() {
        // an opengemm-style member in the gemmini group cannot replay the
        // family's RoCC plans
        let pool = PoolConfig::new(vec![AcceleratorDescriptor::gemmini()])
            .with_variant("gemmini", AcceleratorDescriptor::opengemm());
        let mut rt = Runtime::new(pool);
        let stream = stream(1, 11);
        assert!(matches!(
            rt.serve(&stream, &ServeConfig::default()),
            Err(ServeError::IncompatiblePool { family, member })
                if family == "gemmini" && member == "opengemm"
        ));
    }

    #[test]
    fn same_name_different_provisioning_is_rejected() {
        // the scheduler keys platform state by descriptor name, so a
        // variant that keeps the base's name would silently share its
        // cost anchors and refinement state — reject it up front
        let mut doctored = AcceleratorDescriptor::gemmini();
        doctored.accel.macs_per_cycle *= 4;
        let pool = PoolConfig::new(vec![AcceleratorDescriptor::gemmini()])
            .with_variant("gemmini", doctored);
        let mut rt = Runtime::new(pool);
        let stream = stream(1, 13);
        assert!(matches!(
            rt.serve(&stream, &ServeConfig::default()),
            Err(ServeError::AmbiguousVariantName { name }) if name == "gemmini"
        ));
    }

    #[test]
    fn repeated_variants_accumulate_instead_of_replacing_each_other() {
        // a second with_variant call must install a further variant, not
        // silently discard the first
        let turbo = AcceleratorDescriptor::gemmini_turbo();
        let mut second = AcceleratorDescriptor::gemmini_turbo();
        second.name = "gemmini-turbo2".into();
        let pool = PoolConfig::new(vec![AcceleratorDescriptor::gemmini()])
            .with_workers_per_accelerator(3)
            .with_variant("gemmini", turbo.clone())
            .with_variant("gemmini", second.clone());
        let names: Vec<&str> = pool.groups[0]
            .members
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, vec!["gemmini", "gemmini-turbo2", "gemmini-turbo"]);
        assert_eq!(pool.worker_count(), 3);
    }

    #[test]
    #[should_panic(expected = "no base-platform worker left to replace")]
    fn exhausting_the_base_workers_is_rejected() {
        // a 2-worker group holds the compile target plus one variant; a
        // second variant has no base-platform worker left to displace
        let mut second = AcceleratorDescriptor::gemmini_turbo();
        second.name = "gemmini-turbo2".into();
        let _ = PoolConfig::new(vec![AcceleratorDescriptor::gemmini()])
            .with_variant("gemmini", AcceleratorDescriptor::gemmini_turbo())
            .with_variant("gemmini", second);
    }

    #[test]
    #[should_panic(expected = "already has platform variants")]
    fn resizing_a_heterogeneous_group_is_rejected() {
        // resizing rebuilds a group from its base platform, which would
        // silently drop a variant added earlier
        let _ = PoolConfig::new(vec![AcceleratorDescriptor::gemmini()])
            .with_variant("gemmini", AcceleratorDescriptor::gemmini_turbo())
            .with_workers_per_accelerator(4);
    }

    #[test]
    fn out_of_range_power_caps_are_rejected() {
        let stream = stream(1, 14);
        // cap 0 forbids boosting outright
        let mut rt = Runtime::new(pool().with_power_cap("gemmini", 0));
        assert!(matches!(
            rt.serve(&stream, &ServeConfig::default()),
            Err(ServeError::InvalidPowerCap { family, cap, workers })
                if family == "gemmini" && cap == 0 && workers == 2
        ));
        // a cap beyond the group's worker count caps nothing
        let mut rt = Runtime::new(pool().with_power_cap("opengemm", 3));
        assert!(matches!(
            rt.serve(&stream, &ServeConfig::default()),
            Err(ServeError::InvalidPowerCap { family, cap, workers })
                if family == "opengemm" && cap == 3 && workers == 2
        ));
        // an in-range cap serves normally
        let mut rt = Runtime::new(pool().with_power_cap("gemmini", 1));
        let report = rt.serve(&stream, &ServeConfig::default()).unwrap();
        assert_eq!(report.metrics.requests, 1);
    }

    #[test]
    fn unknown_accelerator_is_reported() {
        let mut rt = Runtime::new(pool());
        let mut stream = stream(1, 5);
        stream[0].accelerator = "tpu".into();
        assert!(matches!(
            rt.serve(&stream, &ServeConfig::default()),
            Err(ServeError::UnknownAccelerator(name)) if name == "tpu"
        ));
    }

    #[test]
    fn empty_pool_is_rejected() {
        let mut rt = Runtime::new(PoolConfig::new(vec![]));
        assert!(matches!(
            rt.serve(&[], &ServeConfig::default()),
            Err(ServeError::EmptyPool)
        ));
        let mut no_workers = Runtime::new(PoolConfig::new(vec![AcceleratorDescriptor::gemmini()]));
        no_workers.pool.groups[0].members.clear();
        assert!(matches!(
            no_workers.serve(&[], &ServeConfig::default()),
            Err(ServeError::EmptyPool)
        ));
    }

    #[test]
    fn measured_service_times_average_per_class() {
        let stream = stream(300, 12);
        let mut rt = Runtime::new(pool());
        let report = rt.serve(&stream, &ServeConfig::default()).unwrap();
        let classes = mixed_serving_classes();
        let times = measured_class_service_times(&classes, &stream, &report, 250);
        assert_eq!(times.len(), classes.len());
        // every class occurs in a 300-request mixed stream, so nothing
        // falls back, and heavier shapes measure longer service
        for (class, &t) in classes.iter().zip(&times) {
            assert!(t > 0, "{}: zero service time", class.accelerator);
            assert_ne!(t, 250, "{} fell back", class.accelerator);
            // the mean is reproduced by hand for this class
            let (mut sum, mut n) = (0u64, 0u64);
            for (r, c) in stream.iter().zip(&report.completions) {
                if r.accelerator == class.accelerator && r.spec == class.spec {
                    sum += c.counters.cycles;
                    n += 1;
                }
            }
            assert_eq!(t, sum / n);
        }
        // an absent class falls back
        let absent = TrafficClass {
            accelerator: "gemmini".into(),
            spec: accfg_workloads::MatmulSpec::gemmini_paper(128).unwrap(),
            weight: 1,
        };
        assert_eq!(
            measured_class_service_times(&[absent], &stream, &report, 250),
            vec![250]
        );
    }

    #[test]
    fn with_load_slack_keeps_batch_cutoff_in_lockstep() {
        let cfg = ServeConfig::default().with_load_slack(512);
        assert_eq!(cfg.load_slack, 512);
        assert_eq!(cfg.batch_cutoff, Some(512));
        // an uncapped cutoff is an explicit ablation choice; sweeping the
        // horizon must not silently re-enable it
        let uncapped = ServeConfig {
            batch_cutoff: None,
            ..ServeConfig::default()
        }
        .with_load_slack(64);
        assert_eq!(uncapped.load_slack, 64);
        assert_eq!(uncapped.batch_cutoff, None);
    }

    #[test]
    fn budget_p99_bound_is_exact() {
        // fresh runtimes per serve: the module cache persists across
        // serves, so reusing one would skew the reports' cache deltas
        let stream = stream(300, 8);
        let full = Runtime::new(pool())
            .serve(&stream, &ServeConfig::default())
            .unwrap();
        let p99 = full.metrics.latency.p99;
        // bounded at the true p99, the bound is never provably exceeded
        // and the budgeted run reproduces the full run exactly
        let ok = Runtime::new(pool())
            .serve(
                &stream,
                &ServeConfig {
                    budget: Some(ServeBudget {
                        p99_bound: Some(p99),
                        max_setup_writes: None,
                    }),
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        assert_eq!(ok.metrics, full.metrics);
        // one cycle tighter, the true distribution must cross the bound
        let err = Runtime::new(pool())
            .serve(
                &stream,
                &ServeConfig {
                    budget: Some(ServeBudget {
                        p99_bound: Some(p99 - 1),
                        max_setup_writes: None,
                    }),
                    ..ServeConfig::default()
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::BudgetExceeded {
                p99_exceeded: true,
                ..
            }
        ));
    }

    #[test]
    fn budget_write_bound_is_exact() {
        let stream = stream(300, 8);
        let full = Runtime::new(pool())
            .serve(&stream, &ServeConfig::default())
            .unwrap();
        let writes = full.metrics.setup_writes;
        let budget = |max| ServeConfig {
            budget: Some(ServeBudget {
                p99_bound: None,
                max_setup_writes: Some(max),
            }),
            ..ServeConfig::default()
        };
        let ok = Runtime::new(pool())
            .serve(&stream, &budget(writes))
            .unwrap();
        assert_eq!(ok.metrics, full.metrics);
        let err = Runtime::new(pool())
            .serve(&stream, &budget(writes - 1))
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::BudgetExceeded {
                writes_exceeded: true,
                ..
            }
        ));
    }

    #[test]
    fn budgeted_serves_run_on_the_oracle() {
        // a budget overrides the engine knob: parallel mode with a budget
        // must reproduce the oracle's outcomes (the abort argument is
        // stated against the oracle's pull order)
        let stream = stream(200, 15);
        let oracle = Runtime::new(pool())
            .serve(&stream, &ServeConfig::default())
            .unwrap();
        let budgeted = Runtime::new(pool())
            .serve(
                &stream,
                &ServeConfig {
                    mode: ServeMode::Parallel { threads: 4 },
                    budget: Some(ServeBudget {
                        p99_bound: Some(u64::MAX),
                        max_setup_writes: Some(u64::MAX),
                    }),
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        assert_eq!(oracle.metrics, budgeted.metrics);
        assert_eq!(oracle.latencies, budgeted.latencies);
    }

    #[test]
    fn aborted_budgeted_serve_flushes_nothing_to_the_store() {
        let dir = std::env::temp_dir().join("accfg-runtime-budget-store");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("aborted.store");
        let _ = std::fs::remove_file(&path);
        let stream = stream(200, 7);
        let mut rt = Runtime::new(pool());
        // an impossible p99 bound aborts almost immediately, after the
        // store has been opened and modules compiled
        let err = rt
            .serve(
                &stream,
                &ServeConfig {
                    store: Some(path.clone()),
                    budget: Some(ServeBudget {
                        p99_bound: Some(0),
                        max_setup_writes: None,
                    }),
                    ..ServeConfig::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::BudgetExceeded { .. }));
        // the aborted run opened (and possibly created) the store but
        // flushed neither modules nor partial EWMA state into it
        let store = LogStore::open(&path).unwrap();
        let gemmini = AcceleratorDescriptor::gemmini();
        let opengemm = AcceleratorDescriptor::opengemm();
        let restored = persist::load_modules(&store, &[&gemmini, &opengemm]).unwrap();
        assert!(restored.is_empty(), "aborted run persisted modules");
        assert!(
            persist::load_costs(&store).unwrap().is_empty(),
            "aborted run persisted partial EWMA state"
        );
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batching_also_amortizes_round_robin_routing() {
        // batching helps even round-robin routing (with state tracking):
        // coalesced same-shape requests land on one worker instead of
        // being scattered
        let stream = stream(300, 6);
        let mut rt = Runtime::new(pool());
        let plain = rt
            .serve(
                &stream,
                &ServeConfig {
                    policy: Policy::FifoElide,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        let batched = rt
            .serve(
                &stream,
                &ServeConfig {
                    policy: Policy::FifoElide,
                    max_batch: 8,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        assert!(batched.metrics.setup_writes < plain.metrics.setup_writes);
    }
}
