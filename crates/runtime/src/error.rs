//! Runtime error types.

use accfg::interp::InterpError;
use accfg_store::StoreError;
use accfg_targets::LowerError;
use std::error::Error;
use std::fmt;

/// Why serving (or compiling a served module) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A request names an accelerator the pool has no descriptor for.
    UnknownAccelerator(String),
    /// The optimization pipeline failed on a generated module.
    Pipeline(String),
    /// Target lowering failed.
    Lower(LowerError),
    /// The accfg interpreter failed while extracting the launch plan.
    Interp(InterpError),
    /// The launch trace references a field the descriptor lacks.
    UnknownField {
        /// The accelerator.
        accelerator: String,
        /// The missing field.
        field: String,
    },
    /// A descriptor maps a field into the RoCC launch-semantic register
    /// pair, which the dispatcher reserves for the launch command.
    LaunchPairField {
        /// The accelerator.
        accelerator: String,
        /// The offending field.
        field: String,
    },
    /// The pool was configured without workers.
    EmptyPool,
    /// A heterogeneous group mixes platform variants whose configuration
    /// interfaces differ: a plan compiled for the group's base platform
    /// could not be replayed on the offending member.
    IncompatiblePool {
        /// The routing family (group) being built.
        family: String,
        /// The member descriptor that does not match the group's base.
        member: String,
    },
    /// The persistent warm-start store failed (I/O, bad magic, or a live
    /// record this build cannot decode). A *corrupt tail* is not an error:
    /// replay drops it with a warning and the serve proceeds.
    Store(StoreError),
    /// Two workers share a descriptor name but differ in provisioning.
    /// The scheduler identifies platform variants (cost anchors, EWMA
    /// refinement state) by name, so differently provisioned descriptors
    /// must carry distinct names.
    AmbiguousVariantName {
        /// The shared descriptor name.
        name: String,
    },
    /// A budgeted serve was cut short: the running latency/write totals
    /// proved the final metrics would exceed a [`ServeBudget`] bound, so
    /// the engine aborted the run instead of finishing it. Not a fault —
    /// this is the expected outcome of a capped tuning run whose
    /// candidate is provably worse than the incumbent. An aborted serve
    /// flushes **nothing** to a warm-start store: partial EWMA state from
    /// a truncated stream would poison later runs.
    ///
    /// [`ServeBudget`]: crate::runtime::ServeBudget
    BudgetExceeded {
        /// Requests whose completions had been pulled when the run aborted.
        completed: u64,
        /// The final p99 provably exceeds `ServeBudget::p99_bound`.
        p99_exceeded: bool,
        /// Cumulative setup writes exceeded `ServeBudget::max_setup_writes`.
        writes_exceeded: bool,
    },
    /// A pool group's boost power cap is out of range: a cap of 0 would
    /// forbid boosting entirely (omit the cap or don't use reference
    /// timing instead) and a cap above the group's worker count caps
    /// nothing. Rejected at pool construction rather than silently
    /// clamped.
    InvalidPowerCap {
        /// The routing family (group) carrying the cap.
        family: String,
        /// The configured cap.
        cap: usize,
        /// The group's worker count.
        workers: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownAccelerator(name) => {
                write!(f, "no descriptor in the pool for accelerator `{name}`")
            }
            ServeError::Pipeline(msg) => write!(f, "pass pipeline failed: {msg}"),
            ServeError::Lower(e) => write!(f, "lowering failed: {e}"),
            ServeError::Interp(e) => write!(f, "plan extraction failed: {e}"),
            ServeError::UnknownField { accelerator, field } => {
                write!(f, "accelerator `{accelerator}` has no field `{field}`")
            }
            ServeError::LaunchPairField { accelerator, field } => write!(
                f,
                "field `{field}` of `{accelerator}` maps into the launch-semantic register pair"
            ),
            ServeError::EmptyPool => write!(f, "pool has no workers"),
            ServeError::IncompatiblePool { family, member } => write!(
                f,
                "worker platform `{member}` is not plan-compatible with its group's base `{family}`"
            ),
            ServeError::Store(e) => write!(f, "warm-start store failed: {e}"),
            ServeError::AmbiguousVariantName { name } => write!(
                f,
                "two differently provisioned worker platforms share the name `{name}`; \
                 variants must carry distinct names"
            ),
            ServeError::BudgetExceeded {
                completed,
                p99_exceeded,
                writes_exceeded,
            } => {
                let bound = match (p99_exceeded, writes_exceeded) {
                    (true, true) => "p99 and setup-write bounds",
                    (true, false) => "p99 bound",
                    _ => "setup-write bound",
                };
                write!(
                    f,
                    "serve aborted after {completed} completions: the {bound} of the \
                     run's budget is provably exceeded"
                )
            }
            ServeError::InvalidPowerCap {
                family,
                cap,
                workers,
            } => write!(
                f,
                "power cap {cap} for group `{family}` is out of range 1..={workers} \
                 (omit the cap to leave boosting unbounded)"
            ),
        }
    }
}

impl Error for ServeError {}

impl From<LowerError> for ServeError {
    fn from(e: LowerError) -> Self {
        ServeError::Lower(e)
    }
}

impl From<InterpError> for ServeError {
    fn from(e: InterpError) -> Self {
        ServeError::Interp(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}
