//! Dispatch plans: the launch-level view of a compiled module that the
//! runtime diffs against a worker's resident register state.
//!
//! A [`DispatchPlan`] records, for every launch of a compiled request, the
//! complete configuration register file the accelerator must observe
//! (hardware register index → value) — exactly the launch trace the accfg
//! interpreter defines as a program's observable behaviour, mapped through
//! the target descriptor's field table. Dispatching a plan onto a worker
//! whose accelerator already holds part of that state only writes the
//! difference: the paper's deduplication (Section 5.4), applied *across
//! requests* at serve time via [`accfg::regstate`].
//!
//! RoCC-style targets write configuration in register *pairs*; a pair is
//! rewritten whenever either half differs, which is why pair-granular
//! interfaces save fewer writes (Section 6.1) — the delta machinery here
//! reproduces that effect.

use crate::error::ServeError;
use accfg::interp::ExecTrace;
use accfg::regstate;
use accfg_sim::{Program, ProgramBuilder};
use accfg_targets::{AcceleratorDescriptor, ConfigStyle};
use std::collections::BTreeMap;

/// A concrete register file keyed by hardware configuration-register index.
pub type RegMap = BTreeMap<u16, i64>;

/// The full register file one launch must observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSpec {
    /// Register index → value at launch time.
    pub registers: RegMap,
}

/// Everything the dispatcher needs to replay a compiled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchPlan {
    /// The target's configuration style (write granularity and launch
    /// mechanism).
    pub style: ConfigStyle,
    /// Per-launch register files, in program order.
    pub launches: Vec<LaunchSpec>,
    /// Register writes a dispatch onto a *blank* register file performs —
    /// the cost the module cache quotes for a cold worker.
    pub cold_writes: u64,
}

/// One emitted configuration write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteCmd {
    /// A single CSR/MMIO register write.
    Csr {
        /// Register index.
        reg: u16,
        /// Value written.
        value: i64,
    },
    /// A RoCC command carrying one register pair (`2·funct`, `2·funct+1`).
    Rocc {
        /// Function selector.
        funct: u8,
        /// Low-half payload.
        lo: i64,
        /// High-half payload.
        hi: i64,
    },
}

impl DispatchPlan {
    /// Builds a plan from an interpreter trace, mapping the trace's field
    /// names to hardware registers through `desc`'s field table.
    ///
    /// # Errors
    /// Fails if the trace references a field the descriptor does not
    /// declare, or if a field maps into a RoCC launch-semantic pair (those
    /// registers belong to the launch command).
    pub fn from_trace(trace: &ExecTrace, desc: &AcceleratorDescriptor) -> Result<Self, ServeError> {
        let mut launches = Vec::with_capacity(trace.launches.len());
        for record in &trace.launches {
            let mut registers = RegMap::new();
            for (name, &value) in &record.registers {
                let spec = desc.field(name).ok_or_else(|| ServeError::UnknownField {
                    accelerator: desc.name.clone(),
                    field: name.clone(),
                })?;
                if let ConfigStyle::RoccPairs { launch_funct } = desc.style {
                    if spec.reg / 2 == u16::from(launch_funct) {
                        return Err(ServeError::LaunchPairField {
                            accelerator: desc.name.clone(),
                            field: name.clone(),
                        });
                    }
                }
                registers.insert(spec.reg, value);
            }
            launches.push(LaunchSpec { registers });
        }
        let mut plan = Self {
            style: desc.style,
            launches,
            cold_writes: 0,
        };
        plan.cold_writes = {
            let mut blank = RegMap::new();
            plan.launches
                .iter()
                .map(|l| delta_writes(&mut blank, l, plan.style).len() as u64)
                .sum()
        };
        Ok(plan)
    }

    /// `true` if this plan can be replayed on a worker running `desc`:
    /// the plan's configuration style (write granularity and launch
    /// mechanism) must match the worker's. Heterogeneous pools group
    /// differently provisioned platform variants behind one family; this
    /// is the dispatch-level half of the compatibility contract — the
    /// pool-construction half ([`AcceleratorDescriptor::plan_compatible`])
    /// additionally requires identical field tables so compiled register
    /// indices keep their meaning.
    pub fn executable_on(&self, desc: &AcceleratorDescriptor) -> bool {
        self.style == desc.style
    }

    /// The register writes a dispatch would emit against `resident`,
    /// without mutating it — the affinity scheduler's scoring function.
    pub fn writes_against(&self, resident: &RegMap) -> u64 {
        let mut resident = resident.clone();
        self.apply_writes(&mut resident)
    }

    /// Counts the register writes a dispatch emits against `resident`
    /// while advancing `resident` to the plan's final launch state — the
    /// scheduler's shadow-commit step, and the write count the cost model
    /// maps to a warmth bucket.
    pub fn apply_writes(&self, resident: &mut RegMap) -> u64 {
        self.launches
            .iter()
            .map(|l| delta_writes(resident, l, self.style).len() as u64)
            .sum()
    }

    /// Builds the executable delta program that moves `resident` to this
    /// plan's launch states (applying the deltas to `resident`), and
    /// returns it together with the number of configuration register
    /// writes it carries.
    ///
    /// This is the single place dispatch programs are assembled: pool
    /// workers replay it per request, and the module cache runs it at
    /// build time to measure the cold and warm cycle costs the scheduler
    /// predicts queue depth with.
    ///
    /// Debug and `validate`-feature builds additionally run
    /// [`DispatchPlan::verify_delta_reconstruction`] over the assembled
    /// program and panic on a proof failure — emitting a dispatch that
    /// launches with the wrong register file must never leave this
    /// function.
    pub fn delta_program(&self, resident: &mut RegMap) -> (Program, u64) {
        #[cfg(any(debug_assertions, feature = "validate"))]
        let start = resident.clone();
        let mut writes = 0u64;
        let mut pb = ProgramBuilder::new();
        for launch in &self.launches {
            for cmd in delta_writes(resident, launch, self.style) {
                writes += 1;
                match cmd {
                    WriteCmd::Csr { reg, value } => {
                        let r = pb.reg();
                        pb.li(r, value);
                        pb.csr_write(reg, r);
                    }
                    WriteCmd::Rocc { funct, lo, hi } => {
                        let r1 = pb.reg();
                        let r2 = pb.reg();
                        pb.li(r1, lo);
                        pb.li(r2, hi);
                        pb.rocc(funct, r1, r2);
                    }
                }
            }
            match self.style {
                ConfigStyle::Csr => pb.launch(),
                ConfigStyle::RoccPairs { launch_funct } => {
                    // the launch-semantic command carries its reserved pair
                    // with a zero payload: DispatchPlan::from_trace rejects
                    // any field mapping into this pair, so no resident state
                    // can ever live there
                    let r1 = pb.reg();
                    let r2 = pb.reg();
                    pb.li(r1, 0);
                    pb.li(r2, 0);
                    pb.rocc(launch_funct, r1, r2);
                }
            }
        }
        pb.await_idle();
        pb.halt();
        let program = pb.finish();
        #[cfg(any(debug_assertions, feature = "validate"))]
        if let Err(e) = self.verify_delta_reconstruction(&program, &start) {
            panic!("delta-dispatch proof check failed: {e}");
        }
        (program, writes)
    }

    /// Proof check for delta dispatch: symbolically replays `program`'s
    /// instruction stream from the `start` register file and asserts that
    /// at every launch command the reconstructed file carries exactly the
    /// values this plan's corresponding [`LaunchSpec`] requires — the
    /// runtime-level analogue of the compiler's translation validation,
    /// checking the *emitted instructions* rather than the emitter's own
    /// bookkeeping.
    ///
    /// # Errors
    /// Describes the first divergence: a register holding the wrong value
    /// at a launch, a launch count mismatch, or an instruction a delta
    /// program must never contain.
    pub fn verify_delta_reconstruction(
        &self,
        program: &Program,
        start: &RegMap,
    ) -> Result<(), String> {
        use accfg_sim::Inst;
        let launch_funct = match self.style {
            ConfigStyle::RoccPairs { launch_funct } => Some(launch_funct),
            ConfigStyle::Csr => None,
        };
        let mut env: BTreeMap<u32, i64> = BTreeMap::new();
        let mut regs = start.clone();
        let mut next_launch = 0usize;
        let check_launch = |regs: &RegMap, next_launch: &mut usize| -> Result<(), String> {
            let Some(launch) = self.launches.get(*next_launch) else {
                return Err(format!(
                    "program issues launch #{} but the plan has only {}",
                    *next_launch,
                    self.launches.len()
                ));
            };
            for (&reg, &expected) in &launch.registers {
                match regs.get(&reg) {
                    Some(&got) if got == expected => {}
                    got => {
                        return Err(format!(
                            "launch #{}: register {reg} should hold {expected}, \
                             reconstruction has {}",
                            *next_launch,
                            got.map_or("<unwritten>".to_string(), |v| v.to_string()),
                        ))
                    }
                }
            }
            *next_launch += 1;
            Ok(())
        };
        for inst in program.insts() {
            match *inst {
                Inst::Li { rd, imm } => {
                    env.insert(rd.0, imm);
                }
                Inst::CsrWrite { csr, rs } => {
                    let value = *env
                        .get(&rs.0)
                        .ok_or_else(|| format!("csr_write {csr} reads unset host register {rs}"))?;
                    regs.insert(csr, value);
                }
                Inst::RoccCmd { funct, rs1, rs2 } => {
                    if launch_funct == Some(funct) {
                        check_launch(&regs, &mut next_launch)?;
                        continue;
                    }
                    let read = |r: accfg_sim::Reg| {
                        env.get(&r.0)
                            .copied()
                            .ok_or_else(|| format!("rocc {funct} reads unset host register {r}"))
                    };
                    let base = u16::from(funct) * 2;
                    regs.insert(base, read(rs1)?);
                    regs.insert(base + 1, read(rs2)?);
                }
                Inst::Launch => check_launch(&regs, &mut next_launch)?,
                Inst::AwaitIdle | Inst::Halt => {}
                ref other => {
                    return Err(format!(
                        "delta programs never contain {other:?}; emitter is broken"
                    ))
                }
            }
        }
        if next_launch != self.launches.len() {
            return Err(format!(
                "program issues {next_launch} launches, plan requires {}",
                self.launches.len()
            ));
        }
        Ok(())
    }
}

/// Computes the writes that move `resident` to `launch`'s register file,
/// applying them to `resident`.
///
/// CSR targets write single registers; RoCC targets write whole pairs, so
/// a pair with one stale half rewrites both (a half the launch file never
/// programs is driven to 0, the lowering's zero-register fallback).
pub fn delta_writes(
    resident: &mut RegMap,
    launch: &LaunchSpec,
    style: ConfigStyle,
) -> Vec<WriteCmd> {
    match style {
        ConfigStyle::Csr => regstate::diff(resident, &launch.registers)
            .into_iter()
            .map(|(reg, value)| {
                resident.insert(reg, value);
                WriteCmd::Csr { reg, value }
            })
            .collect(),
        ConfigStyle::RoccPairs { .. } => {
            let mut functs: Vec<u16> = regstate::diff(resident, &launch.registers)
                .into_iter()
                .map(|(reg, _)| reg / 2)
                .collect();
            functs.dedup(); // diff is reg-sorted, so pair ids arrive grouped
            functs
                .into_iter()
                .map(|funct| {
                    // halves the launch file never programs are driven to 0
                    // (the lowering's zero-register fallback); never to the
                    // resident value, so a warm-start dispatch can only
                    // write a subset of what a cold one writes
                    let half = |reg: u16| launch.registers.get(&reg).copied().unwrap_or(0);
                    let lo = half(funct * 2);
                    let hi = half(funct * 2 + 1);
                    resident.insert(funct * 2, lo);
                    resident.insert(funct * 2 + 1, hi);
                    WriteCmd::Rocc {
                        funct: funct as u8,
                        lo,
                        hi,
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(regs: &[(u16, i64)]) -> LaunchSpec {
        LaunchSpec {
            registers: regs.iter().copied().collect(),
        }
    }

    #[test]
    fn csr_delta_writes_only_changes() {
        let mut resident = RegMap::from([(0, 5), (1, 7)]);
        let cmds = delta_writes(
            &mut resident,
            &launch(&[(0, 5), (1, 8), (2, 9)]),
            ConfigStyle::Csr,
        );
        assert_eq!(
            cmds,
            vec![
                WriteCmd::Csr { reg: 1, value: 8 },
                WriteCmd::Csr { reg: 2, value: 9 }
            ]
        );
        assert_eq!(resident, RegMap::from([(0, 5), (1, 8), (2, 9)]));
    }

    #[test]
    fn rocc_delta_writes_whole_pairs() {
        let style = ConfigStyle::RoccPairs { launch_funct: 13 };
        let mut resident = RegMap::from([(0, 1), (1, 2), (2, 3), (3, 4)]);
        // only register 1 changes: its pair (0, 1) is rewritten, pair (2, 3)
        // is untouched
        let cmds = delta_writes(
            &mut resident,
            &launch(&[(0, 1), (1, 9), (2, 3), (3, 4)]),
            style,
        );
        assert_eq!(
            cmds,
            vec![WriteCmd::Rocc {
                funct: 0,
                lo: 1,
                hi: 9
            }]
        );
        assert_eq!(resident[&1], 9);
    }

    #[test]
    fn rocc_unprogrammed_half_defaults_to_zero() {
        let style = ConfigStyle::RoccPairs { launch_funct: 13 };
        let mut resident = RegMap::new();
        let cmds = delta_writes(&mut resident, &launch(&[(4, 7)]), style);
        assert_eq!(
            cmds,
            vec![WriteCmd::Rocc {
                funct: 2,
                lo: 7,
                hi: 0
            }]
        );
        assert_eq!(resident[&5], 0);
    }

    #[test]
    fn identical_launch_needs_no_writes() {
        for style in [
            ConfigStyle::Csr,
            ConfigStyle::RoccPairs { launch_funct: 13 },
        ] {
            let l = launch(&[(0, 1), (1, 2), (6, 3)]);
            let mut resident = RegMap::new();
            let first = delta_writes(&mut resident, &l, style);
            assert!(!first.is_empty());
            assert!(delta_writes(&mut resident, &l, style).is_empty());
        }
    }

    #[test]
    fn plans_execute_only_on_matching_config_styles() {
        let csr_plan = DispatchPlan {
            style: ConfigStyle::Csr,
            launches: vec![launch(&[(0, 1)])],
            cold_writes: 1,
        };
        let rocc_plan = DispatchPlan {
            style: ConfigStyle::RoccPairs { launch_funct: 13 },
            launches: vec![launch(&[(0, 1)])],
            cold_writes: 1,
        };
        let gemmini = AcceleratorDescriptor::gemmini();
        let turbo = AcceleratorDescriptor::gemmini_turbo();
        let opengemm = AcceleratorDescriptor::opengemm();
        let lite = AcceleratorDescriptor::opengemm_lite();
        // provisioning variants share the interface; families don't mix
        assert!(rocc_plan.executable_on(&gemmini));
        assert!(rocc_plan.executable_on(&turbo));
        assert!(!rocc_plan.executable_on(&opengemm));
        assert!(csr_plan.executable_on(&opengemm));
        assert!(csr_plan.executable_on(&lite));
        assert!(!csr_plan.executable_on(&gemmini));
    }

    #[test]
    fn cold_writes_and_scoring_agree() {
        let plan = DispatchPlan {
            style: ConfigStyle::Csr,
            launches: vec![launch(&[(0, 1), (1, 2)]), launch(&[(0, 3), (1, 2)])],
            cold_writes: 0,
        };
        // cold: 2 writes for the first launch + 1 for the second
        assert_eq!(plan.writes_against(&RegMap::new()), 3);
        // a resident file matching launch 0 exactly skips its writes
        let resident = RegMap::from([(0, 1), (1, 2)]);
        assert_eq!(plan.writes_against(&resident), 1);
        // the plan's own final state still pays launch 0's delta (register
        // 0 cycles 3 → 1) plus launch 1's delta (1 → 3)
        let warm = RegMap::from([(0, 3), (1, 2)]);
        assert_eq!(plan.writes_against(&warm), 2);
    }

    #[test]
    fn delta_program_write_count_matches_scoring() {
        let plan = DispatchPlan {
            style: ConfigStyle::Csr,
            launches: vec![launch(&[(0, 1), (1, 2)]), launch(&[(0, 3), (1, 2)])],
            cold_writes: 0,
        };
        let mut resident = RegMap::new();
        let quoted = plan.writes_against(&resident);
        let (program, cold) = plan.delta_program(&mut resident);
        assert_eq!(cold, quoted);
        assert!(!program.is_empty());
        // a warm repeat still pays the intra-plan register cycling, but
        // never more than cold, and the quote agrees with the build
        let quoted_warm = plan.writes_against(&resident);
        let (_, warm) = plan.delta_program(&mut resident);
        assert_eq!(warm, quoted_warm);
        assert!(warm <= cold);
    }

    #[test]
    fn delta_reconstruction_proof_accepts_emitted_programs() {
        let plans = [
            DispatchPlan {
                style: ConfigStyle::Csr,
                launches: vec![launch(&[(0, 1), (1, 2)]), launch(&[(0, 3), (1, 2)])],
                cold_writes: 0,
            },
            DispatchPlan {
                style: ConfigStyle::RoccPairs { launch_funct: 13 },
                launches: vec![launch(&[(0, 1), (3, 2)]), launch(&[(0, 1), (3, 9), (4, 5)])],
                cold_writes: 0,
            },
        ];
        for plan in &plans {
            // cold and warm assemblies both reconstruct exactly
            let mut resident = RegMap::new();
            let start = resident.clone();
            let (program, _) = plan.delta_program(&mut resident);
            plan.verify_delta_reconstruction(&program, &start).unwrap();
            let warm_start = resident.clone();
            let (warm_program, _) = plan.delta_program(&mut resident);
            plan.verify_delta_reconstruction(&warm_program, &warm_start)
                .unwrap();
            // a warm program replayed from a blank file must fail: the
            // elided writes are exactly what the blank file is missing
            if plan.writes_against(&RegMap::new()) > 0 {
                assert!(plan
                    .verify_delta_reconstruction(&warm_program, &RegMap::new())
                    .is_err());
            }
        }
    }

    #[test]
    fn delta_reconstruction_proof_catches_a_dropped_write() {
        let plan = DispatchPlan {
            style: ConfigStyle::Csr,
            launches: vec![launch(&[(0, 1), (1, 2)])],
            cold_writes: 0,
        };
        // hand-assembled dispatch that forgets register 1
        let mut pb = ProgramBuilder::new();
        let r = pb.reg();
        pb.li(r, 1);
        pb.csr_write(0, r);
        pb.launch();
        pb.await_idle();
        pb.halt();
        let err = plan
            .verify_delta_reconstruction(&pb.finish(), &RegMap::new())
            .unwrap_err();
        assert!(err.contains("register 1"), "{err}");
        assert!(err.contains("should hold 2"), "{err}");

        // and one that forgets the launch entirely
        let mut pb = ProgramBuilder::new();
        let r = pb.reg();
        pb.li(r, 1);
        pb.csr_write(0, r);
        pb.halt();
        let err = plan
            .verify_delta_reconstruction(&pb.finish(), &RegMap::new())
            .unwrap_err();
        assert!(err.contains("launches"), "{err}");
    }

    #[test]
    fn warm_dispatch_never_writes_more_than_cold() {
        // the guarantee behind Policy::ConfigAffinity vs. the cold FIFO
        // baseline, exercised over both styles and awkward resident files
        let plans = [
            DispatchPlan {
                style: ConfigStyle::Csr,
                launches: vec![
                    launch(&[(0, 1), (1, 2), (4, 0)]),
                    launch(&[(0, 3), (1, 2), (4, 5)]),
                    launch(&[(0, 1), (1, 2), (4, 0)]),
                ],
                cold_writes: 0,
            },
            DispatchPlan {
                style: ConfigStyle::RoccPairs { launch_funct: 13 },
                launches: vec![launch(&[(0, 1), (3, 2)]), launch(&[(0, 1), (3, 9), (4, 5)])],
                cold_writes: 0,
            },
        ];
        let residents = [
            RegMap::new(),
            RegMap::from([(0, 1), (1, 2)]),
            RegMap::from([(0, 99), (1, 98), (3, 97), (4, 96), (5, 95)]),
            RegMap::from([(2, 7)]),
        ];
        for plan in &plans {
            let cold = plan.writes_against(&RegMap::new());
            for resident in &residents {
                assert!(
                    plan.writes_against(resident) <= cold,
                    "warm {} > cold {cold} for {resident:?}",
                    plan.writes_against(resident)
                );
            }
        }
    }
}
