//! # accfg-runtime: a config-affinity dispatch runtime
//!
//! The paper eliminates redundant accelerator configuration *within* one
//! compiled program (deduplication, hoisting, overlap — Sections 5.4 and
//! 5.5). A serving system sees the same redundancy *across requests*:
//! consecutive requests with similar shapes reprogram identical
//! configuration registers on every dispatch. This crate operationalizes
//! the paper's state-tracking insight at the serving layer, turning the
//! `accfg` stack into a runtime that serves open-loop request streams over
//! a pool of simulated accelerators:
//!
//! - a **compiled-module cache** ([`ModuleCache`]) keyed by
//!   `(accelerator, shape, opt level)`, so repeated shapes skip the
//!   IR-build → pass-pipeline → lower path entirely;
//! - a **config-affinity scheduler** ([`Scheduler`], [`Policy`]) that
//!   mirrors each worker's last-programmed register file and routes each
//!   request to the worker whose resident state minimizes new
//!   configuration writes, with a FIFO round-robin baseline;
//! - **same-config batching** (`max_batch` in [`ServeConfig`]) coalescing
//!   adjacent same-module requests onto one worker;
//! - **delta dispatch** ([`Worker`], [`DispatchPlan`]): workers own
//!   persistent [`Machine`](accfg_sim::Machine)s whose configuration
//!   registers survive between requests, so dispatched programs carry only
//!   the writes that change state — the dynamic counterpart of the
//!   `accfg-dedup` pass, built on [`accfg::regstate`];
//! - **metrics** ([`ServeMetrics`]): requests, simulated cycles, p50/p99
//!   latency, configuration writes and bytes (vs. the cold cost), cache
//!   hit rate.
//!
//! Everything is deterministic: routing happens before jobs reach the
//! worker threads and latencies are replayed from per-request cycle
//! counts, so a stream serves to bit-identical reports on every run.
//!
//! ```
//! use accfg_runtime::{PoolConfig, Runtime, ServeConfig};
//! use accfg_targets::AcceleratorDescriptor;
//! use accfg_workloads::{mixed_serving_classes, TrafficConfig};
//!
//! let stream = TrafficConfig {
//!     classes: mixed_serving_classes(),
//!     requests: 64,
//!     mean_gap: 100,
//!     seed: 7,
//! }
//! .open_loop_stream()?;
//! let mut runtime = Runtime::new(PoolConfig::new(vec![
//!     AcceleratorDescriptor::gemmini(),
//!     AcceleratorDescriptor::opengemm(),
//! ]));
//! let report = runtime.serve(&stream, &ServeConfig::default())?;
//! assert_eq!(report.metrics.check_failures, 0);
//! assert!(report.metrics.setup_writes < report.metrics.cold_setup_writes);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod metrics;
pub mod plan;
pub mod runtime;
pub mod scheduler;
pub mod worker;

pub use cache::{build_module, CacheKey, CacheStats, CompiledModule, CostModel, ModuleCache};
pub use error::ServeError;
pub use metrics::{
    class_label, ClassLatency, DepthHistogram, LatencyStats, ServeMetrics, WorkerMetrics,
    DEPTH_BUCKETS,
};
pub use plan::{delta_writes, DispatchPlan, LaunchSpec, RegMap, WriteCmd};
pub use runtime::{PoolConfig, Runtime, ServeConfig, ServeReport};
pub use scheduler::{Policy, Scheduler};
pub use worker::{Completion, Job, Worker};
