//! # accfg-runtime: a config-affinity dispatch runtime
//!
//! The paper eliminates redundant accelerator configuration *within* one
//! compiled program (deduplication, hoisting, overlap — Sections 5.4 and
//! 5.5). A serving system sees the same redundancy *across requests*:
//! consecutive requests with similar shapes reprogram identical
//! configuration registers on every dispatch. This crate operationalizes
//! the paper's state-tracking insight at the serving layer, turning the
//! `accfg` stack into a runtime that serves open-loop request streams over
//! a pool of simulated accelerators:
//!
//! - a **compiled-module cache** ([`ModuleCache`]) keyed by
//!   `(accelerator, shape, opt level)`, so repeated shapes skip the
//!   IR-build → pass-pipeline → lower path entirely;
//! - a **pluggable scheduler** ([`Scheduler`] = [`LoadTracker`]
//!   accounting + a [`SchedulePolicy`] implementation, selected by
//!   [`Policy`]): the tracker mirrors each worker's last-programmed
//!   register file and holds load as *estimated outstanding cycles*
//!   (predicted by per-platform [`CostModel`] anchors); policies route
//!   over it — round-robin (`fifo`, `fifo+elide`), write-minimizing
//!   within the [`LOAD_SLACK_CYCLES`] horizon (`affinity`),
//!   completion-cycle-minimizing (`cost`), the policy heterogeneous
//!   pools need, or frequency-state-aware (`thermal`), which prices
//!   each candidate at the DVFS mode the tracker's shadow automaton
//!   predicts and steers traffic out of contended busy windows;
//! - **heterogeneous pools** ([`PoolGroup`]): one routing family may mix
//!   differently provisioned platform variants (same configuration
//!   interface, different geometry/speed — e.g.
//!   [`AcceleratorDescriptor::gemmini_turbo`](accfg_targets::AcceleratorDescriptor::gemmini_turbo));
//!   modules compile once
//!   against the group's base platform, compatibility is validated at
//!   serve time, and cost estimates re-anchor per variant;
//! - an **online cost refiner** ([`CostRefiner`]): the cost model's
//!   analytic anchors are refined as the run executes, by an EWMA of
//!   measured dispatch cycles per `(module, warmth bucket)` — queue
//!   estimates learn the stream's true costs without any build-time
//!   profiling runs (`refine_cost` in [`ServeConfig`]);
//! - **same-config batching with a queue-depth-aware cutoff**
//!   (`max_batch` / `batch_cutoff` in [`ServeConfig`]): same-module
//!   requests adjacent in their group's arrival order coalesce onto one
//!   worker, until the target's estimated outstanding cycles reach the
//!   slack horizon — amortizing configuration without building the deep
//!   tail queues uncapped batching pays;
//! - **delta dispatch** ([`Worker`], [`DispatchPlan`]): workers own
//!   persistent [`Machine`](accfg_sim::Machine)s whose configuration
//!   registers survive between requests, so dispatched programs carry only
//!   the writes that change state — the dynamic counterpart of the
//!   `accfg-dedup` pass, built on [`accfg::regstate`];
//! - **persistent warm starts** ([`persist`] over the `accfg-store` log):
//!   point `store` in [`ServeConfig`] at a store file and the serve
//!   restores previously compiled modules and learned EWMA cost state on
//!   start, then flushes its own back on finish — a fresh process skips
//!   the compile cold starts and prediction re-convergence the fleet
//!   already paid for, with provenance reported in [`WarmStartStats`];
//! - **metrics** ([`ServeMetrics`]): requests, simulated cycles, p50/p99
//!   latency, configuration writes and bytes (vs. the cold cost), cache
//!   hit rate, and observed-vs-predicted cycle error for both predictors
//!   ([`PredictionStats`]).
//!
//! Everything is deterministic: routing happens at simulated-time decision
//! points before jobs reach the worker threads, cost observations retire
//! on the simulated clock, and latencies are replayed from per-request
//! cycle counts — so a stream serves to bit-identical reports on every
//! run. The full design is documented in `docs/ARCHITECTURE.md`.
//!
//! ```
//! use accfg_runtime::{PoolConfig, Runtime, ServeConfig};
//! use accfg_targets::AcceleratorDescriptor;
//! use accfg_workloads::{mixed_serving_classes, TrafficConfig};
//!
//! let stream = TrafficConfig {
//!     classes: mixed_serving_classes(),
//!     requests: 64,
//!     mean_gap: 100,
//!     seed: 7,
//! }
//! .open_loop_stream()?;
//! let mut runtime = Runtime::new(PoolConfig::new(vec![
//!     AcceleratorDescriptor::gemmini(),
//!     AcceleratorDescriptor::opengemm(),
//! ]));
//! let report = runtime.serve(&stream, &ServeConfig::default())?;
//! assert_eq!(report.metrics.check_failures, 0);
//! assert!(report.metrics.setup_writes < report.metrics.cold_setup_writes);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! A minimal serve over a hand-built three-shape mix (the skeleton of
//! `examples/serving.rs`), batching enabled with the default cutoff —
//! note the warm repeats land as cache hits and the refined estimates
//! end up strictly closer to the observed cycles than the anchors:
//!
//! ```
//! use accfg_runtime::{Policy, PoolConfig, Runtime, ServeConfig};
//! use accfg_targets::AcceleratorDescriptor;
//! use accfg_workloads::{MatmulSpec, TrafficClass, TrafficConfig};
//!
//! let classes = vec![
//!     TrafficClass {
//!         accelerator: "opengemm".into(),
//!         spec: MatmulSpec::opengemm_paper(16)?,
//!         weight: 4,
//!     },
//!     TrafficClass {
//!         accelerator: "opengemm".into(),
//!         spec: MatmulSpec::opengemm_paper(24)?,
//!         weight: 2,
//!     },
//!     TrafficClass {
//!         accelerator: "gemmini".into(),
//!         spec: MatmulSpec::gemmini_paper(32)?,
//!         weight: 2,
//!     },
//! ];
//! let stream = TrafficConfig {
//!     classes,
//!     requests: 96,
//!     mean_gap: 120,
//!     seed: 11,
//! }
//! .open_loop_stream()?;
//!
//! let mut runtime = Runtime::new(PoolConfig::new(vec![
//!     AcceleratorDescriptor::gemmini(),
//!     AcceleratorDescriptor::opengemm(),
//! ]));
//! let report = runtime.serve(
//!     &stream,
//!     &ServeConfig {
//!         policy: Policy::ConfigAffinity,
//!         max_batch: 8,
//!         ..ServeConfig::default()
//!     },
//! )?;
//!
//! assert_eq!(report.metrics.requests, 96);
//! assert_eq!(report.metrics.check_failures, 0);
//! // three shapes compile once; everything else hits the module cache
//! assert_eq!(report.metrics.cache.misses, 3);
//! // online refinement beats the static anchors on this stream
//! let p = report.metrics.prediction;
//! assert!(p.ewma_abs_error < p.anchor_abs_error);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod persist;
pub mod plan;
pub mod policy;
pub mod runtime;
pub mod scheduler;
pub mod worker;

pub use cache::{
    build_module, CacheKey, CacheStats, CompiledModule, CostModel, CostRefiner, CostRow,
    ModuleCache, COST_ROWS, COST_ROW_AGNOSTIC, WARMTH_BUCKETS,
};
pub use engine::ServeMode;
pub use error::ServeError;
pub use metrics::{
    class_label, ClassLatency, DepthHistogram, LatencyStats, PredictionStats, ServeMetrics,
    WarmStartStats, WorkerMetrics, DEPTH_BUCKETS,
};
pub use persist::{
    decode_module, encode_module, load_costs, load_modules, save_costs, save_modules,
    CostSnapshotEntry,
};
pub use plan::{delta_writes, DispatchPlan, LaunchSpec, RegMap, WriteCmd};
pub use policy::{AffinityPolicy, CostPolicy, FifoPolicy, Policy, SchedulePolicy, ThermalPolicy};
pub use runtime::{
    measured_class_service_times, PoolConfig, PoolGroup, PredictionSample, Runtime, ServeBudget,
    ServeConfig, ServeReport,
};
pub use scheduler::{CommitOutcome, LoadTracker, Scheduler, LOAD_SLACK_CYCLES};
pub use worker::{Completion, Job, Worker};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for the scheduler/policy unit tests.
    use crate::cache::{build_module, CompiledModule};
    use accfg::pipeline::OptLevel;
    use accfg_targets::AcceleratorDescriptor;
    use accfg_workloads::MatmulSpec;

    /// A uniform pool of `workers` OpenGeMM platform descriptors.
    pub(crate) fn uniform(workers: usize) -> Vec<AcceleratorDescriptor> {
        vec![AcceleratorDescriptor::opengemm(); workers]
    }

    /// A single-invocation module: same-shape repeats are zero-write.
    pub(crate) fn single_tile_module(size: i64) -> CompiledModule {
        let spec = MatmulSpec::new((size, size, size), (size, size, size)).unwrap();
        assert_eq!(spec.invocations(), 1);
        build_module(&AcceleratorDescriptor::opengemm(), spec, OptLevel::All).unwrap()
    }
}
