//! Minimal byte codec shared by the typed layers above the store.
//!
//! Encoding is fixed little-endian with length-prefixed strings, so the
//! same logical value always encodes to the same bytes — the property the
//! determinism contract (byte-identical store files for identical runs)
//! rests on. There is no schema evolution here on purpose: the store is a
//! cache of recomputable state, so an incompatible format bump may simply
//! change the magic and start cold.

use crate::error::StoreError;

/// Append-only byte sink with fixed-width little-endian primitives.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a `usize` as a little-endian `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over encoded bytes; every read is bounds-checked and yields
/// [`StoreError::Codec`] on underrun or malformed data.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the reader consumed the whole buffer — trailing bytes
    /// mean the payload was written by a different codec.
    pub fn expect_exhausted(&self, what: &str) -> Result<(), StoreError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(StoreError::codec(format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::codec(format!(
                "need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::codec(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a `usize` stored as a `u64`.
    pub fn usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.u64()?)
            .map_err(|_| StoreError::codec("usize value exceeds platform width"))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::codec("string payload is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_bool(true);
        w.put_usize(123);
        w.put_str("gemmini");
        let bytes = w.finish();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 123);
        assert_eq!(r.str().unwrap(), "gemmini");
        assert!(r.expect_exhausted("primitives").is_ok());
    }

    #[test]
    fn underrun_and_bad_bool_are_codec_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.u32().is_err());
        let mut r = ByteReader::new(&[9]);
        assert!(r.bool().is_err());
        let r = ByteReader::new(&[0]);
        assert!(r.expect_exhausted("x").is_err());
    }

    #[test]
    fn string_length_is_bounds_checked() {
        let mut w = ByteWriter::new();
        w.put_u32(100); // claims 100 bytes, provides none
        let bytes = w.finish();
        assert!(ByteReader::new(&bytes).str().is_err());
    }
}
