//! The on-disk store: a single append-only log file.
//!
//! File layout:
//!
//! ```text
//! +----------+----------------+----------------+ ...
//! | ACFGSTR1 | record | record | record | ...
//! +----------+----------------+----------------+ ...
//!
//! record := [payload_len: u32 LE] [fnv1a32(payload): u32 LE] [payload]
//! payload := [op: u8] [key_len: u32 LE] [key bytes] [value bytes]
//! op      := 0 (put) | 1 (remove tombstone)
//! ```
//!
//! Replay walks the records front to back applying last-write-wins into an
//! in-memory `BTreeMap`. A truncated or checksum-failing record can only be
//! the *tail* of an interrupted append, so replay stops there, reports the
//! drop via [`LogStore::recovery`], and truncates the file back to the last
//! valid record; everything before the corruption survives.
//!
//! Determinism contract: [`LogStore::put`] skips the append when the key
//! already holds the identical value, so re-running an identical workload
//! against an existing store leaves the file byte-for-byte unchanged, and
//! two identical runs against fresh stores produce byte-identical files.
//! Compaction is explicit ([`LogStore::compact`]) and rewrites live entries
//! in sorted key order — by default never triggered implicitly, so it
//! cannot perturb that contract mid-run. Deployments that prefer bounded
//! files over byte-stability can opt in to
//! [`LogStore::set_auto_compact`], which compacts after a
//! [`KeyValueStore::sync`] once the log has doubled past its last
//! compacted size; being keyed to sync points, it is still a
//! deterministic function of the workload.
//!
//! Every applied record also advances a logical *sequence number* (the
//! append age), and the store remembers each key's last-write sequence —
//! [`LogStore::evict_older_than`] uses it to drop cold entries (e.g. cost
//! models for shapes a serving mix stopped sending) without timestamps,
//! which would break run-to-run determinism.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::error::{StoreError, TailCorruption};
use crate::KeyValueStore;

/// First bytes of every store file; doubles as the format version.
pub const MAGIC: &[u8; 8] = b"ACFGSTR1";

const OP_PUT: u8 = 0;
const OP_REMOVE: u8 = 1;

/// 32-bit FNV-1a — enough to catch torn writes, with no dependency.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

fn encode_record(op: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let payload_len = 1 + 4 + key.len() + value.len();
    let mut rec = Vec::with_capacity(8 + payload_len);
    let mut payload = Vec::with_capacity(payload_len);
    payload.push(op);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key);
    payload.extend_from_slice(value);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

/// Append-only log-structured key-value store backed by one file.
#[derive(Debug)]
pub struct LogStore {
    path: PathBuf,
    file: File,
    index: BTreeMap<Vec<u8>, Vec<u8>>,
    recovery: Option<TailCorruption>,
    /// Logical clock: one tick per applied record (replayed or appended).
    seq: u64,
    /// Key → sequence number of its last write.
    ages: BTreeMap<Vec<u8>, u64>,
    /// Compact automatically after a sync once the file doubles past
    /// `compact_baseline`. Off by default (byte-stability contract).
    auto_compact: bool,
    /// File size right after open or the last compaction.
    compact_baseline: u64,
}

impl LogStore {
    /// Opens (creating if absent) the store at `path` and replays its log.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, on a file that does not start with the store
    /// magic, or on a malformed record *body* (a record whose checksum
    /// passes but whose payload is self-inconsistent — that is corruption
    /// beyond a torn tail). A corrupt tail is not an error; see
    /// [`LogStore::recovery`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(StoreError::io("read", &path, &err)),
        };

        let mut index = BTreeMap::new();
        let mut ages = BTreeMap::new();
        let mut seq = 0u64;
        let mut recovery = None;
        let valid_len;
        if bytes.is_empty() {
            fs::write(&path, MAGIC).map_err(|e| StoreError::io("create", &path, &e))?;
            valid_len = MAGIC.len() as u64;
        } else if bytes.len() < MAGIC.len() && MAGIC.starts_with(&bytes) {
            // a strict prefix of the magic is a torn initial create (the
            // process died mid-way through writing the header), not a
            // foreign file: rewrite the magic and recover an empty store
            fs::write(&path, MAGIC).map_err(|e| StoreError::io("create", &path, &e))?;
            valid_len = MAGIC.len() as u64;
            recovery = Some(TailCorruption {
                offset: bytes.len() as u64,
                detail: "truncated store magic".to_string(),
            });
        } else {
            if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
                return Err(StoreError::BadMagic {
                    path: path.display().to_string(),
                });
            }
            let mut offset = MAGIC.len();
            loop {
                if offset == bytes.len() {
                    break;
                }
                let corrupt = |detail: &str| TailCorruption {
                    offset: offset as u64,
                    detail: detail.to_string(),
                };
                if bytes.len() - offset < 8 {
                    recovery = Some(corrupt("truncated record header"));
                    break;
                }
                let payload_len =
                    u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
                let checksum =
                    u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
                if bytes.len() - offset - 8 < payload_len {
                    recovery = Some(corrupt("truncated record payload"));
                    break;
                }
                let payload = &bytes[offset + 8..offset + 8 + payload_len];
                if fnv1a(payload) != checksum {
                    recovery = Some(corrupt("record checksum mismatch"));
                    break;
                }
                Self::apply_payload(&mut index, &mut ages, &mut seq, payload)?;
                offset += 8 + payload_len;
            }
            valid_len = offset as u64;
        }

        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io("open", &path, &e))?;
        if recovery.is_some() {
            file.set_len(valid_len)
                .map_err(|e| StoreError::io("truncate", &path, &e))?;
        }
        Ok(Self {
            path,
            file,
            index,
            recovery,
            seq,
            ages,
            auto_compact: false,
            compact_baseline: valid_len,
        })
    }

    /// Applies one checksum-verified payload to the index, advancing the
    /// logical clock and the key's last-write age.
    fn apply_payload(
        index: &mut BTreeMap<Vec<u8>, Vec<u8>>,
        ages: &mut BTreeMap<Vec<u8>, u64>,
        seq: &mut u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        // The checksum already matched, so a malformed payload here is not
        // a torn write — it is a record this build cannot interpret.
        let malformed = || StoreError::codec("record payload is self-inconsistent");
        if payload.len() < 5 {
            return Err(malformed());
        }
        let op = payload[0];
        let key_len = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
        if payload.len() - 5 < key_len {
            return Err(malformed());
        }
        let key = payload[5..5 + key_len].to_vec();
        let value = payload[5 + key_len..].to_vec();
        match op {
            OP_PUT => {
                *seq += 1;
                ages.insert(key.clone(), *seq);
                index.insert(key, value);
            }
            OP_REMOVE => {
                *seq += 1;
                ages.remove(&key);
                index.remove(&key);
            }
            _ => return Err(malformed()),
        }
        Ok(())
    }

    /// The logical clock: the number of records applied so far, counting
    /// both replayed and freshly appended ones. Identical-value puts are
    /// elided from the log and therefore do not tick it.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The sequence number of `key`'s last write, if the key is live.
    pub fn key_seq(&self, key: &[u8]) -> Option<u64> {
        self.ages.get(key).copied()
    }

    /// Opts in to (or out of) automatic compaction: after each
    /// [`KeyValueStore::sync`], the log is compacted once it has at least
    /// doubled past its size at open or last compaction. Off by default,
    /// because implicit rewrites void the byte-stability contract.
    pub fn set_auto_compact(&mut self, enabled: bool) {
        self.auto_compact = enabled;
    }

    /// Removes every live key last written before sequence `min_seq`,
    /// returning how many were evicted. Appends ordinary tombstones, so
    /// the space is reclaimed by the next [`LogStore::compact`].
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors while appending tombstones; already-evicted
    /// keys stay evicted.
    pub fn evict_older_than(&mut self, min_seq: u64) -> Result<usize, StoreError> {
        let cold: Vec<Vec<u8>> = self
            .ages
            .iter()
            .filter(|&(_, &age)| age < min_seq)
            .map(|(key, _)| key.clone())
            .collect();
        for key in &cold {
            self.remove(key)?;
        }
        Ok(cold.len())
    }

    /// The file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The corrupt tail dropped during the last `open`, if any.
    pub fn recovery(&self) -> Option<&TailCorruption> {
        self.recovery.as_ref()
    }

    /// Rewrites the log to hold exactly the live entries, in sorted key
    /// order, dropping superseded records and tombstones. Atomic: writes a
    /// sibling `.compact` file, syncs it, then renames it over the log.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors; the original file is untouched until the
    /// final rename.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let tmp = self.path.with_extension("compact");
        let mut bytes = MAGIC.to_vec();
        for (key, value) in &self.index {
            bytes.extend_from_slice(&encode_record(OP_PUT, key, value));
        }
        fs::write(&tmp, &bytes).map_err(|e| StoreError::io("write", &tmp, &e))?;
        fs::rename(&tmp, &self.path).map_err(|e| StoreError::io("rename", &self.path, &e))?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StoreError::io("open", &self.path, &e))?;
        self.recovery = None;
        // Renumber ages exactly as a reopen-and-replay of the compacted
        // file would: one put per live key, in sorted key order.
        self.seq = 0;
        self.ages.clear();
        for key in self.index.keys() {
            self.seq += 1;
            self.ages.insert(key.clone(), self.seq);
        }
        self.compact_baseline = bytes.len() as u64;
        Ok(())
    }

    fn append(&mut self, op: u8, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let rec = encode_record(op, key, value);
        self.file
            .write_all(&rec)
            .map_err(|e| StoreError::io("append", &self.path, &e))
    }
}

impl KeyValueStore for LogStore {
    fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.index.get(key).map(Vec::as_slice)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        if self.index.get(key).map(Vec::as_slice) == Some(value) {
            return Ok(()); // identical value: keep the file byte-stable
        }
        self.append(OP_PUT, key, value)?;
        self.seq += 1;
        self.ages.insert(key.to_vec(), self.seq);
        self.index.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn remove(&mut self, key: &[u8]) -> Result<(), StoreError> {
        if !self.index.contains_key(key) {
            return Ok(());
        }
        self.append(OP_REMOVE, key, &[])?;
        self.seq += 1;
        self.ages.remove(key);
        self.index.remove(key);
        Ok(())
    }

    fn keys_with_prefix(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        self.index
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| StoreError::io("sync", &self.path, &e))?;
        if self.auto_compact {
            let len = fs::metadata(&self.path)
                .map_err(|e| StoreError::io("stat", &self.path, &e))?
                .len();
            if len >= 2 * self.compact_baseline.max(64) {
                self.compact()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("accfg_store_unit");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}_{}.log", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn replays_last_write_wins_across_reopen() {
        let path = temp_path("lww");
        {
            let mut store = LogStore::open(&path).unwrap();
            store.put(b"a", b"1").unwrap();
            store.put(b"b", b"2").unwrap();
            store.put(b"a", b"3").unwrap();
            store.remove(b"b").unwrap();
            store.sync().unwrap();
        }
        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.get(b"a"), Some(&b"3"[..]));
        assert_eq!(store.get(b"b"), None);
        assert_eq!(store.len(), 1);
        assert!(store.recovery().is_none());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn identical_puts_leave_the_file_byte_stable() {
        let path = temp_path("stable");
        let mut store = LogStore::open(&path).unwrap();
        store.put(b"k", b"v").unwrap();
        store.sync().unwrap();
        let before = fs::read(&path).unwrap();
        store.put(b"k", b"v").unwrap();
        store.sync().unwrap();
        assert_eq!(fs::read(&path).unwrap(), before);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_dropped_with_recovery_report() {
        let path = temp_path("trunc");
        {
            let mut store = LogStore::open(&path).unwrap();
            store.put(b"keep", b"me").unwrap();
            store.put(b"torn", b"write").unwrap();
            store.sync().unwrap();
        }
        // Tear the final record in half, as an interrupted append would.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let mut store = LogStore::open(&path).unwrap();
        assert_eq!(store.get(b"keep"), Some(&b"me"[..]));
        assert_eq!(store.get(b"torn"), None);
        let recovery = store.recovery().expect("tail drop must be reported");
        assert!(recovery.detail.contains("truncated"));

        // The file was truncated to the valid prefix, so appends resume
        // cleanly and a further reopen sees no corruption.
        store.put(b"torn", b"retry").unwrap();
        store.sync().unwrap();
        let store = LogStore::open(&path).unwrap();
        assert!(store.recovery().is_none());
        assert_eq!(store.get(b"torn"), Some(&b"retry"[..]));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_failing_tail_is_dropped() {
        let path = temp_path("cksum");
        {
            let mut store = LogStore::open(&path).unwrap();
            store.put(b"keep", b"me").unwrap();
            store.put(b"flip", b"bits").unwrap();
            store.sync().unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.get(b"keep"), Some(&b"me"[..]));
        assert_eq!(store.get(b"flip"), None);
        assert!(store
            .recovery()
            .expect("checksum drop must be reported")
            .detail
            .contains("checksum"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_an_error() {
        let path = temp_path("magic");
        fs::write(&path, b"definitely not a store file").unwrap();
        assert!(matches!(
            LogStore::open(&path),
            Err(StoreError::BadMagic { .. })
        ));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_preserves_live_entries_and_shrinks_the_file() {
        let path = temp_path("compact");
        let mut store = LogStore::open(&path).unwrap();
        for round in 0..10u8 {
            store.put(b"hot", &[round]).unwrap();
        }
        store.put(b"dead", b"x").unwrap();
        store.remove(b"dead").unwrap();
        store.sync().unwrap();
        let before = fs::metadata(&path).unwrap().len();

        store.compact().unwrap();
        let after = fs::metadata(&path).unwrap().len();
        assert!(after < before);
        assert_eq!(store.get(b"hot"), Some(&[9u8][..]));
        assert_eq!(store.len(), 1);

        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.get(b"hot"), Some(&[9u8][..]));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn seq_ages_and_eviction_survive_reopen() {
        let path = temp_path("evict");
        {
            let mut store = LogStore::open(&path).unwrap();
            store.put(b"old", b"1").unwrap(); // seq 1
            store.put(b"mid", b"2").unwrap(); // seq 2
            store.put(b"new", b"3").unwrap(); // seq 3
            store.put(b"new", b"3").unwrap(); // elided: no tick
            assert_eq!(store.seq(), 3);
            assert_eq!(store.key_seq(b"old"), Some(1));
            store.sync().unwrap();
        }
        // Reopen replays the same records, so the clock and ages match.
        let mut store = LogStore::open(&path).unwrap();
        assert_eq!(store.seq(), 3);
        assert_eq!(store.key_seq(b"mid"), Some(2));

        let evicted = store.evict_older_than(3).unwrap();
        assert_eq!(evicted, 2);
        assert_eq!(store.get(b"old"), None);
        assert_eq!(store.get(b"mid"), None);
        assert_eq!(store.get(b"new"), Some(&b"3"[..]));
        // Tombstones tick the clock too (seq 4 and 5).
        assert_eq!(store.seq(), 5);
        assert_eq!(store.evict_older_than(3).unwrap(), 0);

        store.sync().unwrap();
        let store = LogStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(b"new"), Some(&b"3"[..]));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn auto_compact_shrinks_a_churning_log_after_sync() {
        let path = temp_path("autocompact");
        let mut store = LogStore::open(&path).unwrap();
        store.set_auto_compact(true);
        for round in 0..200u32 {
            store.put(b"churn", &round.to_le_bytes()).unwrap();
            store.sync().unwrap();
        }
        // Without compaction the file would hold 200 records (> 4 KiB);
        // auto-compaction keeps it near one live record.
        let len = fs::metadata(&path).unwrap().len();
        assert!(len < 512, "auto-compaction left {len} bytes");
        assert_eq!(store.get(b"churn"), Some(&199u32.to_le_bytes()[..]));

        // Ages were renumbered to match what a reopen replays.
        assert_eq!(store.key_seq(b"churn"), Some(store.seq()));
        let reopened = LogStore::open(&path).unwrap();
        assert_eq!(reopened.key_seq(b"churn"), Some(reopened.seq()));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_without_opt_in_never_rewrites_the_file() {
        let path = temp_path("no_autocompact");
        let mut store = LogStore::open(&path).unwrap();
        for round in 0..50u32 {
            store.put(b"churn", &round.to_le_bytes()).unwrap();
        }
        store.sync().unwrap();
        let grown = fs::metadata(&path).unwrap().len();
        store.sync().unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), grown);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prefix_scan_is_sorted() {
        let path = temp_path("prefix");
        let mut store = LogStore::open(&path).unwrap();
        store.put(b"m/b", b"1").unwrap();
        store.put(b"m/a", b"2").unwrap();
        store.put(b"c/a", b"3").unwrap();
        assert_eq!(
            store.keys_with_prefix(b"m/"),
            vec![b"m/a".to_vec(), b"m/b".to_vec()]
        );
        assert!(store.keys_with_prefix(b"z").is_empty());
        fs::remove_file(&path).unwrap();
    }
}
