//! Typed store failures.
//!
//! Errors are `Clone + PartialEq + Eq` so callers (notably
//! `accfg-runtime`'s `ServeError`) can embed them without giving up their
//! own derives; I/O failures are therefore carried as rendered strings
//! rather than as `std::io::Error` values.

use std::error::Error;
use std::fmt;

/// A persistent-store failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O call failed.
    Io {
        /// What the store was doing (`"open"`, `"append"`, `"rename"`, ...).
        op: String,
        /// The file the operation targeted.
        path: String,
        /// The rendered OS error.
        message: String,
    },
    /// The file exists but does not start with the store magic — it is not
    /// an accfg store (or is a store from an incompatible format version).
    BadMagic {
        /// The offending file.
        path: String,
    },
    /// A record or typed payload failed to decode. Unlike a corrupt *tail*
    /// (which replay drops with a warning), a codec failure on a live value
    /// means the store holds data this build cannot interpret.
    Codec {
        /// What failed to decode.
        detail: String,
    },
}

impl StoreError {
    /// Builds an [`StoreError::Io`] from an OS error.
    pub fn io(op: &str, path: &std::path::Path, err: &std::io::Error) -> Self {
        StoreError::Io {
            op: op.to_string(),
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }

    /// Builds a [`StoreError::Codec`].
    pub fn codec(detail: impl Into<String>) -> Self {
        StoreError::Codec {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "store {op} failed for {path}: {message}")
            }
            StoreError::BadMagic { path } => {
                write!(f, "{path} is not an accfg store (bad magic)")
            }
            StoreError::Codec { detail } => write!(f, "store payload corrupt: {detail}"),
        }
    }
}

impl Error for StoreError {}

/// A corrupt tail dropped during replay (satellite: truncated or
/// checksum-failing tail records are recovered from, not panicked on).
///
/// This is a *report*, not an error: the store opened successfully with
/// every record before the corruption, and the file was truncated back to
/// the last valid record so later appends start from a clean prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailCorruption {
    /// Byte offset of the first unusable record.
    pub offset: u64,
    /// Why replay stopped there.
    pub detail: String,
}

impl fmt::Display for TailCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dropped corrupt store tail at offset {}: {}",
            self.offset, self.detail
        )
    }
}
