//! `accfg-store`: durable state for fleet warm starts.
//!
//! The paper's configuration wall is paid twice per process today: once as
//! setup writes (elided by delta dispatch) and once as compile plus
//! cost-model cold starts that every process re-learns from scratch. This
//! crate is the substrate that lets a fleet remember — a dependency-free,
//! log-structured, append-only key-value store that `accfg-runtime` layers
//! its module and cost snapshots on top of:
//!
//! - [`KeyValueStore`] — the storage trait (byte keys, byte values,
//!   sorted prefix scans, explicit `sync`);
//! - [`LogStore`] — the on-disk implementation: one file of
//!   length-prefixed, checksummed records replayed last-write-wins on
//!   open, with explicit [`LogStore::compact`] and torn-tail recovery
//!   (see [`TailCorruption`]);
//! - [`MemStore`] — an in-memory implementation for tests and scratch use;
//! - [`ByteWriter`] / [`ByteReader`] — the fixed little-endian codec the
//!   typed layers encode their payloads with.
//!
//! Everything here is deliberately deterministic: encoding is canonical,
//! scans are sorted, rewriting an identical value is a no-op append. Two
//! identical runs therefore produce byte-identical store files — the
//! property the runtime's persistence tests pin.

#![warn(missing_docs)]

mod codec;
mod error;
mod log;
mod mem;

pub use codec::{ByteReader, ByteWriter};
pub use error::{StoreError, TailCorruption};
pub use log::{LogStore, MAGIC};
pub use mem::MemStore;

/// Byte-oriented key-value storage with sorted scans.
///
/// Implementations must keep scans in ascending byte order and treat
/// re-putting an identical value as observably idempotent; the runtime's
/// determinism contract (identical runs yield byte-identical store files)
/// relies on both.
pub trait KeyValueStore {
    /// The stored value for `key`, if any.
    fn get(&self, key: &[u8]) -> Option<&[u8]>;

    /// Stores `value` under `key`, replacing any previous value.
    ///
    /// # Errors
    /// Fails only on I/O errors in durable implementations.
    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError>;

    /// Removes `key`; removing an absent key is a no-op.
    ///
    /// # Errors
    /// Fails only on I/O errors in durable implementations.
    fn remove(&mut self, key: &[u8]) -> Result<(), StoreError>;

    /// All live keys beginning with `prefix`, in ascending byte order.
    fn keys_with_prefix(&self, prefix: &[u8]) -> Vec<Vec<u8>>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// `true` if the store holds no live entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes buffered writes to durable storage (no-op by default).
    ///
    /// # Errors
    /// Fails only on I/O errors in durable implementations.
    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}
