//! In-memory [`KeyValueStore`] — the trait's second implementation.
//!
//! Used by tests (round-trip proptests don't need a file) and as a scratch
//! target for code that wants the typed module/cost layers without
//! durability.

use std::collections::BTreeMap;

use crate::error::StoreError;
use crate::KeyValueStore;

/// A `BTreeMap`-backed store with no durability.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MemStore {
    index: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KeyValueStore for MemStore {
    fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.index.get(key).map(Vec::as_slice)
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.index.insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn remove(&mut self, key: &[u8]) -> Result<(), StoreError> {
        self.index.remove(key);
        Ok(())
    }

    fn keys_with_prefix(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        self.index
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_map() {
        let mut store = MemStore::new();
        assert!(store.is_empty());
        store.put(b"a", b"1").unwrap();
        store.put(b"a", b"2").unwrap();
        assert_eq!(store.get(b"a"), Some(&b"2"[..]));
        store.remove(b"a").unwrap();
        assert!(store.get(b"a").is_none());
        assert!(store.sync().is_ok());
    }
}
