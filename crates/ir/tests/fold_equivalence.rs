//! Property test: the generic optimization passes (canonicalize, CSE, LICM,
//! DCE) preserve the value of arbitrary arithmetic expression DAGs.
//!
//! A random expression tree over two symbolic inputs is built, anchored by
//! an impure op (`target.csr_write`) so DCE cannot delete it; the anchored
//! value is evaluated with a direct walk before and after the passes.

use accfg_ir::passes::{eval_binary, Canonicalize, Cse, Dce, Licm};
use accfg_ir::{CmpPredicate, FuncBuilder, Module, Opcode, Pass, PassManager, Type, ValueId};
use proptest::prelude::*;
use std::collections::HashMap;

/// A recipe for one expression node.
#[derive(Debug, Clone, Copy)]
enum Node {
    Const(i8),
    Arg(bool),
    /// binary op over two earlier nodes (indices are wrapped)
    Bin(u8, usize, usize),
    Cmp(u8, usize, usize),
    Select(usize, usize, usize),
}

const BIN_OPS: [Opcode; 10] = [
    Opcode::AddI,
    Opcode::SubI,
    Opcode::MulI,
    Opcode::DivUI,
    Opcode::RemUI,
    Opcode::AndI,
    Opcode::OrI,
    Opcode::XOrI,
    Opcode::ShLI,
    Opcode::ShRUI,
];

const PREDS: [CmpPredicate; 8] = [
    CmpPredicate::Eq,
    CmpPredicate::Ne,
    CmpPredicate::Slt,
    CmpPredicate::Sle,
    CmpPredicate::Sgt,
    CmpPredicate::Sge,
    CmpPredicate::Ult,
    CmpPredicate::Ule,
];

fn node() -> impl Strategy<Value = Node> {
    prop_oneof![
        any::<i8>().prop_map(Node::Const),
        any::<bool>().prop_map(Node::Arg),
        (any::<u8>(), 0usize..64, 0usize..64).prop_map(|(o, a, b)| Node::Bin(o, a, b)),
        (any::<u8>(), 0usize..64, 0usize..64).prop_map(|(o, a, b)| Node::Cmp(o, a, b)),
        (0usize..64, 0usize..64, 0usize..64).prop_map(|(c, a, b)| Node::Select(c, a, b)),
    ]
}

/// Builds the DAG, anchored by a csr write of the final node's value.
fn build(nodes: &[Node]) -> Module {
    let mut m = Module::new();
    let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64, Type::I64]);
    let mut values: Vec<ValueId> = Vec::new();
    fn prev(values: &[ValueId], i: usize, b: &mut FuncBuilder<'_>) -> ValueId {
        if values.is_empty() {
            b.const_int(1, Type::I64)
        } else {
            values[i % values.len()]
        }
    }
    for &n in nodes {
        let v = match n {
            Node::Const(c) => b.const_int(i64::from(c), Type::I64),
            Node::Arg(second) => args[usize::from(second)],
            Node::Bin(o, x, y) => {
                let l = prev(&values, x, &mut b);
                let r = prev(&values, y, &mut b);
                b.binary(BIN_OPS[o as usize % BIN_OPS.len()], l, r)
            }
            Node::Cmp(o, x, y) => {
                let l = prev(&values, x, &mut b);
                let r = prev(&values, y, &mut b);
                let c = b.cmpi(PREDS[o as usize % PREDS.len()], l, r);
                // back into i64 land: select(c, l, r)
                b.select(c, l, r)
            }
            Node::Select(c, x, y) => {
                let cv = prev(&values, c, &mut b);
                let zero = b.const_int(0, Type::I64);
                let cond = b.cmpi(CmpPredicate::Ne, cv, zero);
                let l = prev(&values, x, &mut b);
                let r = prev(&values, y, &mut b);
                b.select(cond, l, r)
            }
        };
        values.push(v);
    }
    let root = *values.last().expect("at least one node");
    b.csr_write(0, root);
    b.ret(vec![]);
    m
}

/// Directly evaluates the (straight-line) function body, returning the
/// value written to csr 0.
fn eval(m: &Module, a0: i64, a1: i64) -> i64 {
    let func = m.func_by_name("f").expect("function exists");
    let block = m.body_block(func, 0);
    let params = m.block(block).args.clone();
    let mut env: HashMap<ValueId, i64> = HashMap::new();
    env.insert(params[0], a0);
    env.insert(params[1], a1);
    let mut csr0 = 0;
    for op in m.block_ops(block) {
        let data = m.op(op);
        let get = |env: &HashMap<ValueId, i64>, v: ValueId| *env.get(&v).unwrap_or(&0);
        match data.opcode {
            Opcode::Constant => {
                env.insert(data.results[0], m.int_attr(op, "value").unwrap());
            }
            o if o.is_binary_arith() => {
                let v = eval_binary(o, get(&env, data.operands[0]), get(&env, data.operands[1]))
                    .unwrap();
                env.insert(data.results[0], v);
            }
            Opcode::CmpI => {
                let pred = CmpPredicate::from_name(m.str_attr(op, "predicate").unwrap()).unwrap();
                let v = pred.eval(get(&env, data.operands[0]), get(&env, data.operands[1]));
                env.insert(data.results[0], i64::from(v));
            }
            Opcode::Select => {
                let v = if get(&env, data.operands[0]) != 0 {
                    get(&env, data.operands[1])
                } else {
                    get(&env, data.operands[2])
                };
                env.insert(data.results[0], v);
            }
            Opcode::CsrWrite => csr0 = get(&env, data.operands[0]),
            Opcode::Return => {}
            other => panic!("unexpected op {other}"),
        }
    }
    csr0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn passes_preserve_expression_values(
        nodes in prop::collection::vec(node(), 1..24),
        a0 in any::<i32>(),
        a1 in any::<i32>(),
    ) {
        let (a0, a1) = (i64::from(a0), i64::from(a1));
        let mut m = build(&nodes);
        let before = eval(&m, a0, a1);

        let mut pm = PassManager::new();
        pm.add(Canonicalize).add(Cse).add(Licm).add(Dce);
        pm.run_to_fixpoint(&mut m, 4).expect("pipeline runs");

        let after = eval(&m, a0, a1);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn dce_makes_unanchored_dags_disappear(nodes in prop::collection::vec(node(), 1..16)) {
        // without the csr anchor, everything but func/return must die
        let mut m = build(&nodes);
        let func = m.func_by_name("f").unwrap();
        let anchor = m
            .walk_collect(func)
            .into_iter()
            .find(|&o| m.op(o).opcode == Opcode::CsrWrite)
            .unwrap();
        m.erase_op(anchor);
        Dce.run(&mut m);
        prop_assert_eq!(m.live_op_count(), 2); // func + return
    }
}
