//! The parser must reject malformed input with an error — never panic.

use accfg_ir::parse_module;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        let _ = parse_module(&input);
    }

    #[test]
    fn mutated_valid_ir_never_panics(cut in 0usize..400, insert in "[%@{}()\\[\\]<>=:,\"a-z0-9 ]{0,8}") {
        let valid = r#"
        func.func @f(%p: i64) {
          %lb = arith.constant() {value = 0} : index
          %ub = arith.constant() {value = 4} : index
          %st = arith.constant() {value = 1} : index
          %s0 = accfg.setup "acc" to ("A" = %p) : !accfg.state<"acc">
          %r = scf.for %i = %lb to %ub step %st iter_args(%s = %s0) -> (!accfg.state<"acc">) {
            %s1 = accfg.setup "acc" from %s to ("i" = %i) : !accfg.state<"acc">
            %t = accfg.launch "acc" with %s1 : !accfg.token<"acc">
            accfg.await "acc" %t
            scf.yield(%s1)
          }
          func.return()
        }
        "#;
        let cut = cut.min(valid.len());
        // splice arbitrary characters into the middle of valid IR
        let mutated: String = valid
            .chars()
            .take(cut)
            .chain(insert.chars())
            .chain(valid.chars().skip(cut))
            .collect();
        let _ = parse_module(&mutated);
    }

    #[test]
    fn error_positions_are_in_range(input in "[a-z%@(){}=:0-9\" ]{1,80}") {
        if let Err(e) = parse_module(&input) {
            prop_assert!(e.line >= 1);
            prop_assert!(e.column >= 1);
            // single-line inputs: the error is on line 1
            prop_assert!(e.line <= 2, "line {} for single-line input", e.line);
        }
    }
}
