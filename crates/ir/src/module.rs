//! The IR container: an arena of values, operations, blocks, and regions.
//!
//! A [`Module`] owns everything. Entities are referenced by lightweight
//! copyable ids ([`ValueId`], [`OpId`], [`BlockId`], [`RegionId`]); erased
//! operations leave tombstones so ids stay stable across mutations — the
//! same strategy MLIR uses, minus the pointer chasing.
//!
//! Regions in this IR always contain exactly one block (structured control
//! flow only: `scf.for` / `scf.if`), which is all the paper's passes need.

use crate::attrs::{AttrMap, Attribute};
use crate::op::{OpData, Opcode};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies an SSA value (an op result or a block argument).
    ValueId, "%v"
);
id_type!(
    /// Identifies an operation.
    OpId, "op"
);
id_type!(
    /// Identifies a basic block.
    BlockId, "^bb"
);
id_type!(
    /// Identifies a region (a single-block scope nested under an op).
    RegionId, "region"
);

/// Where an SSA value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueDef {
    /// The `index`-th result of operation `op`.
    OpResult {
        /// Producing operation.
        op: OpId,
        /// Result position.
        index: u32,
    },
    /// The `index`-th argument of block `block`.
    BlockArg {
        /// Owning block.
        block: BlockId,
        /// Argument position.
        index: u32,
    },
}

/// Storage for one SSA value.
#[derive(Debug, Clone)]
pub struct ValueData {
    /// The defining entity.
    pub def: ValueDef,
    /// The value's type.
    pub ty: Type,
}

/// Storage for one block.
#[derive(Debug, Clone, Default)]
pub struct BlockData {
    /// Block arguments (e.g. the induction variable of an `scf.for`).
    pub args: Vec<ValueId>,
    /// Operations, in execution order.
    pub ops: Vec<OpId>,
    /// Owning region, if attached.
    pub parent: Option<RegionId>,
}

/// Storage for one region.
#[derive(Debug, Clone, Default)]
pub struct RegionData {
    /// The blocks of the region. Always exactly one in well-formed IR.
    pub blocks: Vec<BlockId>,
    /// The op owning this region, if attached.
    pub parent: Option<OpId>,
}

/// A use of a value: which op uses it, at which operand position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Use {
    /// The using operation.
    pub op: OpId,
    /// The operand index within that operation.
    pub operand_index: usize,
}

/// The IR module: the arena that owns all IR entities plus the list of
/// top-level functions.
///
/// # Examples
///
/// ```
/// use accfg_ir::{Module, Opcode, Type, Attribute};
///
/// let mut m = Module::new();
/// let region = m.create_region();
/// let block = m.create_block(region);
/// let func = m.create_op(Opcode::Func, vec![], vec![], Default::default(), vec![region]);
/// m.set_attr(func, "sym_name", Attribute::Str("main".into()));
/// m.add_func(func);
/// assert_eq!(m.funcs().len(), 1);
/// # let _ = block;
/// ```
#[derive(Debug, Clone, Default)]
pub struct Module {
    values: Vec<ValueData>,
    ops: Vec<OpData>,
    blocks: Vec<BlockData>,
    regions: Vec<RegionData>,
    funcs: Vec<OpId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    // --- accessors ---------------------------------------------------------

    /// The data of a value.
    ///
    /// # Panics
    /// Panics if the id does not belong to this module.
    pub fn value(&self, v: ValueId) -> &ValueData {
        &self.values[v.index()]
    }

    /// The type of a value.
    pub fn value_type(&self, v: ValueId) -> &Type {
        &self.values[v.index()].ty
    }

    /// The data of an op.
    pub fn op(&self, op: OpId) -> &OpData {
        &self.ops[op.index()]
    }

    /// Mutable access to an op's data.
    ///
    /// Prefer the structured mutators ([`Module::set_attr`],
    /// [`Module::set_operand`], ...) where available.
    pub fn op_mut(&mut self, op: OpId) -> &mut OpData {
        &mut self.ops[op.index()]
    }

    /// The data of a block.
    pub fn block(&self, b: BlockId) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// The data of a region.
    pub fn region(&self, r: RegionId) -> &RegionData {
        &self.regions[r.index()]
    }

    /// Top-level functions, in insertion order.
    pub fn funcs(&self) -> &[OpId] {
        &self.funcs
    }

    /// Looks up a function by its `sym_name` attribute.
    pub fn func_by_name(&self, name: &str) -> Option<OpId> {
        self.funcs
            .iter()
            .copied()
            .find(|&f| self.attr(f, "sym_name").and_then(Attribute::as_str) == Some(name))
    }

    /// An attribute of an op, if present.
    pub fn attr(&self, op: OpId, name: &str) -> Option<&Attribute> {
        self.ops[op.index()].attrs.get(name)
    }

    /// Shorthand for an integer attribute.
    pub fn int_attr(&self, op: OpId, name: &str) -> Option<i64> {
        self.attr(op, name).and_then(Attribute::as_int)
    }

    /// Shorthand for a string attribute.
    pub fn str_attr(&self, op: OpId, name: &str) -> Option<&str> {
        self.attr(op, name).and_then(Attribute::as_str)
    }

    /// `true` if the op has not been erased.
    pub fn is_alive(&self, op: OpId) -> bool {
        self.ops[op.index()].alive
    }

    /// Number of live operations in the whole module (all nesting levels).
    pub fn live_op_count(&self) -> usize {
        self.ops.iter().filter(|o| o.alive).count()
    }

    // --- construction ------------------------------------------------------

    /// Creates a detached region.
    pub fn create_region(&mut self) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionData::default());
        id
    }

    /// Creates a block and appends it to `region`.
    pub fn create_block(&mut self, region: RegionId) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockData {
            parent: Some(region),
            ..Default::default()
        });
        self.regions[region.index()].blocks.push(id);
        id
    }

    /// Appends a new argument of type `ty` to `block`, returning its value.
    pub fn add_block_arg(&mut self, block: BlockId, ty: Type) -> ValueId {
        let index = self.blocks[block.index()].args.len() as u32;
        let v = ValueId(self.values.len() as u32);
        self.values.push(ValueData {
            def: ValueDef::BlockArg { block, index },
            ty,
        });
        self.blocks[block.index()].args.push(v);
        v
    }

    /// Creates a detached operation, materializing one result value per type
    /// in `result_types`.
    pub fn create_op(
        &mut self,
        opcode: Opcode,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: AttrMap,
        regions: Vec<RegionId>,
    ) -> OpId {
        let op = OpId(self.ops.len() as u32);
        let results = result_types
            .into_iter()
            .enumerate()
            .map(|(index, ty)| {
                let v = ValueId(self.values.len() as u32);
                self.values.push(ValueData {
                    def: ValueDef::OpResult {
                        op,
                        index: index as u32,
                    },
                    ty,
                });
                v
            })
            .collect();
        for &r in &regions {
            self.regions[r.index()].parent = Some(op);
        }
        self.ops.push(OpData {
            opcode,
            operands,
            results,
            attrs,
            regions,
            parent: None,
            alive: true,
        });
        op
    }

    /// Registers `func` (an op with opcode [`Opcode::Func`]) as a top-level
    /// function of the module.
    pub fn add_func(&mut self, func: OpId) {
        debug_assert_eq!(self.ops[func.index()].opcode, Opcode::Func);
        self.funcs.push(func);
    }

    // --- structural mutation -------------------------------------------------

    /// Appends `op` at the end of `block`.
    ///
    /// # Panics
    /// Panics if the op is already attached to a block.
    pub fn append_op(&mut self, block: BlockId, op: OpId) {
        assert!(
            self.ops[op.index()].parent.is_none(),
            "op already attached; detach first"
        );
        self.ops[op.index()].parent = Some(block);
        self.blocks[block.index()].ops.push(op);
    }

    /// Inserts `op` into `block` at position `index`.
    ///
    /// # Panics
    /// Panics if the op is already attached, or `index` is out of bounds.
    pub fn insert_op(&mut self, block: BlockId, index: usize, op: OpId) {
        assert!(
            self.ops[op.index()].parent.is_none(),
            "op already attached; detach first"
        );
        self.ops[op.index()].parent = Some(block);
        self.blocks[block.index()].ops.insert(index, op);
    }

    /// Detaches `op` from its parent block (keeping it alive).
    pub fn detach_op(&mut self, op: OpId) {
        if let Some(block) = self.ops[op.index()].parent.take() {
            self.blocks[block.index()].ops.retain(|&o| o != op);
        }
    }

    /// Moves `op` so it sits immediately before `before` in `before`'s block.
    pub fn move_op_before(&mut self, op: OpId, before: OpId) {
        let block = self.ops[before.index()]
            .parent
            .expect("`before` must be attached");
        self.detach_op(op);
        let index = self.op_position(before).expect("`before` must be attached");
        self.insert_op(block, index, op);
    }

    /// Moves `op` so it sits immediately after `after` in `after`'s block.
    pub fn move_op_after(&mut self, op: OpId, after: OpId) {
        let block = self.ops[after.index()]
            .parent
            .expect("`after` must be attached");
        self.detach_op(op);
        let index = self.op_position(after).expect("`after` must be attached") + 1;
        self.insert_op(block, index, op);
    }

    /// The position of `op` within its parent block, if attached.
    pub fn op_position(&self, op: OpId) -> Option<usize> {
        let block = self.ops[op.index()].parent?;
        self.blocks[block.index()].ops.iter().position(|&o| o == op)
    }

    /// Erases `op` and (recursively) everything in its regions.
    ///
    /// The op's results must be unused; this is checked with a debug
    /// assertion (checked builds) because dangling operands would silently
    /// corrupt later passes.
    pub fn erase_op(&mut self, op: OpId) {
        debug_assert!(
            self.ops[op.index()]
                .results
                .iter()
                .all(|&r| self.uses_of(r).is_empty()),
            "erasing op {op} whose results still have uses"
        );
        self.detach_op(op);
        let regions = self.ops[op.index()].regions.clone();
        for r in regions {
            let blocks = self.regions[r.index()].blocks.clone();
            for b in blocks {
                let ops = self.blocks[b.index()].ops.clone();
                for inner in ops {
                    // erase without the uses check: the whole subtree dies
                    self.erase_subtree(inner);
                }
            }
        }
        self.ops[op.index()].alive = false;
        self.ops[op.index()].operands.clear();
    }

    fn erase_subtree(&mut self, op: OpId) {
        self.detach_op(op);
        let regions = self.ops[op.index()].regions.clone();
        for r in regions {
            let blocks = self.regions[r.index()].blocks.clone();
            for b in blocks {
                let ops = self.blocks[b.index()].ops.clone();
                for inner in ops {
                    self.erase_subtree(inner);
                }
            }
        }
        self.ops[op.index()].alive = false;
        self.ops[op.index()].operands.clear();
    }

    /// Sets (or replaces) an attribute on `op`.
    pub fn set_attr(&mut self, op: OpId, name: impl Into<String>, attr: Attribute) {
        self.ops[op.index()].attrs.insert(name.into(), attr);
    }

    /// Removes an attribute from `op`, returning it if present.
    pub fn remove_attr(&mut self, op: OpId, name: &str) -> Option<Attribute> {
        self.ops[op.index()].attrs.remove(name)
    }

    /// Replaces operand `index` of `op` with `value`.
    pub fn set_operand(&mut self, op: OpId, index: usize, value: ValueId) {
        self.ops[op.index()].operands[index] = value;
    }

    /// Replaces the full operand list of `op`.
    pub fn set_operands(&mut self, op: OpId, operands: Vec<ValueId>) {
        self.ops[op.index()].operands = operands;
    }

    // --- use-def -------------------------------------------------------------

    /// All uses of `value` across the module (live ops only).
    ///
    /// Computed by a linear scan; modules in this codebase are small (tiling
    /// loops, not whole programs), so this is cheap and always consistent.
    pub fn uses_of(&self, value: ValueId) -> Vec<Use> {
        let mut uses = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            if !op.alive {
                continue;
            }
            for (operand_index, &operand) in op.operands.iter().enumerate() {
                if operand == value {
                    uses.push(Use {
                        op: OpId(i as u32),
                        operand_index,
                    });
                }
            }
        }
        uses
    }

    /// Replaces every use of `old` with `new`.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        for op in self.ops.iter_mut().filter(|o| o.alive) {
            for operand in op.operands.iter_mut() {
                if *operand == old {
                    *operand = new;
                }
            }
        }
    }

    // --- traversal -------------------------------------------------------------

    /// Pre-order walk over every live op nested under `root` (inclusive).
    pub fn walk(&self, root: OpId, visit: &mut dyn FnMut(OpId)) {
        if !self.ops[root.index()].alive {
            return;
        }
        visit(root);
        for &r in &self.ops[root.index()].regions {
            for &b in &self.regions[r.index()].blocks {
                for &op in &self.blocks[b.index()].ops {
                    self.walk(op, visit);
                }
            }
        }
    }

    /// Collects every live op nested under `root` (inclusive), pre-order.
    pub fn walk_collect(&self, root: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        self.walk(root, &mut |op| out.push(op));
        out
    }

    /// Collects every live op in the module, pre-order per function.
    pub fn walk_module(&self) -> Vec<OpId> {
        let mut out = Vec::new();
        for &f in &self.funcs {
            self.walk(f, &mut |op| out.push(op));
        }
        out
    }

    /// All live ops in `block`, in order. (Clone of the op list.)
    pub fn block_ops(&self, block: BlockId) -> Vec<OpId> {
        self.blocks[block.index()].ops.clone()
    }

    /// The single block of `region`.
    ///
    /// # Panics
    /// Panics if the region does not have exactly one block.
    pub fn sole_block(&self, region: RegionId) -> BlockId {
        let blocks = &self.regions[region.index()].blocks;
        assert_eq!(
            blocks.len(),
            1,
            "region {region} must have exactly one block"
        );
        blocks[0]
    }

    /// The entry (single) block of a region-holding op's `region_index`-th region.
    pub fn body_block(&self, op: OpId, region_index: usize) -> BlockId {
        self.sole_block(self.ops[op.index()].regions[region_index])
    }

    /// The terminator op of `block`.
    ///
    /// # Panics
    /// Panics if the block is empty.
    pub fn terminator(&self, block: BlockId) -> OpId {
        *self.blocks[block.index()]
            .ops
            .last()
            .expect("block has no terminator")
    }

    /// The op containing `block` (via its region), if any.
    pub fn block_parent_op(&self, block: BlockId) -> Option<OpId> {
        let region = self.blocks[block.index()].parent?;
        self.regions[region.index()].parent
    }

    /// The innermost op enclosing `op` (its parent block's owner).
    pub fn parent_op(&self, op: OpId) -> Option<OpId> {
        let block = self.ops[op.index()].parent?;
        self.block_parent_op(block)
    }

    /// `true` if `ancestor` encloses `op` (strictly; an op does not enclose
    /// itself).
    pub fn is_ancestor(&self, ancestor: OpId, op: OpId) -> bool {
        let mut cur = self.parent_op(op);
        while let Some(p) = cur {
            if p == ancestor {
                return true;
            }
            cur = self.parent_op(p);
        }
        false
    }

    /// `true` if `value` is defined inside the regions of `op` (at any depth).
    pub fn is_defined_inside(&self, value: ValueId, op: OpId) -> bool {
        match self.values[value.index()].def {
            ValueDef::OpResult { op: def_op, .. } => def_op == op || self.is_ancestor(op, def_op),
            ValueDef::BlockArg { block, .. } => match self.block_parent_op(block) {
                Some(owner) => owner == op || self.is_ancestor(op, owner),
                None => false,
            },
        }
    }

    /// Rebuilds `op` in place with `new_operands` and `extra_result_types`
    /// appended after the existing result types, returning the new op id.
    ///
    /// Regions are transferred to the new op (not cloned), the new op takes
    /// the old op's position in its block, and all uses of the old results
    /// are redirected to the corresponding new results. Used to extend
    /// `scf.for`/`scf.if` with additional iteration state (e.g. threading an
    /// `!accfg.state` through a loop).
    pub fn rebuild_op(
        &mut self,
        op: OpId,
        new_operands: Vec<ValueId>,
        extra_result_types: Vec<Type>,
    ) -> OpId {
        let old = self.ops[op.index()].clone();
        let mut result_types: Vec<Type> = old
            .results
            .iter()
            .map(|&r| self.values[r.index()].ty.clone())
            .collect();
        result_types.extend(extra_result_types);
        let new_op = self.create_op(
            old.opcode,
            new_operands,
            result_types,
            old.attrs.clone(),
            old.regions.clone(),
        );
        if let Some(block) = old.parent {
            let index = self.op_position(op).expect("op attached");
            self.detach_op(op);
            self.insert_op(block, index, new_op);
        }
        let new_results = self.ops[new_op.index()].results.clone();
        for (&old_r, &new_r) in old.results.iter().zip(new_results.iter()) {
            self.replace_all_uses(old_r, new_r);
        }
        // tombstone the old op without touching the transferred regions
        self.ops[op.index()].alive = false;
        self.ops[op.index()].operands.clear();
        self.ops[op.index()].regions.clear();
        new_op
    }

    // --- cloning ------------------------------------------------------------

    /// Deep-clones `op` (attributes, regions, nested ops) as a detached op.
    ///
    /// `mapping` translates operand values: any operand present as a key is
    /// replaced by its mapped value in the clone; results and block args of
    /// cloned ops are added to `mapping` so intra-clone references stay
    /// consistent. Operands absent from the mapping are kept as-is (they are
    /// values defined outside the cloned subtree).
    pub fn clone_op(&mut self, op: OpId, mapping: &mut HashMap<ValueId, ValueId>) -> OpId {
        let data = self.ops[op.index()].clone();
        let operands: Vec<ValueId> = data
            .operands
            .iter()
            .map(|v| *mapping.get(v).unwrap_or(v))
            .collect();
        let result_types: Vec<Type> = data
            .results
            .iter()
            .map(|&r| self.values[r.index()].ty.clone())
            .collect();
        // Clone regions first (they don't reference the new op's results).
        let mut new_regions = Vec::with_capacity(data.regions.len());
        for &r in &data.regions {
            let new_region = self.create_region();
            let old_blocks = self.regions[r.index()].blocks.clone();
            for old_block in old_blocks {
                let new_block = self.create_block(new_region);
                let old_args = self.blocks[old_block.index()].args.clone();
                for old_arg in old_args {
                    let ty = self.values[old_arg.index()].ty.clone();
                    let new_arg = self.add_block_arg(new_block, ty);
                    mapping.insert(old_arg, new_arg);
                }
                let old_ops = self.blocks[old_block.index()].ops.clone();
                for inner in old_ops {
                    let new_inner = self.clone_op(inner, mapping);
                    self.append_op(new_block, new_inner);
                }
            }
            new_regions.push(new_region);
        }
        let new_op = self.create_op(data.opcode, operands, result_types, data.attrs, new_regions);
        let new_results = self.ops[new_op.index()].results.clone();
        for (&old_r, &new_r) in data.results.iter().zip(new_results.iter()) {
            mapping.insert(old_r, new_r);
        }
        new_op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;

    fn int_const(m: &mut Module, block: BlockId, v: i64) -> (OpId, ValueId) {
        let mut attrs = AttrMap::new();
        attrs.insert("value".into(), Attribute::Int(v));
        let op = m.create_op(Opcode::Constant, vec![], vec![Type::I64], attrs, vec![]);
        m.append_op(block, op);
        (op, m.op(op).results[0])
    }

    fn test_func(m: &mut Module) -> (OpId, BlockId) {
        let region = m.create_region();
        let block = m.create_block(region);
        let func = m.create_op(Opcode::Func, vec![], vec![], AttrMap::new(), vec![region]);
        m.set_attr(func, "sym_name", Attribute::Str("test".into()));
        m.add_func(func);
        (func, block)
    }

    #[test]
    fn build_and_walk() {
        let mut m = Module::new();
        let (func, block) = test_func(&mut m);
        let (_, a) = int_const(&mut m, block, 1);
        let (_, b) = int_const(&mut m, block, 2);
        let add = m.create_op(
            Opcode::AddI,
            vec![a, b],
            vec![Type::I64],
            AttrMap::new(),
            vec![],
        );
        m.append_op(block, add);
        let ops = m.walk_collect(func);
        assert_eq!(ops.len(), 4); // func + 2 constants + add
        assert_eq!(m.live_op_count(), 4);
    }

    #[test]
    fn uses_and_replacement() {
        let mut m = Module::new();
        let (_, block) = test_func(&mut m);
        let (_, a) = int_const(&mut m, block, 1);
        let (_, b) = int_const(&mut m, block, 2);
        let add = m.create_op(
            Opcode::AddI,
            vec![a, a],
            vec![Type::I64],
            AttrMap::new(),
            vec![],
        );
        m.append_op(block, add);
        assert_eq!(m.uses_of(a).len(), 2);
        assert_eq!(m.uses_of(b).len(), 0);
        m.replace_all_uses(a, b);
        assert_eq!(m.uses_of(a).len(), 0);
        assert_eq!(m.uses_of(b).len(), 2);
    }

    #[test]
    fn erase_detaches_and_tombstones() {
        let mut m = Module::new();
        let (func, block) = test_func(&mut m);
        let (op, _) = int_const(&mut m, block, 1);
        assert_eq!(m.block(block).ops.len(), 1);
        m.erase_op(op);
        assert!(!m.is_alive(op));
        assert_eq!(m.block(block).ops.len(), 0);
        assert_eq!(m.walk_collect(func).len(), 1); // just the func
    }

    #[test]
    #[should_panic(expected = "still have uses")]
    #[cfg(debug_assertions)]
    fn erase_with_uses_panics_in_debug() {
        let mut m = Module::new();
        let (_, block) = test_func(&mut m);
        let (op, a) = int_const(&mut m, block, 1);
        let add = m.create_op(
            Opcode::AddI,
            vec![a, a],
            vec![Type::I64],
            AttrMap::new(),
            vec![],
        );
        m.append_op(block, add);
        m.erase_op(op);
    }

    #[test]
    fn move_before_and_after() {
        let mut m = Module::new();
        let (_, block) = test_func(&mut m);
        let (op1, _) = int_const(&mut m, block, 1);
        let (op2, _) = int_const(&mut m, block, 2);
        let (op3, _) = int_const(&mut m, block, 3);
        m.move_op_before(op3, op1);
        assert_eq!(m.block(block).ops, vec![op3, op1, op2]);
        m.move_op_after(op3, op2);
        assert_eq!(m.block(block).ops, vec![op1, op2, op3]);
        assert_eq!(m.op_position(op2), Some(1));
    }

    #[test]
    fn nested_regions_and_ancestry() {
        let mut m = Module::new();
        let (func, block) = test_func(&mut m);
        let (_, lb) = int_const(&mut m, block, 0);
        let (_, ub) = int_const(&mut m, block, 10);
        let (_, step) = int_const(&mut m, block, 1);
        let body_region = m.create_region();
        let body = m.create_block(body_region);
        let iv = m.add_block_arg(body, Type::Index);
        let yield_op = m.create_op(Opcode::Yield, vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(body, yield_op);
        let for_op = m.create_op(
            Opcode::For,
            vec![lb, ub, step],
            vec![],
            AttrMap::new(),
            vec![body_region],
        );
        m.append_op(block, for_op);

        assert!(m.is_ancestor(func, for_op));
        assert!(m.is_ancestor(func, yield_op));
        assert!(m.is_ancestor(for_op, yield_op));
        assert!(!m.is_ancestor(for_op, for_op));
        assert!(m.is_defined_inside(iv, for_op));
        assert!(!m.is_defined_inside(lb, for_op));
        assert_eq!(m.parent_op(yield_op), Some(for_op));
        assert_eq!(m.body_block(for_op, 0), body);
        assert_eq!(m.terminator(body), yield_op);
    }

    #[test]
    fn deep_clone_remaps_values() {
        let mut m = Module::new();
        let (_, block) = test_func(&mut m);
        let (_, lb) = int_const(&mut m, block, 0);
        let (_, ub) = int_const(&mut m, block, 4);
        let (_, step) = int_const(&mut m, block, 1);
        let body_region = m.create_region();
        let body = m.create_block(body_region);
        let iv = m.add_block_arg(body, Type::Index);
        let dbl = m.create_op(
            Opcode::AddI,
            vec![iv, iv],
            vec![Type::Index],
            AttrMap::new(),
            vec![],
        );
        m.append_op(body, dbl);
        let yield_op = m.create_op(Opcode::Yield, vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(body, yield_op);
        let for_op = m.create_op(
            Opcode::For,
            vec![lb, ub, step],
            vec![],
            AttrMap::new(),
            vec![body_region],
        );
        m.append_op(block, for_op);

        let mut mapping = HashMap::new();
        let clone = m.clone_op(for_op, &mut mapping);
        assert_ne!(clone, for_op);
        // outside operands kept:
        assert_eq!(m.op(clone).operands, vec![lb, ub, step]);
        // inner op got a remapped induction variable:
        let new_body = m.body_block(clone, 0);
        let new_iv = m.block(new_body).args[0];
        assert_ne!(new_iv, iv);
        let new_dbl = m.block(new_body).ops[0];
        assert_eq!(m.op(new_dbl).operands, vec![new_iv, new_iv]);
        assert_eq!(mapping.get(&iv), Some(&new_iv));
    }

    #[test]
    fn func_lookup_by_name() {
        let mut m = Module::new();
        let (func, _) = test_func(&mut m);
        assert_eq!(m.func_by_name("test"), Some(func));
        assert_eq!(m.func_by_name("missing"), None);
    }
}
