//! Lightweight analyses over the structured IR.

use crate::module::{BlockId, Module, OpId, ValueDef, ValueId};

/// The chain of blocks enclosing `op`, innermost first, paired with the
/// position (within that block) of the op — or of the ancestor op that
/// contains `op` — at that level.
fn enclosing_positions(m: &Module, op: OpId) -> Vec<(BlockId, usize)> {
    let mut out = Vec::new();
    let mut cur = op;
    while let Some(block) = m.op(cur).parent {
        let pos = m.op_position(cur).expect("attached op has a position");
        out.push((block, pos));
        match m.block_parent_op(block) {
            Some(parent) => cur = parent,
            None => break,
        }
    }
    out
}

/// `true` if `value` is visible (defined and in scope) at the program point
/// just before `op` — the structured-IR equivalent of SSA dominance.
///
/// A block argument is visible to every op nested under its block; an op
/// result is visible to ops that come later in the same block, and to
/// anything nested under those later ops.
///
/// # Examples
///
/// ```
/// use accfg_ir::{Module, FuncBuilder, Type, analysis::value_visible_at};
///
/// let mut m = Module::new();
/// let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
/// let c = b.const_index(4);
/// let zero = b.const_index(0);
/// let one = b.const_index(1);
/// b.build_for(zero, c, one, vec![], |b, iv, _| {
///     b.addi(iv, c); // `c` from outside is visible here
///     vec![]
/// });
/// b.ret(vec![]);
/// let func = m.func_by_name("f").unwrap();
/// let add = m.walk_collect(func).into_iter()
///     .find(|&o| m.op(o).opcode == accfg_ir::Opcode::AddI).unwrap();
/// assert!(value_visible_at(&m, c, add));
/// ```
pub fn value_visible_at(m: &Module, value: ValueId, op: OpId) -> bool {
    match m.value(value).def {
        ValueDef::BlockArg { block, .. } => {
            // visible iff `block` is one of op's enclosing blocks
            enclosing_positions(m, op).iter().any(|&(b, _)| b == block)
        }
        ValueDef::OpResult { op: def_op, .. } => {
            if def_op == op {
                return false;
            }
            let Some(def_block) = m.op(def_op).parent else {
                return false;
            };
            let Some(def_pos) = m.op_position(def_op) else {
                return false;
            };
            for (b, pos) in enclosing_positions(m, op) {
                if b == def_block {
                    return def_pos < pos;
                }
            }
            false
        }
    }
}

/// All ops of the given opcode nested under `root` (inclusive), pre-order.
pub fn ops_with_opcode(m: &Module, root: OpId, opcode: crate::Opcode) -> Vec<OpId> {
    m.walk_collect(root)
        .into_iter()
        .filter(|&o| m.op(o).opcode == opcode)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::op::Opcode;
    use crate::types::Type;

    #[test]
    fn earlier_op_results_are_visible() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_int(1, Type::I64);
        let sum = b.addi(a, a);
        b.ret(vec![]);
        let func = m.func_by_name("f").unwrap();
        let add = ops_with_opcode(&m, func, Opcode::AddI)[0];
        assert!(value_visible_at(&m, a, add));
        assert!(!value_visible_at(&m, sum, add)); // own result not visible to itself
    }

    #[test]
    fn later_results_are_not_visible() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_int(1, Type::I64);
        let s = b.addi(a, a);
        b.ret(vec![]);
        let func = m.func_by_name("f").unwrap();
        let const_op = ops_with_opcode(&m, func, Opcode::Constant)[0];
        assert!(!value_visible_at(&m, s, const_op));
    }

    #[test]
    fn loop_locals_invisible_outside() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let zero = b.const_index(0);
        let four = b.const_index(4);
        let one = b.const_index(1);
        let mut inner_val = None;
        b.build_for(zero, four, one, vec![], |b, iv, _| {
            inner_val = Some(b.addi(iv, iv));
            vec![]
        });
        let ret = b.ret(vec![]);
        assert!(!value_visible_at(&m, inner_val.unwrap(), ret));
    }

    #[test]
    fn function_args_visible_everywhere_inside() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let zero = b.const_index(0);
        let four = b.const_index(4);
        let one = b.const_index(1);
        b.build_for(zero, four, one, vec![], |b, _iv, _| {
            b.addi(args[0], args[0]);
            vec![]
        });
        b.ret(vec![]);
        let func = m.func_by_name("f").unwrap();
        let add = ops_with_opcode(&m, func, Opcode::AddI)[0];
        assert!(value_visible_at(&m, args[0], add));
    }
}
