//! IR verification: structural SSA well-formedness plus per-op invariants.
//!
//! The accfg-specific "single live state" discipline (Section 5.1 of the
//! paper) is checked in the `accfg` crate; this verifier covers everything
//! an MLIR-style framework would check generically.

use crate::attrs::Attribute;
use crate::module::{BlockId, Module, OpId, ValueId};
use crate::op::{CmpPredicate, Opcode};
use crate::types::Type;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The offending operation.
    pub op: Option<OpId>,
    /// What invariant was violated.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Some(op) => write!(f, "verification failed at {op}: {}", self.message),
            None => write!(f, "verification failed: {}", self.message),
        }
    }
}

impl Error for VerifyError {}

/// Verifies the whole module.
///
/// # Errors
///
/// Returns the first violated invariant: SSA visibility, terminator
/// placement, operand/result arity, or type mismatches.
pub fn verify(m: &Module) -> Result<(), VerifyError> {
    for &f in m.funcs() {
        if !m.is_alive(f) {
            return Err(VerifyError {
                op: Some(f),
                message: "registered function was erased".into(),
            });
        }
        if m.op(f).opcode != Opcode::Func {
            return Err(VerifyError {
                op: Some(f),
                message: "top-level op is not func.func".into(),
            });
        }
        let regions = &m.op(f).regions;
        if regions.len() != 1 {
            return Err(VerifyError {
                op: Some(f),
                message: "func.func must have exactly one region".into(),
            });
        }
        let mut visible = HashSet::new();
        verify_region_block(m, f, 0, &mut visible)?;
    }
    Ok(())
}

fn err(op: OpId, message: impl Into<String>) -> VerifyError {
    VerifyError {
        op: Some(op),
        message: message.into(),
    }
}

fn verify_region_block(
    m: &Module,
    owner: OpId,
    region_index: usize,
    visible: &mut HashSet<ValueId>,
) -> Result<(), VerifyError> {
    let region = m.op(owner).regions[region_index];
    let blocks = &m.region(region).blocks;
    if blocks.len() != 1 {
        return Err(err(owner, "regions must contain exactly one block"));
    }
    let block = blocks[0];
    let added_args: Vec<ValueId> = m.block(block).args.clone();
    for &a in &added_args {
        visible.insert(a);
    }

    let ops = m.block_ops(block);
    if ops.is_empty() {
        return Err(err(owner, "block must end with a terminator"));
    }
    let mut newly_visible = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        if !m.is_alive(op) {
            return Err(err(op, "dead op still attached to a block"));
        }
        let data = m.op(op);
        let is_last = i + 1 == ops.len();
        if data.opcode.is_terminator() && !is_last {
            return Err(err(op, "terminator in the middle of a block"));
        }
        if is_last && !data.opcode.is_terminator() {
            return Err(err(op, "block does not end with a terminator"));
        }
        for &operand in &data.operands {
            if !visible.contains(&operand) {
                return Err(err(
                    op,
                    format!("operand {operand} is not visible at this point (use before def?)"),
                ));
            }
        }
        verify_op(m, op, block)?;
        for &r in &data.results {
            visible.insert(r);
            newly_visible.push(r);
        }
        for ri in 0..data.regions.len() {
            verify_region_block(m, op, ri, visible)?;
        }
    }
    // values defined in this block (and its args) go out of scope
    for a in added_args {
        visible.remove(&a);
    }
    for v in newly_visible {
        visible.remove(&v);
    }
    Ok(())
}

fn verify_op(m: &Module, op: OpId, block: BlockId) -> Result<(), VerifyError> {
    let data = m.op(op);
    let opcode = data.opcode;
    let operand_ty = |i: usize| m.value_type(data.operands[i]);
    let result_ty = |i: usize| m.value_type(data.results[i]);

    if !opcode.has_regions() && !data.regions.is_empty() {
        return Err(err(op, format!("{opcode} must not have regions")));
    }

    if opcode.is_binary_arith() {
        if data.operands.len() != 2 || data.results.len() != 1 {
            return Err(err(op, format!("{opcode} must have 2 operands, 1 result")));
        }
        let (l, r, res) = (operand_ty(0), operand_ty(1), result_ty(0));
        if !l.is_integer_like() || !r.is_integer_like() || !res.is_integer_like() {
            return Err(err(op, format!("{opcode} operands must be integer-like")));
        }
        // `index` is 64-bit on the RV64 hosts modeled here, so mixing it
        // with i64 is allowed (this IR has no index_cast); differing widths
        // are still rejected
        if l.bit_width() != r.bit_width() || l.bit_width() != res.bit_width() {
            return Err(err(op, format!("{opcode} operand/result types must match")));
        }
        return Ok(());
    }

    match opcode {
        Opcode::Func => Err(err(op, "func.func cannot be nested")),
        Opcode::Return => {
            let parent = m.block_parent_op(block);
            match parent.map(|p| m.op(p).opcode) {
                Some(Opcode::Func) => Ok(()),
                _ => Err(err(op, "func.return must be directly inside func.func")),
            }
        }
        Opcode::Yield => {
            let parent = m
                .block_parent_op(block)
                .ok_or_else(|| err(op, "scf.yield outside any op"))?;
            match m.op(parent).opcode {
                Opcode::For | Opcode::If => {
                    let expected: Vec<&Type> = m
                        .op(parent)
                        .results
                        .iter()
                        .map(|&r| m.value_type(r))
                        .collect();
                    if data.operands.len() != expected.len() {
                        return Err(err(
                            op,
                            format!(
                                "scf.yield has {} operands but parent has {} results",
                                data.operands.len(),
                                expected.len()
                            ),
                        ));
                    }
                    for (i, &e) in expected.iter().enumerate() {
                        if operand_ty(i) != e {
                            return Err(err(
                                op,
                                format!("scf.yield operand {i} type mismatch with parent result"),
                            ));
                        }
                    }
                    Ok(())
                }
                _ => Err(err(op, "scf.yield must be inside scf.for or scf.if")),
            }
        }
        Opcode::Call => {
            if m.str_attr(op, "callee").is_none() {
                return Err(err(op, "func.call requires a `callee` string attribute"));
            }
            Ok(())
        }
        Opcode::Constant => {
            if !data.operands.is_empty() || data.results.len() != 1 {
                return Err(err(op, "arith.constant must have 0 operands, 1 result"));
            }
            if m.int_attr(op, "value").is_none() {
                return Err(err(op, "arith.constant requires integer `value` attribute"));
            }
            if !result_ty(0).is_integer_like() {
                return Err(err(op, "arith.constant result must be integer-like"));
            }
            Ok(())
        }
        Opcode::AddI
        | Opcode::SubI
        | Opcode::MulI
        | Opcode::DivUI
        | Opcode::RemUI
        | Opcode::AndI
        | Opcode::OrI
        | Opcode::XOrI
        | Opcode::ShLI
        | Opcode::ShRUI => unreachable!("binary arith handled above"),
        Opcode::CmpI => {
            if data.operands.len() != 2 || data.results.len() != 1 {
                return Err(err(op, "arith.cmpi must have 2 operands, 1 result"));
            }
            if operand_ty(0) != operand_ty(1) {
                return Err(err(op, "arith.cmpi operand types must match"));
            }
            if result_ty(0) != &Type::I1 {
                return Err(err(op, "arith.cmpi result must be i1"));
            }
            let pred = m.str_attr(op, "predicate").unwrap_or("");
            if CmpPredicate::from_name(pred).is_none() {
                return Err(err(op, format!("invalid cmpi predicate `{pred}`")));
            }
            Ok(())
        }
        Opcode::Select => {
            if data.operands.len() != 3 || data.results.len() != 1 {
                return Err(err(op, "arith.select must have 3 operands, 1 result"));
            }
            if operand_ty(0) != &Type::I1 {
                return Err(err(op, "arith.select condition must be i1"));
            }
            if operand_ty(1) != operand_ty(2) || operand_ty(1) != result_ty(0) {
                return Err(err(op, "arith.select value types must match"));
            }
            Ok(())
        }
        Opcode::For => {
            if data.operands.len() < 3 {
                return Err(err(op, "scf.for needs lb, ub, step operands"));
            }
            for i in 0..3 {
                if operand_ty(i) != &Type::Index {
                    return Err(err(op, "scf.for bounds must be index-typed"));
                }
            }
            let inits = &data.operands[3..];
            if data.results.len() != inits.len() {
                return Err(err(op, "scf.for results must match iter_args count"));
            }
            let body = m.body_block(op, 0);
            let args = &m.block(body).args;
            if args.len() != 1 + inits.len() {
                return Err(err(op, "scf.for body args must be (iv, iter_args...)"));
            }
            if m.value_type(args[0]) != &Type::Index {
                return Err(err(op, "scf.for induction variable must be index"));
            }
            for (i, (&arg, &init)) in args[1..].iter().zip(inits.iter()).enumerate() {
                if m.value_type(arg) != m.value_type(init) {
                    return Err(err(op, format!("scf.for iter_arg {i} type mismatch")));
                }
                if m.value_type(arg) != result_ty(i) {
                    return Err(err(op, format!("scf.for result {i} type mismatch")));
                }
            }
            Ok(())
        }
        Opcode::If => {
            if data.operands.len() != 1 || operand_ty(0) != &Type::I1 {
                return Err(err(op, "scf.if takes a single i1 condition"));
            }
            if data.regions.len() != 2 {
                return Err(err(op, "scf.if must have then and else regions"));
            }
            Ok(())
        }
        Opcode::AccfgSetup => {
            let accel = m
                .str_attr(op, "accelerator")
                .ok_or_else(|| err(op, "accfg.setup requires `accelerator` attribute"))?
                .to_string();
            if data.results.len() != 1 || result_ty(0) != &Type::state(&accel) {
                return Err(err(
                    op,
                    "accfg.setup result must be the accelerator's state type",
                ));
            }
            let has_input = m
                .attr(op, "has_input_state")
                .and_then(Attribute::as_bool)
                .unwrap_or(false);
            let field_count = m
                .attr(op, "fields")
                .and_then(Attribute::as_array)
                .map(|a| a.len())
                .ok_or_else(|| err(op, "accfg.setup requires `fields` array attribute"))?;
            let expected = field_count + usize::from(has_input);
            if data.operands.len() != expected {
                return Err(err(
                    op,
                    format!(
                        "accfg.setup has {} operands but expected {expected} ({} fields{})",
                        data.operands.len(),
                        field_count,
                        if has_input { " + input state" } else { "" }
                    ),
                ));
            }
            if has_input && operand_ty(0) != &Type::state(&accel) {
                return Err(err(op, "accfg.setup input state type mismatch"));
            }
            let start = usize::from(has_input);
            for i in start..data.operands.len() {
                if !operand_ty(i).is_integer_like() {
                    return Err(err(op, "accfg.setup field values must be integer-like"));
                }
            }
            Ok(())
        }
        Opcode::AccfgLaunch => {
            let accel = m
                .str_attr(op, "accelerator")
                .ok_or_else(|| err(op, "accfg.launch requires `accelerator` attribute"))?
                .to_string();
            if data.operands.len() != 1 || operand_ty(0) != &Type::state(&accel) {
                return Err(err(op, "accfg.launch must take the accelerator's state"));
            }
            if data.results.len() != 1 || result_ty(0) != &Type::token(&accel) {
                return Err(err(op, "accfg.launch must produce the accelerator's token"));
            }
            Ok(())
        }
        Opcode::AccfgAwait => {
            let accel = m
                .str_attr(op, "accelerator")
                .ok_or_else(|| err(op, "accfg.await requires `accelerator` attribute"))?
                .to_string();
            if data.operands.len() != 1 || operand_ty(0) != &Type::token(&accel) {
                return Err(err(op, "accfg.await must take the accelerator's token"));
            }
            if !data.results.is_empty() {
                return Err(err(op, "accfg.await has no results"));
            }
            Ok(())
        }
        Opcode::CsrWrite => {
            if data.operands.len() != 1 || !data.results.is_empty() {
                return Err(err(op, "target.csr_write takes 1 operand, no results"));
            }
            if m.int_attr(op, "csr").is_none() {
                return Err(err(op, "target.csr_write requires `csr` attribute"));
            }
            Ok(())
        }
        Opcode::RoccCmd => {
            if data.operands.len() != 2 || !data.results.is_empty() {
                return Err(err(op, "target.rocc_cmd takes 2 operands, no results"));
            }
            if m.int_attr(op, "funct").is_none() {
                return Err(err(op, "target.rocc_cmd requires `funct` attribute"));
            }
            Ok(())
        }
        Opcode::TargetLaunch | Opcode::TargetAwait => {
            if !data.results.is_empty() {
                return Err(err(op, format!("{opcode} has no results")));
            }
            Ok(())
        }
        Opcode::Opaque => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::Module;

    #[test]
    fn valid_module_verifies() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let two = b.const_int(2, Type::I64);
        let x = b.muli(args[0], two);
        let s = b.setup("acc", &[("v", x)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        verify(&m).unwrap();
    }

    #[test]
    fn missing_terminator_fails() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        b.const_int(1, Type::I64);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn type_mismatch_fails() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_int(1, Type::I64);
        let c = b.const_int(2, Type::I32);
        // manually build a bad addi: i64 + i32
        let bad = m.create_op(
            Opcode::AddI,
            vec![a, c],
            vec![Type::I64],
            Default::default(),
            vec![],
        );
        let func = m.func_by_name("f").unwrap();
        let block = m.body_block(func, 0);
        m.append_op(block, bad);
        let ret = m.create_op(Opcode::Return, vec![], vec![], Default::default(), vec![]);
        m.append_op(block, ret);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("types must match"), "{e}");
    }

    #[test]
    fn use_before_def_fails() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_int(1, Type::I64);
        let add = b.addi(a, a);
        b.ret(vec![]);
        // move the add before its operand's definition
        let add_op = match m.value(add).def {
            crate::module::ValueDef::OpResult { op, .. } => op,
            _ => unreachable!(),
        };
        let const_op = match m.value(a).def {
            crate::module::ValueDef::OpResult { op, .. } => op,
            _ => unreachable!(),
        };
        m.move_op_before(add_op, const_op);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("not visible"), "{e}");
    }

    #[test]
    fn loop_body_values_do_not_escape() {
        let text = r#"
        func.func @f() {
          %lb = arith.constant() {value = 0} : index
          %ub = arith.constant() {value = 4} : index
          %st = arith.constant() {value = 1} : index
          scf.for %i = %lb to %ub step %st {
            %inner = arith.constant() {value = 7} : i64
            scf.yield()
          }
          func.return()
        }
        "#;
        let mut m = crate::parser::parse_module(text).unwrap();
        verify(&m).unwrap();
        // now make an op outside the loop use %inner — must fail
        let func = m.func_by_name("f").unwrap();
        let ops = m.walk_collect(func);
        let inner_const = ops
            .iter()
            .copied()
            .rfind(|&o| m.op(o).opcode == Opcode::Constant)
            .unwrap();
        let inner_val = m.op(inner_const).results[0];
        let bad = m.create_op(
            Opcode::AddI,
            vec![inner_val, inner_val],
            vec![Type::I64],
            Default::default(),
            vec![],
        );
        let block = m.body_block(func, 0);
        let ret = m.terminator(block);
        m.insert_op(block, m.op_position(ret).unwrap(), bad);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("not visible"), "{e}");
    }

    #[test]
    fn setup_arity_checked() {
        let text = r#"
        func.func @f() {
          %x = arith.constant() {value = 1} : index
          %s = accfg.setup "a" to ("f1" = %x) : !accfg.state<"a">
          func.return()
        }
        "#;
        let mut m = crate::parser::parse_module(text).unwrap();
        verify(&m).unwrap();
        // corrupt: drop the operand but keep the field list
        let setup = m
            .walk_module()
            .into_iter()
            .find(|&o| m.op(o).opcode == Opcode::AccfgSetup)
            .unwrap();
        m.set_operands(setup, vec![]);
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("operands"), "{e}");
    }

    #[test]
    fn launch_wrong_accelerator_fails() {
        let text = r#"
        func.func @f() {
          %x = arith.constant() {value = 1} : index
          %s = accfg.setup "a" to ("f1" = %x) : !accfg.state<"a">
          %t = accfg.launch "b" with %s : !accfg.token<"b">
          accfg.await "b" %t
          func.return()
        }
        "#;
        let m = crate::parser::parse_module(text).unwrap();
        let e = verify(&m).unwrap_err();
        assert!(e.message.contains("state"), "{e}");
    }
}
