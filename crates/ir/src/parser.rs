//! Parser for the textual IR produced by [`crate::printer`].
//!
//! A hand-rolled tokenizer + recursive-descent parser. Together with the
//! printer it gives a printable/parsable IR, which the test suite uses for
//! round-trip properties and for writing readable pass test cases.

use crate::attrs::{AttrMap, Attribute, Effects};
use crate::module::{BlockId, Module, OpId, ValueId};
use crate::op::Opcode;
use crate::types::Type;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse failure, with a human-readable message and source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl Error for ParseError {}

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem encountered.
///
/// # Examples
///
/// ```
/// let text = r#"
/// module {
///   func.func @f(%0: i64) {
///     %1 = arith.addi(%0, %0) : i64
///     func.return()
///   }
/// }
/// "#;
/// let module = accfg_ir::parse_module(text)?;
/// assert!(module.func_by_name("f").is_some());
/// # Ok::<(), accfg_ir::ParseError>(())
/// ```
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let tokens = tokenize(text)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        module: Module::new(),
        values: HashMap::new(),
    };
    p.parse_module()?;
    Ok(p.module)
}

// --- tokenizer -----------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Value(String),
    Symbol(String),
    Str(String),
    Int(i64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Comma,
    Colon,
    Equal,
    Arrow,
    Hash,
    Bang,
    Eof,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
    column: usize,
}

fn tokenize(text: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(SpannedTok {
                tok: $tok,
                line: $l,
                column: $c,
            })
        };
    }
    while i < chars.len() {
        let (l, c) = (line, col);
        let ch = chars[i];
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        match ch {
            ' ' | '\t' | '\n' | '\r' => {
                advance(&mut i, &mut line, &mut col);
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '(' => {
                push!(Tok::LParen, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            ')' => {
                push!(Tok::RParen, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            '{' => {
                push!(Tok::LBrace, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            '}' => {
                push!(Tok::RBrace, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            '[' => {
                push!(Tok::LBracket, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            ']' => {
                push!(Tok::RBracket, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            '<' => {
                push!(Tok::Lt, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            '>' => {
                push!(Tok::Gt, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            ',' => {
                push!(Tok::Comma, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            ':' => {
                push!(Tok::Colon, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            '=' => {
                push!(Tok::Equal, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            '#' => {
                push!(Tok::Hash, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            '!' => {
                push!(Tok::Bang, l, c);
                advance(&mut i, &mut line, &mut col);
            }
            '-' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '>' {
                    advance(&mut i, &mut line, &mut col);
                    push!(Tok::Arrow, l, c);
                } else if i < chars.len() && chars[i].is_ascii_digit() {
                    let mut n = String::from("-");
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        n.push(chars[i]);
                        advance(&mut i, &mut line, &mut col);
                    }
                    let v = n.parse().map_err(|_| ParseError {
                        message: format!("invalid integer `{n}`"),
                        line: l,
                        column: c,
                    })?;
                    push!(Tok::Int(v), l, c);
                } else {
                    return Err(ParseError {
                        message: "unexpected `-`".into(),
                        line: l,
                        column: c,
                    });
                }
            }
            '%' => {
                advance(&mut i, &mut line, &mut col);
                let mut name = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    name.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                if name.is_empty() {
                    return Err(ParseError {
                        message: "empty value name after `%`".into(),
                        line: l,
                        column: c,
                    });
                }
                push!(Tok::Value(name), l, c);
            }
            '@' => {
                advance(&mut i, &mut line, &mut col);
                let mut name = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    name.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                push!(Tok::Symbol(name), l, c);
            }
            '"' => {
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(ParseError {
                            message: "unterminated string".into(),
                            line: l,
                            column: c,
                        });
                    }
                    match chars[i] {
                        '"' => {
                            advance(&mut i, &mut line, &mut col);
                            break;
                        }
                        '\\' => {
                            advance(&mut i, &mut line, &mut col);
                            if i >= chars.len() {
                                return Err(ParseError {
                                    message: "unterminated escape".into(),
                                    line: l,
                                    column: c,
                                });
                            }
                            match chars[i] {
                                'n' => s.push('\n'),
                                other => s.push(other),
                            }
                            advance(&mut i, &mut line, &mut col);
                        }
                        other => {
                            s.push(other);
                            advance(&mut i, &mut line, &mut col);
                        }
                    }
                }
                push!(Tok::Str(s), l, c);
            }
            d if d.is_ascii_digit() => {
                let mut n = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    n.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                let v = n.parse().map_err(|_| ParseError {
                    message: format!("invalid integer `{n}`"),
                    line: l,
                    column: c,
                })?;
                push!(Tok::Int(v), l, c);
            }
            a if a.is_alphabetic() || a == '_' => {
                let mut name = String::new();
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    name.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                push!(Tok::Ident(name), l, c);
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    line: l,
                    column: c,
                })
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
        column: col,
    });
    Ok(out)
}

// --- parser ----------------------------------------------------------------------

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
    module: Module,
    values: HashMap<String, ValueId>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let t = &self.tokens[self.pos];
        Err(ParseError {
            message: message.into(),
            line: t.line,
            column: t.column,
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek()))
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == word => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{word}`, found {other:?}")),
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn parse_value_name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Value(n) => Ok(n),
            other => {
                self.pos -= 1;
                self.err(format!("expected value (%name), found {other:?}"))
            }
        }
    }

    fn lookup(&self, name: &str) -> Result<ValueId, ParseError> {
        self.values.get(name).copied().ok_or_else(|| {
            let t = &self.tokens[self.pos.saturating_sub(1)];
            ParseError {
                message: format!("use of undefined value %{name}"),
                line: t.line,
                column: t.column,
            }
        })
    }

    fn parse_operand(&mut self) -> Result<ValueId, ParseError> {
        let name = self.parse_value_name()?;
        self.lookup(&name)
    }

    fn parse_module(&mut self) -> Result<(), ParseError> {
        let wrapped = self.eat_ident("module");
        if wrapped {
            self.expect(Tok::LBrace)?;
        }
        loop {
            match self.peek() {
                Tok::Ident(s) if s == "func.func" => self.parse_func()?,
                Tok::RBrace if wrapped => {
                    self.bump();
                    break;
                }
                Tok::Eof if !wrapped => break,
                _ => return self.err("expected `func.func` or end of module"),
            }
        }
        match self.peek() {
            Tok::Eof => Ok(()),
            _ => self.err("trailing input after module"),
        }
    }

    fn parse_func(&mut self) -> Result<(), ParseError> {
        self.expect_ident("func.func")?;
        let name = match self.bump() {
            Tok::Symbol(s) => s,
            other => {
                self.pos -= 1;
                return self.err(format!("expected @symbol, found {other:?}"));
            }
        };
        self.expect(Tok::LParen)?;
        let region = self.module.create_region();
        let block = self.module.create_block(region);
        if *self.peek() != Tok::RParen {
            loop {
                let vname = self.parse_value_name()?;
                self.expect(Tok::Colon)?;
                let ty = self.parse_type()?;
                let arg = self.module.add_block_arg(block, ty);
                self.values.insert(vname, arg);
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        self.parse_block_body(block)?;
        let func =
            self.module
                .create_op(Opcode::Func, vec![], vec![], AttrMap::new(), vec![region]);
        self.module.set_attr(func, "sym_name", Attribute::Str(name));
        self.module.add_func(func);
        Ok(())
    }

    /// Parses ops until the closing `}` (consumed).
    fn parse_block_body(&mut self, block: BlockId) -> Result<(), ParseError> {
        loop {
            if *self.peek() == Tok::RBrace {
                self.bump();
                return Ok(());
            }
            self.parse_op(block)?;
        }
    }

    fn parse_op(&mut self, block: BlockId) -> Result<OpId, ParseError> {
        // optional results prefix: %a, %b = ...
        let mut result_names = Vec::new();
        if matches!(self.peek(), Tok::Value(_)) {
            loop {
                let n = self.parse_value_name()?;
                result_names.push(n);
                match self.peek() {
                    Tok::Comma => {
                        self.bump();
                    }
                    Tok::Equal => {
                        self.bump();
                        break;
                    }
                    _ => return self.err("expected `,` or `=` after result list"),
                }
            }
        }
        let opname = match self.bump() {
            Tok::Ident(s) => s,
            other => {
                self.pos -= 1;
                return self.err(format!("expected op name, found {other:?}"));
            }
        };
        match opname.as_str() {
            "scf.for" => self.parse_for(block, result_names),
            "scf.if" => self.parse_if(block, result_names),
            "accfg.setup" => self.parse_setup(block, result_names),
            "accfg.launch" => self.parse_launch(block, result_names),
            "accfg.await" => self.parse_await(block, result_names),
            _ => self.parse_generic(block, &opname, result_names),
        }
    }

    fn bind_results(&mut self, op: OpId, names: Vec<String>) -> Result<OpId, ParseError> {
        let results = self.module.op(op).results.clone();
        if results.len() != names.len() {
            return self.err(format!(
                "op has {} results but {} names were bound",
                results.len(),
                names.len()
            ));
        }
        for (name, value) in names.into_iter().zip(results) {
            self.values.insert(name, value);
        }
        Ok(op)
    }

    fn parse_generic(
        &mut self,
        block: BlockId,
        opname: &str,
        result_names: Vec<String>,
    ) -> Result<OpId, ParseError> {
        let opcode = match Opcode::from_name(opname) {
            Some(o) => o,
            None => return self.err(format!("unknown op `{opname}`")),
        };
        self.expect(Tok::LParen)?;
        let mut operands = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                operands.push(self.parse_operand()?);
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        self.expect(Tok::RParen)?;
        let attrs = self.parse_attr_dict()?;
        let mut result_types = Vec::new();
        if *self.peek() == Tok::Colon {
            self.bump();
            loop {
                result_types.push(self.parse_type()?);
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        let op = self
            .module
            .create_op(opcode, operands, result_types, attrs, vec![]);
        self.module.append_op(block, op);
        self.bind_results(op, result_names)
    }

    fn parse_attr_dict(&mut self) -> Result<AttrMap, ParseError> {
        let mut attrs = AttrMap::new();
        if *self.peek() != Tok::LBrace {
            return Ok(attrs);
        }
        // `{` can also open a region body (scf.for / scf.if). An attr dict is
        // `{ ident = ...` or `{}`; a body starts with `%value` or `ident(`.
        let is_dict = matches!(
            (
                self.peek2(),
                &self.tokens[(self.pos + 2).min(self.tokens.len() - 1)].tok
            ),
            (Tok::RBrace, _) | (Tok::Ident(_), Tok::Equal)
        );
        if !is_dict {
            return Ok(attrs);
        }
        self.bump();
        if *self.peek() != Tok::RBrace {
            loop {
                let key = match self.bump() {
                    Tok::Ident(s) => s,
                    other => {
                        self.pos -= 1;
                        return self.err(format!("expected attribute name, found {other:?}"));
                    }
                };
                self.expect(Tok::Equal)?;
                let value = self.parse_attr()?;
                attrs.insert(key, value);
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(attrs)
    }

    fn parse_attr(&mut self) -> Result<Attribute, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(Attribute::Int(v)),
            Tok::Str(s) => Ok(Attribute::Str(s)),
            Tok::Ident(s) if s == "true" => Ok(Attribute::Bool(true)),
            Tok::Ident(s) if s == "false" => Ok(Attribute::Bool(false)),
            Tok::LBracket => {
                let mut items = Vec::new();
                if *self.peek() != Tok::RBracket {
                    loop {
                        items.push(self.parse_attr()?);
                        if !matches!(self.peek(), Tok::Comma) {
                            break;
                        }
                        self.bump();
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Attribute::Array(items))
            }
            Tok::Hash => {
                self.expect_ident("accfg.effects")?;
                self.expect(Tok::Lt)?;
                let e = match self.bump() {
                    Tok::Ident(s) if s == "all" => Effects::All,
                    Tok::Ident(s) if s == "none" => Effects::None,
                    other => {
                        self.pos -= 1;
                        return self.err(format!("expected `all` or `none`, found {other:?}"));
                    }
                };
                self.expect(Tok::Gt)?;
                Ok(Attribute::Effects(e))
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected attribute, found {other:?}"))
            }
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        match self.bump() {
            Tok::Ident(s) => match s.as_str() {
                "i1" => Ok(Type::I1),
                "i8" => Ok(Type::I8),
                "i16" => Ok(Type::I16),
                "i32" => Ok(Type::I32),
                "i64" => Ok(Type::I64),
                "index" => Ok(Type::Index),
                other => {
                    self.pos -= 1;
                    self.err(format!("unknown type `{other}`"))
                }
            },
            Tok::Bang => {
                let kind = match self.bump() {
                    Tok::Ident(s) => s,
                    other => {
                        self.pos -= 1;
                        return self.err(format!("expected accfg type name, found {other:?}"));
                    }
                };
                self.expect(Tok::Lt)?;
                let accel = match self.bump() {
                    Tok::Str(s) => s,
                    other => {
                        self.pos -= 1;
                        return self.err(format!("expected accelerator string, found {other:?}"));
                    }
                };
                self.expect(Tok::Gt)?;
                match kind.as_str() {
                    "accfg.state" => Ok(Type::State(accel)),
                    "accfg.token" => Ok(Type::Token(accel)),
                    other => self.err(format!("unknown accfg type `{other}`")),
                }
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected type, found {other:?}"))
            }
        }
    }

    fn parse_setup(
        &mut self,
        block: BlockId,
        result_names: Vec<String>,
    ) -> Result<OpId, ParseError> {
        let accel = match self.bump() {
            Tok::Str(s) => s,
            other => {
                self.pos -= 1;
                return self.err(format!("expected accelerator string, found {other:?}"));
            }
        };
        let mut operands = Vec::new();
        let has_input = if self.eat_ident("from") {
            operands.push(self.parse_operand()?);
            true
        } else {
            false
        };
        self.expect_ident("to")?;
        self.expect(Tok::LParen)?;
        let mut field_names = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let fname = match self.bump() {
                    Tok::Str(s) => s,
                    other => {
                        self.pos -= 1;
                        return self.err(format!("expected field name string, found {other:?}"));
                    }
                };
                self.expect(Tok::Equal)?;
                operands.push(self.parse_operand()?);
                field_names.push(fname);
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        self.expect(Tok::RParen)?;
        let mut attrs = self.parse_attr_dict()?;
        self.expect(Tok::Colon)?;
        let ty = self.parse_type()?;
        attrs.insert("accelerator".into(), Attribute::Str(accel));
        attrs.insert("fields".into(), Attribute::str_array(field_names));
        attrs.insert("has_input_state".into(), Attribute::Bool(has_input));
        let op = self
            .module
            .create_op(Opcode::AccfgSetup, operands, vec![ty], attrs, vec![]);
        self.module.append_op(block, op);
        self.bind_results(op, result_names)
    }

    fn parse_launch(
        &mut self,
        block: BlockId,
        result_names: Vec<String>,
    ) -> Result<OpId, ParseError> {
        let accel = match self.bump() {
            Tok::Str(s) => s,
            other => {
                self.pos -= 1;
                return self.err(format!("expected accelerator string, found {other:?}"));
            }
        };
        self.expect_ident("with")?;
        let state = self.parse_operand()?;
        let mut attrs = self.parse_attr_dict()?;
        self.expect(Tok::Colon)?;
        let ty = self.parse_type()?;
        attrs.insert("accelerator".into(), Attribute::Str(accel));
        let op = self
            .module
            .create_op(Opcode::AccfgLaunch, vec![state], vec![ty], attrs, vec![]);
        self.module.append_op(block, op);
        self.bind_results(op, result_names)
    }

    fn parse_await(
        &mut self,
        block: BlockId,
        result_names: Vec<String>,
    ) -> Result<OpId, ParseError> {
        let accel = match self.bump() {
            Tok::Str(s) => s,
            other => {
                self.pos -= 1;
                return self.err(format!("expected accelerator string, found {other:?}"));
            }
        };
        let token = self.parse_operand()?;
        let mut attrs = self.parse_attr_dict()?;
        attrs.insert("accelerator".into(), Attribute::Str(accel));
        let op = self
            .module
            .create_op(Opcode::AccfgAwait, vec![token], vec![], attrs, vec![]);
        self.module.append_op(block, op);
        self.bind_results(op, result_names)
    }

    fn parse_for(&mut self, block: BlockId, result_names: Vec<String>) -> Result<OpId, ParseError> {
        let iv_name = self.parse_value_name()?;
        self.expect(Tok::Equal)?;
        let lb = self.parse_operand()?;
        self.expect_ident("to")?;
        let ub = self.parse_operand()?;
        self.expect_ident("step")?;
        let step = self.parse_operand()?;

        let region = self.module.create_region();
        let body = self.module.create_block(region);
        let iv = self.module.add_block_arg(body, Type::Index);
        self.values.insert(iv_name, iv);

        let mut operands = vec![lb, ub, step];
        let mut result_types = Vec::new();
        if self.eat_ident("iter_args") {
            self.expect(Tok::LParen)?;
            let mut pending = Vec::new();
            loop {
                let arg_name = self.parse_value_name()?;
                self.expect(Tok::Equal)?;
                let init = self.parse_operand()?;
                pending.push((arg_name, init));
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
            self.expect(Tok::RParen)?;
            self.expect(Tok::Arrow)?;
            self.expect(Tok::LParen)?;
            loop {
                result_types.push(self.parse_type()?);
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
            self.expect(Tok::RParen)?;
            if result_types.len() != pending.len() {
                return self.err("iter_args count must match result type count");
            }
            for ((arg_name, init), ty) in pending.into_iter().zip(result_types.iter()) {
                let arg = self.module.add_block_arg(body, ty.clone());
                self.values.insert(arg_name, arg);
                operands.push(init);
            }
        }
        let attrs = self.parse_attr_dict()?;
        self.expect(Tok::LBrace)?;
        self.parse_block_body(body)?;
        let op = self
            .module
            .create_op(Opcode::For, operands, result_types, attrs, vec![region]);
        self.module.append_op(block, op);
        self.bind_results(op, result_names)
    }

    fn parse_if(&mut self, block: BlockId, result_names: Vec<String>) -> Result<OpId, ParseError> {
        let cond = self.parse_operand()?;
        let mut result_types = Vec::new();
        if *self.peek() == Tok::Arrow {
            self.bump();
            self.expect(Tok::LParen)?;
            loop {
                result_types.push(self.parse_type()?);
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
            self.expect(Tok::RParen)?;
        }
        let attrs = self.parse_attr_dict()?;
        self.expect_ident("then")?;
        self.expect(Tok::LBrace)?;
        let then_region = self.module.create_region();
        let then_block = self.module.create_block(then_region);
        self.parse_block_body(then_block)?;
        self.expect_ident("else")?;
        self.expect(Tok::LBrace)?;
        let else_region = self.module.create_region();
        let else_block = self.module.create_block(else_region);
        self.parse_block_body(else_block)?;
        let op = self.module.create_op(
            Opcode::If,
            vec![cond],
            result_types,
            attrs,
            vec![then_region, else_region],
        );
        self.module.append_op(block, op);
        self.bind_results(op, result_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    #[test]
    fn parses_simple_func() {
        let text = r#"
        module {
          func.func @f(%a: i64, %b: i64) {
            %c = arith.addi(%a, %b) : i64
            func.return()
          }
        }
        "#;
        let m = parse_module(text).unwrap();
        assert!(m.func_by_name("f").is_some());
        assert_eq!(m.walk_module().len(), 3);
    }

    #[test]
    fn parses_accfg_cluster() {
        let text = r#"
        func.func @f() {
          %x = arith.constant() {value = 64} : index
          %s = accfg.setup "gemm" to ("x" = %x, "y" = %x) : !accfg.state<"gemm">
          %s2 = accfg.setup "gemm" from %s to ("x" = %x) : !accfg.state<"gemm">
          %t = accfg.launch "gemm" with %s2 : !accfg.token<"gemm">
          accfg.await "gemm" %t
          func.return()
        }
        "#;
        let m = parse_module(text).unwrap();
        let ops = m.walk_module();
        assert_eq!(ops.len(), 7);
    }

    #[test]
    fn parses_for_with_iter_args() {
        let text = r#"
        func.func @f() {
          %lb = arith.constant() {value = 0} : index
          %ub = arith.constant() {value = 16} : index
          %st = arith.constant() {value = 1} : index
          %init = arith.constant() {value = 0} : i64
          %r = scf.for %i = %lb to %ub step %st iter_args(%acc = %init) -> (i64) {
            %next = arith.addi(%acc, %acc) : i64
            scf.yield(%next)
          }
          func.return()
        }
        "#;
        let m = parse_module(text).unwrap();
        let func = m.func_by_name("f").unwrap();
        let for_op = m
            .walk_collect(func)
            .into_iter()
            .find(|&o| m.op(o).opcode == Opcode::For)
            .unwrap();
        assert_eq!(m.op(for_op).operands.len(), 4);
        assert_eq!(m.op(for_op).results.len(), 1);
    }

    #[test]
    fn parses_if_then_else() {
        let text = r#"
        func.func @f(%c: i1) {
          %r = scf.if %c -> (i64) then {
            %a = arith.constant() {value = 1} : i64
            scf.yield(%a)
          } else {
            %b = arith.constant() {value = 2} : i64
            scf.yield(%b)
          }
          func.return()
        }
        "#;
        let m = parse_module(text).unwrap();
        assert!(m.func_by_name("f").is_some());
    }

    #[test]
    fn error_on_undefined_value() {
        let text = r#"
        func.func @f() {
          %c = arith.addi(%missing, %missing) : i64
          func.return()
        }
        "#;
        let err = parse_module(text).unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
    }

    #[test]
    fn error_reports_position() {
        let err = parse_module("garbage !!").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn round_trips_through_printer() {
        let text = r#"
        func.func @f(%p: i64) {
          %lb = arith.constant() {value = 0} : index
          %ub = arith.constant() {value = 4} : index
          %st = arith.constant() {value = 1} : index
          %s0 = accfg.setup "acc" to ("A" = %p) : !accfg.state<"acc">
          %r = scf.for %i = %lb to %ub step %st iter_args(%s = %s0) -> (!accfg.state<"acc">) {
            %s1 = accfg.setup "acc" from %s to ("i" = %i) : !accfg.state<"acc">
            %t = accfg.launch "acc" with %s1 : !accfg.token<"acc">
            accfg.await "acc" %t
            scf.yield(%s1)
          }
          func.return()
        }
        "#;
        let m1 = parse_module(text).unwrap();
        let p1 = print_module(&m1);
        let m2 = parse_module(&p1).unwrap();
        let p2 = print_module(&m2);
        assert_eq!(p1, p2);
    }
}
