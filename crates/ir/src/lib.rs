//! # accfg-ir: an MLIR-style SSA IR substrate
//!
//! This crate is the compiler-infrastructure substrate for the reproduction
//! of *"The Configuration Wall: Characterization and Elimination of
//! Accelerator Configuration Overhead"* (ASPLOS 2026). The paper implements
//! its `accfg` abstraction on top of MLIR/xDSL; this crate rebuilds the
//! slice of that infrastructure the paper's passes rely on:
//!
//! - an arena-based, region-structured SSA [`Module`] ([`module`])
//! - the `func`, `arith`, `scf`, `accfg`, and `target` dialects ([`op`])
//! - a closure-based [`FuncBuilder`] ([`builder`])
//! - a textual printer/parser pair for readable round-trippable IR
//!   ([`printer`], [`parser`])
//! - a structural [`verifier`]
//! - a [`PassManager`] and the generic optimizations the paper leans on:
//!   constant folding + canonicalization, common-subexpression elimination,
//!   loop-invariant code motion, and dead-code elimination ([`passes`])
//!
//! # Example
//!
//! Build, print, and optimize the IR of Figure 6 of the paper:
//!
//! ```
//! use accfg_ir::{FuncBuilder, Module, PassManager, Type};
//! use accfg_ir::passes::{Canonicalize, Cse};
//!
//! let mut m = Module::new();
//! let (mut b, args) = FuncBuilder::new_func(&mut m, "matmul", vec![Type::I64; 3]);
//! let x = b.const_index(64);
//! let state = b.setup("gemm2d", &[("x", x), ("A", args[0]), ("B", args[1])]);
//! let token = b.launch("gemm2d", state);
//! b.await_token("gemm2d", token);
//! b.ret(vec![]);
//!
//! let mut pm = PassManager::new();
//! pm.add(Canonicalize).add(Cse);
//! pm.run(&mut m)?;
//! let text = accfg_ir::print_module(&m);
//! assert!(text.contains("accfg.launch"));
//! # Ok::<(), accfg_ir::PipelineError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod attrs;
pub mod builder;
pub mod module;
pub mod op;
pub mod parser;
pub mod pass;
pub mod passes;
pub mod printer;
pub mod types;

pub use attrs::{AttrMap, Attribute, Effects};
pub use builder::FuncBuilder;
pub use module::{BlockId, Module, OpId, RegionId, Use, ValueData, ValueDef, ValueId};
pub use op::{CmpPredicate, OpData, Opcode};
pub use parser::{parse_module, ParseError};
pub use pass::{Changed, Pass, PassManager, PassValidator, PipelineError, PipelineStats};
pub use printer::{print_func, print_module};
pub use types::Type;
pub use verifier::{verify, VerifyError};

pub mod verifier;
