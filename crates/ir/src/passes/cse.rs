//! Common-subexpression elimination.

use crate::attrs::Attribute;
use crate::module::{BlockId, Module, OpId, ValueId};
use crate::op::Opcode;
use crate::pass::{Changed, Pass};
use crate::types::Type;
use std::collections::HashMap;

/// Scoped value-numbering CSE over pure operations.
///
/// The paper's deduplication (Section 5.4) relies on *SSA-value equality* as
/// a proxy for runtime-value equality; CSE is what makes that proxy potent,
/// by merging structurally identical pure expressions (e.g. two identical
/// address computations in consecutive tile setups) into a single SSA value.
///
/// Scoping follows the region tree: an op inside a loop can reuse a value
/// computed outside it, but values computed inside a region never leak out.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cse;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    opcode: Opcode,
    operands: Vec<ValueId>,
    attrs: Vec<(String, Attribute)>,
    result_types: Vec<Type>,
}

impl Pass for Cse {
    fn name(&self) -> &str {
        "cse"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        for func in m.funcs().to_vec() {
            let block = m.body_block(func, 0);
            let mut scopes: Vec<HashMap<Key, Vec<ValueId>>> = vec![HashMap::new()];
            changed = changed.or(run_block(m, block, &mut scopes));
        }
        changed
    }
}

fn key_of(m: &Module, op: OpId) -> Key {
    let data = m.op(op);
    Key {
        opcode: data.opcode,
        operands: data.operands.clone(),
        attrs: data
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        result_types: data
            .results
            .iter()
            .map(|&r| m.value_type(r).clone())
            .collect(),
    }
}

fn lookup(scopes: &[HashMap<Key, Vec<ValueId>>], key: &Key) -> Option<Vec<ValueId>> {
    scopes.iter().rev().find_map(|s| s.get(key).cloned())
}

fn run_block(
    m: &mut Module,
    block: BlockId,
    scopes: &mut Vec<HashMap<Key, Vec<ValueId>>>,
) -> Changed {
    let mut changed = Changed::No;
    for op in m.block_ops(block) {
        if !m.is_alive(op) {
            continue;
        }
        let data = m.op(op);
        if data.opcode.is_pure() && data.regions.is_empty() {
            let key = key_of(m, op);
            if let Some(existing) = lookup(scopes, &key) {
                let results = m.op(op).results.clone();
                for (&r, &e) in results.iter().zip(existing.iter()) {
                    m.replace_all_uses(r, e);
                }
                m.erase_op(op);
                changed = Changed::Yes;
                continue;
            }
            let results = m.op(op).results.clone();
            scopes.last_mut().expect("scope stack").insert(key, results);
        }
        // recurse into regions with a fresh scope each
        for ri in 0..m.op(op).regions.len() {
            let region = m.op(op).regions[ri];
            for b in m.region(region).blocks.clone() {
                scopes.push(HashMap::new());
                changed = changed.or(run_block(m, b, scopes));
                scopes.pop();
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::printer::print_module;
    use crate::verifier::verify;

    #[test]
    fn merges_identical_constants_and_exprs() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let c1 = b.const_int(8, Type::I64);
        let c2 = b.const_int(8, Type::I64);
        let a1 = b.addi(args[0], c1);
        let a2 = b.addi(args[0], c2);
        let s = b.setup("acc", &[("x", a1), ("y", a2)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        assert!(Cse.run(&mut m).changed());
        verify(&m).unwrap();
        let text = print_module(&m);
        // both fields now reference the same value
        assert_eq!(text.matches("arith.addi").count(), 1, "{text}");
        assert_eq!(text.matches("arith.constant").count(), 1, "{text}");
    }

    #[test]
    fn distinguishes_different_attrs() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let c1 = b.const_int(8, Type::I64);
        let c2 = b.const_int(9, Type::I64);
        let s = b.setup("acc", &[("x", c1), ("y", c2)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        assert!(!Cse.run(&mut m).changed());
    }

    #[test]
    fn outer_values_reusable_inside_loops() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        let outer = b.const_int(7, Type::I64);
        b.build_for(lb, ub, step, vec![], |b, _iv, _| {
            let inner = b.const_int(7, Type::I64); // same as `outer`
            let s = b.setup("acc", &[("x", inner)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        // keep `outer` alive so CSE has something to share
        let s = b.setup("acc", &[("x", outer)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        assert!(Cse.run(&mut m).changed());
        verify(&m).unwrap();
        let text = print_module(&m);
        assert_eq!(text.matches("{value = 7}").count(), 1, "{text}");
    }

    #[test]
    fn loop_local_values_do_not_leak_out() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        b.build_for(lb, ub, step, vec![], |b, _iv, _| {
            let inner = b.const_int(99, Type::I64);
            let s = b.setup("acc", &[("x", inner)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        // after the loop, the same constant appears again; CSE must NOT
        // replace it with the loop-local one
        let after = b.const_int(99, Type::I64);
        let s = b.setup("acc", &[("x", after)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        Cse.run(&mut m);
        verify(&m).unwrap();
        let text = print_module(&m);
        assert_eq!(text.matches("{value = 99}").count(), 2, "{text}");
    }

    #[test]
    fn never_merges_impure_ops() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let c = b.const_int(8, Type::I64);
        b.csr_write(1, c);
        b.csr_write(1, c); // identical but impure: must both stay
        b.ret(vec![]);
        assert!(!Cse.run(&mut m).changed());
        assert_eq!(m.live_op_count(), 5);
    }
}
