//! Constant folding and algebraic canonicalization.

use super::{constant_value, eval_binary};
use crate::attrs::{AttrMap, Attribute};
use crate::module::{Module, OpId};
use crate::op::{CmpPredicate, Opcode};
use crate::pass::{Changed, Pass};
use crate::passes::Dce;

/// Folds constant expressions and applies algebraic identities, then cleans
/// up with [`Dce`].
///
/// Handled patterns:
/// - binary arith with two constant operands → `arith.constant`
/// - `x + 0`, `0 + x`, `x - 0`, `x * 1`, `1 * x`, `x | 0`, `x ^ 0`,
///   `x << 0`, `x >> 0`, `x / 1` → `x`
/// - `x * 0`, `0 * x`, `x & 0` → `0`
/// - `arith.cmpi` on two constants → constant `i1`
/// - `arith.select` with constant condition → selected operand
/// - `scf.if` with constant condition → inlined branch
///
/// Like MLIR's canonicalizer, this is the enabling pass for configuration
/// deduplication: it collapses distinct-but-equal SSA expression trees so
/// that SSA-value equality (the dedup criterion of Section 5.4) fires.
#[derive(Debug, Clone, Copy, Default)]
pub struct Canonicalize;

impl Pass for Canonicalize {
    fn name(&self) -> &str {
        "canonicalize"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        loop {
            let mut local = Changed::No;
            for op in m.walk_module() {
                if !m.is_alive(op) {
                    continue;
                }
                local = local.or(try_fold(m, op));
            }
            if !local.changed() {
                break;
            }
            changed = Changed::Yes;
        }
        changed.or(Dce.run(m))
    }
}

fn make_constant(m: &mut Module, before: OpId, value: i64, ty: crate::Type) -> crate::ValueId {
    let mut attrs = AttrMap::new();
    attrs.insert("value".into(), Attribute::Int(value));
    let c = m.create_op(Opcode::Constant, vec![], vec![ty], attrs, vec![]);
    m.move_op_before(c, before);
    m.op(c).results[0]
}

fn replace_with_value(m: &mut Module, op: OpId, value: crate::ValueId) -> Changed {
    let result = m.op(op).results[0];
    if result == value {
        return Changed::No;
    }
    m.replace_all_uses(result, value);
    m.erase_op(op);
    Changed::Yes
}

fn try_fold(m: &mut Module, op: OpId) -> Changed {
    let opcode = m.op(op).opcode;
    match opcode {
        o if o.is_binary_arith() => fold_binary(m, op, o),
        Opcode::CmpI => fold_cmp(m, op),
        Opcode::Select => fold_select(m, op),
        Opcode::If => fold_if(m, op),
        _ => Changed::No,
    }
}

fn fold_binary(m: &mut Module, op: OpId, opcode: Opcode) -> Changed {
    let lhs = m.op(op).operands[0];
    let rhs = m.op(op).operands[1];
    let (cl, cr) = (constant_value(m, lhs), constant_value(m, rhs));

    // full fold
    if let (Some(a), Some(b)) = (cl, cr) {
        if let Some(v) = eval_binary(opcode, a, b) {
            let ty = m.value_type(m.op(op).results[0]).clone();
            let c = make_constant(m, op, v, ty);
            return replace_with_value(m, op, c);
        }
    }

    // identities
    match (opcode, cl, cr) {
        (Opcode::AddI, Some(0), _) => return replace_with_value(m, op, rhs),
        (Opcode::AddI, _, Some(0))
        | (Opcode::SubI, _, Some(0))
        | (Opcode::OrI, _, Some(0))
        | (Opcode::XOrI, _, Some(0))
        | (Opcode::ShLI, _, Some(0))
        | (Opcode::ShRUI, _, Some(0))
        | (Opcode::MulI, _, Some(1))
        | (Opcode::DivUI, _, Some(1)) => return replace_with_value(m, op, lhs),
        (Opcode::OrI, Some(0), _) | (Opcode::XOrI, Some(0), _) | (Opcode::MulI, Some(1), _) => {
            return replace_with_value(m, op, rhs)
        }
        (Opcode::MulI, Some(0), _)
        | (Opcode::MulI, _, Some(0))
        | (Opcode::AndI, Some(0), _)
        | (Opcode::AndI, _, Some(0)) => {
            let ty = m.value_type(m.op(op).results[0]).clone();
            let c = make_constant(m, op, 0, ty);
            return replace_with_value(m, op, c);
        }
        _ => {}
    }
    Changed::No
}

fn fold_cmp(m: &mut Module, op: OpId) -> Changed {
    let lhs = m.op(op).operands[0];
    let rhs = m.op(op).operands[1];
    if let (Some(a), Some(b)) = (constant_value(m, lhs), constant_value(m, rhs)) {
        let pred = m
            .str_attr(op, "predicate")
            .and_then(CmpPredicate::from_name);
        if let Some(p) = pred {
            let v = i64::from(p.eval(a, b));
            let c = make_constant(m, op, v, crate::Type::I1);
            return replace_with_value(m, op, c);
        }
    }
    Changed::No
}

fn fold_select(m: &mut Module, op: OpId) -> Changed {
    let cond = m.op(op).operands[0];
    if let Some(c) = constant_value(m, cond) {
        let chosen = if c != 0 {
            m.op(op).operands[1]
        } else {
            m.op(op).operands[2]
        };
        return replace_with_value(m, op, chosen);
    }
    Changed::No
}

/// Inlines `scf.if` with a constant condition: the live branch's ops move in
/// front of the `scf.if`, results are replaced by the branch's yields.
fn fold_if(m: &mut Module, op: OpId) -> Changed {
    let cond = m.op(op).operands[0];
    let Some(c) = constant_value(m, cond) else {
        return Changed::No;
    };
    let region_index = if c != 0 { 0 } else { 1 };
    let branch_block = m.body_block(op, region_index);
    let branch_ops = m.block_ops(branch_block);
    let (yield_op, body_ops) = branch_ops
        .split_last()
        .expect("verified if-branch has a terminator");
    // move body ops before the scf.if, in order
    for &inner in body_ops {
        m.move_op_before(inner, op);
    }
    let yields = m.op(*yield_op).operands.clone();
    let results = m.op(op).results.clone();
    // yield must be erased first so RAUW of results doesn't touch it
    m.erase_op(*yield_op);
    for (&r, &y) in results.iter().zip(yields.iter()) {
        m.replace_all_uses(r, y);
    }
    m.erase_op(op);
    Changed::Yes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::op::CmpPredicate;
    use crate::printer::print_module;
    use crate::types::Type;
    use crate::verifier::verify;

    fn canon(m: &mut Module) {
        Canonicalize.run(m);
        verify(m).unwrap();
    }

    #[test]
    fn folds_constant_addition() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_int(40, Type::I64);
        let c = b.const_int(2, Type::I64);
        let sum = b.addi(a, c);
        let s = b.setup("acc", &[("v", sum)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        canon(&mut m);
        let text = print_module(&m);
        assert!(text.contains("{value = 42}"), "{text}");
        assert!(!text.contains("arith.addi"), "{text}");
    }

    #[test]
    fn applies_identities() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let zero = b.const_int(0, Type::I64);
        let one = b.const_int(1, Type::I64);
        let a = b.addi(args[0], zero); // x + 0 -> x
        let mul = b.muli(a, one); // x * 1 -> x
        let s = b.setup("acc", &[("v", mul)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        canon(&mut m);
        let text = print_module(&m);
        assert!(!text.contains("arith.addi"), "{text}");
        assert!(!text.contains("arith.muli"), "{text}");
        // the setup now reads the function argument directly
        assert!(
            text.contains("accfg.setup \"acc\" to (\"v\" = %0)"),
            "{text}"
        );
    }

    #[test]
    fn mul_by_zero_becomes_zero() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let zero = b.const_int(0, Type::I64);
        let p = b.muli(args[0], zero);
        let s = b.setup("acc", &[("v", p)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        canon(&mut m);
        let text = print_module(&m);
        assert!(!text.contains("arith.muli"), "{text}");
    }

    #[test]
    fn folds_cmp_and_select() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let a = b.const_int(3, Type::I64);
        let c = b.const_int(5, Type::I64);
        let cond = b.cmpi(CmpPredicate::Slt, a, c); // true
        let sel = b.select(cond, args[0], a);
        let s = b.setup("acc", &[("v", sel)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        canon(&mut m);
        let text = print_module(&m);
        assert!(!text.contains("arith.select"), "{text}");
        assert!(text.contains("\"v\" = %0"), "{text}");
    }

    #[test]
    fn inlines_constant_condition_if() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let cond = b.const_int(1, Type::I1);
        let results = b.build_if(
            cond,
            |b| vec![b.const_int(10, Type::I64)],
            |b| vec![b.const_int(20, Type::I64)],
        );
        let s = b.setup("acc", &[("v", results[0])]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        canon(&mut m);
        let text = print_module(&m);
        assert!(!text.contains("scf.if"), "{text}");
        assert!(text.contains("{value = 10}"), "{text}");
        assert!(!text.contains("{value = 20}"), "{text}");
    }

    #[test]
    fn folds_nested_expression_trees() {
        // (2 << 4) | 3, all constant — mirrors Gemmini bit-packing
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let two = b.const_int(2, Type::I64);
        let four = b.const_int(4, Type::I64);
        let three = b.const_int(3, Type::I64);
        let shifted = b.shli(two, four);
        let packed = b.ori(shifted, three);
        let s = b.setup("acc", &[("packed", packed)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        canon(&mut m);
        let text = print_module(&m);
        assert!(text.contains("{value = 35}"), "{text}");
        assert!(!text.contains("arith.shli"), "{text}");
        assert!(!text.contains("arith.ori"), "{text}");
    }
}
