//! Loop-invariant code motion for pure operations.

use crate::module::{Module, OpId};
use crate::op::Opcode;
use crate::pass::{Changed, Pass};

/// Hoists pure operations whose operands are all defined outside the loop to
/// just before the loop.
///
/// The paper's accfg-specific loop hoisting (Section 5.4.1) "closely follows
/// MLIR's existing LICM pass" — this is that existing pass. The accfg
/// variant for `setup` fields lives in the `accfg` crate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Licm;

impl Pass for Licm {
    fn name(&self) -> &str {
        "licm"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        // iterate to a fixpoint so chains of invariant ops hoist fully, and
        // ops escape multiple nested loops one level per round
        loop {
            let mut local = false;
            let loops: Vec<OpId> = m
                .walk_module()
                .into_iter()
                .filter(|&op| m.op(op).opcode == Opcode::For)
                .collect();
            for for_op in loops {
                if !m.is_alive(for_op) {
                    continue;
                }
                local |= hoist_from_loop(m, for_op);
            }
            if !local {
                break;
            }
            changed = Changed::Yes;
        }
        changed
    }
}

fn hoist_from_loop(m: &mut Module, for_op: OpId) -> bool {
    let body = m.body_block(for_op, 0);
    let mut moved = false;
    for op in m.block_ops(body) {
        if !m.is_alive(op) {
            continue;
        }
        let data = m.op(op);
        if !data.opcode.is_pure() || !data.regions.is_empty() {
            continue;
        }
        let invariant = data
            .operands
            .iter()
            .all(|&v| !m.is_defined_inside(v, for_op));
        if invariant {
            m.move_op_before(op, for_op);
            moved = true;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::printer::print_module;
    use crate::types::Type;
    use crate::verifier::verify;

    #[test]
    fn hoists_invariant_chain() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        b.build_for(lb, ub, step, vec![], |b, _iv, _| {
            let eight = b.const_int(8, Type::I64);
            let stride = b.muli(args[0], eight); // invariant chain
            let s = b.setup("acc", &[("stride", stride)]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);
        assert!(Licm.run(&mut m).changed());
        verify(&m).unwrap();
        let text = print_module(&m);
        // muli now appears before the loop
        let for_pos = text.find("scf.for").unwrap();
        let mul_pos = text.find("arith.muli").unwrap();
        assert!(mul_pos < for_pos, "{text}");
    }

    #[test]
    fn keeps_iv_dependent_ops_inside() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        b.build_for(lb, ub, step, vec![], |b, iv, _| {
            let addr = b.addi(iv, iv); // iv-dependent: must stay
            let s = b.setup("acc", &[("addr", addr), ("base", args[0])]);
            let t = b.launch("acc", s);
            b.await_token("acc", t);
            vec![]
        });
        b.ret(vec![]);
        Licm.run(&mut m);
        verify(&m).unwrap();
        let text = print_module(&m);
        let for_pos = text.find("scf.for").unwrap();
        let add_pos = text.find("arith.addi").unwrap();
        assert!(add_pos > for_pos, "{text}");
    }

    #[test]
    fn hoists_out_of_nested_loops() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        b.build_for(lb, ub, step, vec![], |b, _i, _| {
            b.build_for(lb, ub, step, vec![], |b, _j, _| {
                let eight = b.const_int(8, Type::I64);
                let inv = b.muli(args[0], eight);
                let s = b.setup("acc", &[("v", inv)]);
                let t = b.launch("acc", s);
                b.await_token("acc", t);
                vec![]
            });
            vec![]
        });
        b.ret(vec![]);
        Licm.run(&mut m);
        verify(&m).unwrap();
        let text = print_module(&m);
        let first_for = text.find("scf.for").unwrap();
        let mul_pos = text.find("arith.muli").unwrap();
        assert!(
            mul_pos < first_for,
            "invariant should escape both loops: {text}"
        );
    }

    #[test]
    fn never_hoists_impure_ops() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        b.build_for(lb, ub, step, vec![], |b, _iv, _| {
            b.csr_write(5, args[0]); // invariant operands but impure
            vec![]
        });
        b.ret(vec![]);
        assert!(!Licm.run(&mut m).changed());
        verify(&m).unwrap();
    }
}
