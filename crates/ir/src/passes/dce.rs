//! Dead-code elimination for pure operations.

use crate::module::Module;
use crate::pass::{Changed, Pass};

/// Erases pure operations whose results are all unused, iterating until no
/// more can be removed (so whole dead expression trees disappear).
///
/// # Examples
///
/// ```
/// use accfg_ir::{Module, FuncBuilder, Type, Pass};
/// use accfg_ir::passes::Dce;
///
/// let mut m = Module::new();
/// let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
/// let a = b.const_int(1, Type::I64);
/// b.addi(a, a); // dead
/// b.ret(vec![]);
/// assert_eq!(m.live_op_count(), 4);
/// Dce.run(&mut m);
/// assert_eq!(m.live_op_count(), 2); // func + return
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &str {
        "dce"
    }

    fn run(&self, m: &mut Module) -> Changed {
        let mut changed = Changed::No;
        loop {
            let mut removed_any = false;
            // reverse pre-order ≈ users before producers, so one sweep kills chains
            let ops: Vec<_> = m.walk_module().into_iter().rev().collect();
            for op in ops {
                if !m.is_alive(op) || !m.op(op).opcode.is_pure() {
                    continue;
                }
                let dead = m.op(op).results.iter().all(|&r| m.uses_of(r).is_empty());
                if dead {
                    m.erase_op(op);
                    removed_any = true;
                    changed = Changed::Yes;
                }
            }
            if !removed_any {
                break;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::Type;
    use crate::verifier::verify;

    #[test]
    fn removes_dead_chains() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_int(1, Type::I64);
        let c = b.addi(a, a);
        let d = b.muli(c, c);
        b.shli(d, a); // everything dead
        b.ret(vec![]);
        Dce.run(&mut m);
        assert_eq!(m.live_op_count(), 2);
        verify(&m).unwrap();
    }

    #[test]
    fn keeps_used_values() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_int(1, Type::I64);
        let s = b.setup("acc", &[("x", a)]);
        let t = b.launch("acc", s);
        b.await_token("acc", t);
        b.ret(vec![]);
        assert_eq!(Dce.run(&mut m), Changed::No);
        assert_eq!(m.live_op_count(), 6); // func, const, setup, launch, await, return
    }

    #[test]
    fn never_removes_impure_ops() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let a = b.const_int(1, Type::I64);
        b.csr_write(3, a); // impure, result-less
        b.opaque("mystery", vec![], vec![Type::I64], None); // impure, unused result
        b.ret(vec![]);
        Dce.run(&mut m);
        assert_eq!(m.live_op_count(), 5);
    }

    #[test]
    fn removes_dead_ops_inside_loops() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let step = b.const_index(1);
        b.build_for(lb, ub, step, vec![], |b, iv, _| {
            b.addi(iv, iv); // dead
            vec![]
        });
        b.ret(vec![]);
        Dce.run(&mut m);
        // func, 3 constants, for, yield, return
        assert_eq!(m.live_op_count(), 7);
        verify(&m).unwrap();
    }
}
