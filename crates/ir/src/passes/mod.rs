//! Generic, target-independent optimization passes.
//!
//! These are the "already implemented optimizations for all major modern CPU
//! architectures" the paper's Section 5.2 says `accfg` programs benefit from
//! once configuration is expressed as proper IR instead of volatile inline
//! assembly: constant folding/canonicalization, common-subexpression
//! elimination, loop-invariant code motion, and dead-code elimination.

mod canonicalize;
mod cse;
mod dce;
mod licm;

pub use canonicalize::Canonicalize;
pub use cse::Cse;
pub use dce::Dce;
pub use licm::Licm;

use crate::module::{Module, OpId, ValueDef, ValueId};
use crate::op::Opcode;

/// Returns the defining op of `value` if it is an op result.
pub(crate) fn defining_op(m: &Module, value: ValueId) -> Option<OpId> {
    match m.value(value).def {
        ValueDef::OpResult { op, .. } => Some(op),
        ValueDef::BlockArg { .. } => None,
    }
}

/// If `value` is produced by an `arith.constant`, returns the constant.
pub(crate) fn constant_value(m: &Module, value: ValueId) -> Option<i64> {
    let op = defining_op(m, value)?;
    if m.op(op).opcode == Opcode::Constant {
        m.int_attr(op, "value")
    } else {
        None
    }
}

/// Evaluates a binary arith opcode on two 64-bit values with the same
/// semantics as the simulator: wrapping two's-complement arithmetic, and the
/// RISC-V convention for division by zero (`divui` → all ones, `remui` →
/// the dividend).
pub fn eval_binary(opcode: Opcode, lhs: i64, rhs: i64) -> Option<i64> {
    Some(match opcode {
        Opcode::AddI => lhs.wrapping_add(rhs),
        Opcode::SubI => lhs.wrapping_sub(rhs),
        Opcode::MulI => lhs.wrapping_mul(rhs),
        Opcode::DivUI => {
            if rhs == 0 {
                -1
            } else {
                ((lhs as u64) / (rhs as u64)) as i64
            }
        }
        Opcode::RemUI => {
            if rhs == 0 {
                lhs
            } else {
                ((lhs as u64) % (rhs as u64)) as i64
            }
        }
        Opcode::AndI => lhs & rhs,
        Opcode::OrI => lhs | rhs,
        Opcode::XOrI => lhs ^ rhs,
        Opcode::ShLI => {
            if (rhs as u64) >= 64 {
                0
            } else {
                ((lhs as u64) << rhs) as i64
            }
        }
        Opcode::ShRUI => {
            if (rhs as u64) >= 64 {
                0
            } else {
                ((lhs as u64) >> rhs) as i64
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_binary_matches_riscv_conventions() {
        assert_eq!(eval_binary(Opcode::AddI, i64::MAX, 1), Some(i64::MIN));
        assert_eq!(eval_binary(Opcode::DivUI, 7, 0), Some(-1));
        assert_eq!(eval_binary(Opcode::RemUI, 7, 0), Some(7));
        assert_eq!(eval_binary(Opcode::ShLI, 1, 65), Some(0));
        assert_eq!(eval_binary(Opcode::ShRUI, -1, 1), Some(i64::MAX));
        assert_eq!(eval_binary(Opcode::For, 1, 2), None);
    }
}
