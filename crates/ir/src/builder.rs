//! Ergonomic IR construction.
//!
//! [`FuncBuilder`] appends operations to an insertion block and provides
//! closure-based helpers for structured control flow, so building the IR of
//! Figure 6/9 of the paper reads close to its textual form.

use crate::attrs::{AttrMap, Attribute, Effects};
use crate::module::{BlockId, Module, OpId, ValueId};
use crate::op::{CmpPredicate, Opcode};
use crate::types::Type;

/// Builds a function body by appending ops at an insertion point.
///
/// # Examples
///
/// ```
/// use accfg_ir::{Module, FuncBuilder, Type};
///
/// let mut m = Module::new();
/// let (mut b, args) = FuncBuilder::new_func(&mut m, "axpy", vec![Type::I64, Type::I64]);
/// let sum = b.addi(args[0], args[1]);
/// b.ret(vec![]);
/// let _ = sum;
/// assert!(m.func_by_name("axpy").is_some());
/// ```
pub struct FuncBuilder<'m> {
    module: &'m mut Module,
    func: OpId,
    block: BlockId,
}

impl<'m> FuncBuilder<'m> {
    /// Creates a function named `name` with the given argument types and
    /// returns a builder positioned at the start of its (empty) body.
    pub fn new_func(
        module: &'m mut Module,
        name: impl Into<String>,
        arg_types: Vec<Type>,
    ) -> (Self, Vec<ValueId>) {
        let region = module.create_region();
        let block = module.create_block(region);
        let args: Vec<ValueId> = arg_types
            .into_iter()
            .map(|ty| module.add_block_arg(block, ty))
            .collect();
        let func = module.create_op(Opcode::Func, vec![], vec![], AttrMap::new(), vec![region]);
        module.set_attr(func, "sym_name", Attribute::Str(name.into()));
        module.add_func(func);
        (
            Self {
                module,
                func,
                block,
            },
            args,
        )
    }

    /// The function op being built.
    pub fn func(&self) -> OpId {
        self.func
    }

    /// The current insertion block.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// The underlying module.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    fn push(
        &mut self,
        opcode: Opcode,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: AttrMap,
        regions: Vec<crate::module::RegionId>,
    ) -> OpId {
        let op = self
            .module
            .create_op(opcode, operands, result_types, attrs, regions);
        self.module.append_op(self.block, op);
        op
    }

    fn one_result(&self, op: OpId) -> ValueId {
        self.module.op(op).results[0]
    }

    // --- arith ---------------------------------------------------------------

    /// `arith.constant` of the given integer type.
    pub fn const_int(&mut self, value: i64, ty: Type) -> ValueId {
        let mut attrs = AttrMap::new();
        attrs.insert("value".into(), Attribute::Int(value));
        let op = self.push(Opcode::Constant, vec![], vec![ty], attrs, vec![]);
        self.one_result(op)
    }

    /// `arith.constant` of `index` type.
    pub fn const_index(&mut self, value: i64) -> ValueId {
        self.const_int(value, Type::Index)
    }

    /// A binary arithmetic op; the result type matches the left operand.
    pub fn binary(&mut self, opcode: Opcode, lhs: ValueId, rhs: ValueId) -> ValueId {
        debug_assert!(opcode.is_binary_arith(), "{opcode} is not binary arith");
        let ty = self.module.value_type(lhs).clone();
        let op = self.push(opcode, vec![lhs, rhs], vec![ty], AttrMap::new(), vec![]);
        self.one_result(op)
    }

    /// `arith.addi`.
    pub fn addi(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::AddI, l, r)
    }

    /// `arith.subi`.
    pub fn subi(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::SubI, l, r)
    }

    /// `arith.muli`.
    pub fn muli(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::MulI, l, r)
    }

    /// `arith.divui`.
    pub fn divui(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::DivUI, l, r)
    }

    /// `arith.remui`.
    pub fn remui(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::RemUI, l, r)
    }

    /// `arith.andi`.
    pub fn andi(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::AndI, l, r)
    }

    /// `arith.ori`.
    pub fn ori(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::OrI, l, r)
    }

    /// `arith.xori`.
    pub fn xori(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::XOrI, l, r)
    }

    /// `arith.shli`.
    pub fn shli(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::ShLI, l, r)
    }

    /// `arith.shrui`.
    pub fn shrui(&mut self, l: ValueId, r: ValueId) -> ValueId {
        self.binary(Opcode::ShRUI, l, r)
    }

    /// `arith.cmpi` with the given predicate; result is `i1`.
    pub fn cmpi(&mut self, pred: CmpPredicate, lhs: ValueId, rhs: ValueId) -> ValueId {
        let mut attrs = AttrMap::new();
        attrs.insert("predicate".into(), Attribute::Str(pred.name().into()));
        let op = self.push(Opcode::CmpI, vec![lhs, rhs], vec![Type::I1], attrs, vec![]);
        self.one_result(op)
    }

    /// `arith.select`.
    pub fn select(&mut self, cond: ValueId, t: ValueId, f: ValueId) -> ValueId {
        let ty = self.module.value_type(t).clone();
        let op = self.push(
            Opcode::Select,
            vec![cond, t, f],
            vec![ty],
            AttrMap::new(),
            vec![],
        );
        self.one_result(op)
    }

    // --- accfg -----------------------------------------------------------------

    /// `accfg.setup` without an input state (the first setup in a program).
    pub fn setup(&mut self, accelerator: &str, fields: &[(&str, ValueId)]) -> ValueId {
        self.setup_impl(accelerator, None, fields)
    }

    /// `accfg.setup from %state` — a delta setup relative to a prior state.
    pub fn setup_from(
        &mut self,
        accelerator: &str,
        input_state: ValueId,
        fields: &[(&str, ValueId)],
    ) -> ValueId {
        self.setup_impl(accelerator, Some(input_state), fields)
    }

    fn setup_impl(
        &mut self,
        accelerator: &str,
        input_state: Option<ValueId>,
        fields: &[(&str, ValueId)],
    ) -> ValueId {
        let mut attrs = AttrMap::new();
        attrs.insert("accelerator".into(), Attribute::Str(accelerator.into()));
        attrs.insert(
            "fields".into(),
            Attribute::str_array(fields.iter().map(|(n, _)| *n)),
        );
        attrs.insert(
            "has_input_state".into(),
            Attribute::Bool(input_state.is_some()),
        );
        let mut operands = Vec::with_capacity(fields.len() + 1);
        if let Some(s) = input_state {
            operands.push(s);
        }
        operands.extend(fields.iter().map(|(_, v)| *v));
        let op = self.push(
            Opcode::AccfgSetup,
            operands,
            vec![Type::state(accelerator)],
            attrs,
            vec![],
        );
        self.one_result(op)
    }

    /// `accfg.launch`, producing a token.
    pub fn launch(&mut self, accelerator: &str, state: ValueId) -> ValueId {
        let mut attrs = AttrMap::new();
        attrs.insert("accelerator".into(), Attribute::Str(accelerator.into()));
        let op = self.push(
            Opcode::AccfgLaunch,
            vec![state],
            vec![Type::token(accelerator)],
            attrs,
            vec![],
        );
        self.one_result(op)
    }

    /// `accfg.await` on a token.
    pub fn await_token(&mut self, accelerator: &str, token: ValueId) -> OpId {
        let mut attrs = AttrMap::new();
        attrs.insert("accelerator".into(), Attribute::Str(accelerator.into()));
        self.push(Opcode::AccfgAwait, vec![token], vec![], attrs, vec![])
    }

    // --- target ------------------------------------------------------------------

    /// `target.csr_write` to config register `csr`.
    pub fn csr_write(&mut self, csr: i64, value: ValueId) -> OpId {
        let mut attrs = AttrMap::new();
        attrs.insert("csr".into(), Attribute::Int(csr));
        self.push(Opcode::CsrWrite, vec![value], vec![], attrs, vec![])
    }

    /// `target.rocc_cmd` with the given funct and two payload registers.
    pub fn rocc_cmd(&mut self, funct: i64, rs1: ValueId, rs2: ValueId) -> OpId {
        let mut attrs = AttrMap::new();
        attrs.insert("funct".into(), Attribute::Int(funct));
        self.push(Opcode::RoccCmd, vec![rs1, rs2], vec![], attrs, vec![])
    }

    /// `target.launch`.
    pub fn target_launch(&mut self) -> OpId {
        self.push(Opcode::TargetLaunch, vec![], vec![], AttrMap::new(), vec![])
    }

    /// `target.await_poll`.
    pub fn target_await(&mut self) -> OpId {
        self.push(Opcode::TargetAwait, vec![], vec![], AttrMap::new(), vec![])
    }

    // --- foreign / structured -----------------------------------------------------

    /// `func.call` to an external symbol.
    pub fn call(
        &mut self,
        callee: &str,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
    ) -> Vec<ValueId> {
        let mut attrs = AttrMap::new();
        attrs.insert("callee".into(), Attribute::Str(callee.into()));
        let op = self.push(Opcode::Call, operands, result_types, attrs, vec![]);
        self.module.op(op).results.clone()
    }

    /// An opaque foreign op with optional accfg effects annotation.
    pub fn opaque(
        &mut self,
        name: &str,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        effects: Option<Effects>,
    ) -> Vec<ValueId> {
        let mut attrs = AttrMap::new();
        attrs.insert("name".into(), Attribute::Str(name.into()));
        if let Some(e) = effects {
            attrs.insert("effects".into(), Attribute::Effects(e));
        }
        let op = self.push(Opcode::Opaque, operands, result_types, attrs, vec![]);
        self.module.op(op).results.clone()
    }

    /// `func.return`.
    pub fn ret(&mut self, values: Vec<ValueId>) -> OpId {
        self.push(Opcode::Return, values, vec![], AttrMap::new(), vec![])
    }

    /// Builds an `scf.for` loop.
    ///
    /// The closure receives the builder (repositioned inside the body), the
    /// induction variable, and the iteration arguments; it must return the
    /// values yielded to the next iteration (one per init value). The loop's
    /// results (final iteration values) are returned.
    pub fn build_for(
        &mut self,
        lb: ValueId,
        ub: ValueId,
        step: ValueId,
        inits: Vec<ValueId>,
        body: impl FnOnce(&mut Self, ValueId, &[ValueId]) -> Vec<ValueId>,
    ) -> Vec<ValueId> {
        let region = self.module.create_region();
        let body_block = self.module.create_block(region);
        let iv = self.module.add_block_arg(body_block, Type::Index);
        let iter_args: Vec<ValueId> = inits
            .iter()
            .map(|&v| {
                let ty = self.module.value_type(v).clone();
                self.module.add_block_arg(body_block, ty)
            })
            .collect();

        let saved = self.block;
        self.block = body_block;
        let yields = body(self, iv, &iter_args);
        assert_eq!(
            yields.len(),
            inits.len(),
            "scf.for body must yield one value per init"
        );
        self.push(Opcode::Yield, yields, vec![], AttrMap::new(), vec![]);
        self.block = saved;

        let result_types: Vec<Type> = inits
            .iter()
            .map(|&v| self.module.value_type(v).clone())
            .collect();
        let mut operands = vec![lb, ub, step];
        operands.extend(inits);
        let op = self.push(
            Opcode::For,
            operands,
            result_types,
            AttrMap::new(),
            vec![region],
        );
        self.module.op(op).results.clone()
    }

    /// Builds an `scf.if` with both branches; each closure returns its yields
    /// (types must match across branches).
    pub fn build_if(
        &mut self,
        cond: ValueId,
        then_body: impl FnOnce(&mut Self) -> Vec<ValueId>,
        else_body: impl FnOnce(&mut Self) -> Vec<ValueId>,
    ) -> Vec<ValueId> {
        let then_region = self.module.create_region();
        let then_block = self.module.create_block(then_region);
        let else_region = self.module.create_region();
        let else_block = self.module.create_block(else_region);

        let saved = self.block;
        self.block = then_block;
        let then_yields = then_body(self);
        let result_types: Vec<Type> = then_yields
            .iter()
            .map(|&v| self.module.value_type(v).clone())
            .collect();
        self.push(Opcode::Yield, then_yields, vec![], AttrMap::new(), vec![]);

        self.block = else_block;
        let else_yields = else_body(self);
        assert_eq!(
            else_yields.len(),
            result_types.len(),
            "scf.if branches must yield the same number of values"
        );
        self.push(Opcode::Yield, else_yields, vec![], AttrMap::new(), vec![]);
        self.block = saved;

        let op = self.push(
            Opcode::If,
            vec![cond],
            result_types,
            AttrMap::new(),
            vec![then_region, else_region],
        );
        self.module.op(op).results.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_arith_chain() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I64]);
        let two = b.const_int(2, Type::I64);
        let doubled = b.muli(args[0], two);
        let shifted = b.shli(doubled, two);
        b.ret(vec![]);
        assert_eq!(m.value_type(shifted), &Type::I64);
        assert_eq!(m.walk_module().len(), 5);
    }

    #[test]
    fn builds_setup_launch_await_cluster() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(64);
        let state = b.setup("gemm", &[("x", x), ("y", x)]);
        let token = b.launch("gemm", state);
        b.await_token("gemm", token);
        b.ret(vec![]);

        assert_eq!(m.value_type(state), &Type::state("gemm"));
        assert_eq!(m.value_type(token), &Type::token("gemm"));
        let setup_op = match m.value(state).def {
            crate::module::ValueDef::OpResult { op, .. } => op,
            _ => panic!(),
        };
        let fields = m.attr(setup_op, "fields").unwrap().as_array().unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(
            m.attr(setup_op, "has_input_state").unwrap().as_bool(),
            Some(false)
        );
    }

    #[test]
    fn setup_from_threads_state() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s0 = b.setup("acc", &[("a", x)]);
        let s1 = b.setup_from("acc", s0, &[("b", x)]);
        b.ret(vec![]);
        let setup1 = match m.value(s1).def {
            crate::module::ValueDef::OpResult { op, .. } => op,
            _ => panic!(),
        };
        assert_eq!(m.op(setup1).operands[0], s0);
        assert_eq!(
            m.attr(setup1, "has_input_state").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn builds_for_loop_with_iter_args() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(10);
        let step = b.const_index(1);
        let init = b.const_int(0, Type::I64);
        let results = b.build_for(lb, ub, step, vec![init], |b, _iv, iters| {
            let one = b.const_int(1, Type::I64);
            let next = b.addi(iters[0], one);
            vec![next]
        });
        b.ret(vec![]);
        assert_eq!(results.len(), 1);
        assert_eq!(m.value_type(results[0]), &Type::I64);
    }

    #[test]
    fn builds_if_with_results() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I1]);
        let results = b.build_if(
            args[0],
            |b| vec![b.const_int(1, Type::I64)],
            |b| vec![b.const_int(2, Type::I64)],
        );
        b.ret(vec![]);
        assert_eq!(results.len(), 1);
        assert_eq!(m.value_type(results[0]), &Type::I64);
    }

    #[test]
    fn opaque_with_effects() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let rs = b.opaque("printf", vec![], vec![], Some(Effects::None));
        b.ret(vec![]);
        assert!(rs.is_empty());
    }
}
