//! The type system of the IR.
//!
//! Mirrors the small slice of MLIR's builtin + `accfg` type systems that the
//! paper's abstraction needs: fixed-width integers, `index`, and the two
//! accelerator-specific types `!accfg.state<"name">` and
//! `!accfg.token<"name">` introduced in Section 5.1 of the paper.

use std::fmt;

/// An IR value type.
///
/// # Examples
///
/// ```
/// use accfg_ir::Type;
///
/// let state = Type::state("gemmini");
/// assert!(state.is_state());
/// assert_eq!(state.accelerator(), Some("gemmini"));
/// assert_eq!(state.to_string(), "!accfg.state<\"gemmini\">");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 1-bit integer (booleans, comparison results).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// Platform-width index type (loop bounds, sizes, addresses).
    Index,
    /// `!accfg.state<"accel">`: the configuration-register state of an
    /// accelerator after a `accfg.setup`.
    State(String),
    /// `!accfg.token<"accel">`: an in-flight computation produced by
    /// `accfg.launch`, consumed by `accfg.await`.
    Token(String),
}

impl Type {
    /// Builds a `!accfg.state` type for the named accelerator.
    pub fn state(accelerator: impl Into<String>) -> Self {
        Type::State(accelerator.into())
    }

    /// Builds a `!accfg.token` type for the named accelerator.
    pub fn token(accelerator: impl Into<String>) -> Self {
        Type::Token(accelerator.into())
    }

    /// Returns `true` for any fixed-width integer or `index` type.
    pub fn is_integer_like(&self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64 | Type::Index
        )
    }

    /// Returns `true` for `!accfg.state` types.
    pub fn is_state(&self) -> bool {
        matches!(self, Type::State(_))
    }

    /// Returns `true` for `!accfg.token` types.
    pub fn is_token(&self) -> bool {
        matches!(self, Type::Token(_))
    }

    /// The accelerator name carried by a state or token type, if any.
    pub fn accelerator(&self) -> Option<&str> {
        match self {
            Type::State(a) | Type::Token(a) => Some(a),
            _ => None,
        }
    }

    /// Bit width of an integer-like type. `index` is modeled as 64 bits,
    /// matching the RV64 hosts in the paper.
    ///
    /// Returns `None` for non-integer types.
    pub fn bit_width(&self) -> Option<u32> {
        match self {
            Type::I1 => Some(1),
            Type::I8 => Some(8),
            Type::I16 => Some(16),
            Type::I32 => Some(32),
            Type::I64 | Type::Index => Some(64),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::I1 => write!(f, "i1"),
            Type::I8 => write!(f, "i8"),
            Type::I16 => write!(f, "i16"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::Index => write!(f, "index"),
            Type::State(a) => write!(f, "!accfg.state<\"{a}\">"),
            Type::Token(a) => write!(f, "!accfg.token<\"{a}\">"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_widths() {
        assert_eq!(Type::I1.bit_width(), Some(1));
        assert_eq!(Type::I8.bit_width(), Some(8));
        assert_eq!(Type::I16.bit_width(), Some(16));
        assert_eq!(Type::I32.bit_width(), Some(32));
        assert_eq!(Type::I64.bit_width(), Some(64));
        assert_eq!(Type::Index.bit_width(), Some(64));
        assert_eq!(Type::state("x").bit_width(), None);
    }

    #[test]
    fn state_and_token_carry_accelerator_names() {
        let s = Type::state("opengemm");
        let t = Type::token("opengemm");
        assert!(s.is_state() && !s.is_token());
        assert!(t.is_token() && !t.is_state());
        assert_eq!(s.accelerator(), Some("opengemm"));
        assert_eq!(t.accelerator(), Some("opengemm"));
        assert_eq!(Type::I64.accelerator(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Index.to_string(), "index");
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::token("acc").to_string(), "!accfg.token<\"acc\">");
    }

    #[test]
    fn integer_like_classification() {
        for t in [
            Type::I1,
            Type::I8,
            Type::I16,
            Type::I32,
            Type::I64,
            Type::Index,
        ] {
            assert!(t.is_integer_like());
        }
        assert!(!Type::state("a").is_integer_like());
        assert!(!Type::token("a").is_integer_like());
    }
}
