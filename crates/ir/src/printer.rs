//! Textual IR printing, in an MLIR-flavoured syntax.
//!
//! accfg ops print in the paper's notation (Figure 6):
//!
//! ```text
//! %2 = accfg.setup "gemm" to ("x" = %0, "y" = %1) : !accfg.state<"gemm">
//! %3 = accfg.launch "gemm" with %2 : !accfg.token<"gemm">
//! accfg.await "gemm" %3
//! ```
//!
//! Everything else uses a uniform generic form that the companion
//! [`parser`](crate::parser) reads back, enabling round-trip tests.

use crate::attrs::Attribute;
use crate::module::{BlockId, Module, OpId, ValueId};
use crate::op::Opcode;
use std::collections::HashMap;
use std::fmt::Write;

/// Prints a whole module.
pub fn print_module(m: &Module) -> String {
    let mut p = Printer::new(m);
    p.out.push_str("module {\n");
    p.indent = 1;
    for &f in m.funcs() {
        p.print_func(f);
    }
    p.out.push_str("}\n");
    p.out
}

/// Prints a single function.
pub fn print_func(m: &Module, func: OpId) -> String {
    let mut p = Printer::new(m);
    p.print_func(func);
    p.out
}

struct Printer<'m> {
    m: &'m Module,
    names: HashMap<ValueId, String>,
    next_name: usize,
    out: String,
    indent: usize,
}

impl<'m> Printer<'m> {
    fn new(m: &'m Module) -> Self {
        Self {
            m,
            names: HashMap::new(),
            next_name: 0,
            out: String::new(),
            indent: 0,
        }
    }

    fn name(&mut self, v: ValueId) -> String {
        if let Some(n) = self.names.get(&v) {
            return n.clone();
        }
        let n = format!("%{}", self.next_name);
        self.next_name += 1;
        self.names.insert(v, n.clone());
        n
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn print_func(&mut self, func: OpId) {
        let name = self
            .m
            .str_attr(func, "sym_name")
            .unwrap_or("<anonymous>")
            .to_string();
        self.pad();
        write!(self.out, "func.func @{name}(").unwrap();
        let body = self.m.body_block(func, 0);
        let args = self.m.block(body).args.clone();
        for (i, arg) in args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let n = self.name(*arg);
            let ty = self.m.value_type(*arg);
            write!(self.out, "{n}: {ty}").unwrap();
        }
        self.out.push_str(") {\n");
        self.indent += 1;
        self.print_block_ops(body);
        self.indent -= 1;
        self.pad();
        self.out.push_str("}\n");
    }

    fn print_block_ops(&mut self, block: BlockId) {
        for op in self.m.block_ops(block) {
            self.print_op(op);
        }
    }

    fn print_op(&mut self, op: OpId) {
        match self.m.op(op).opcode {
            Opcode::For => self.print_for(op),
            Opcode::If => self.print_if(op),
            Opcode::AccfgSetup => self.print_setup(op),
            Opcode::AccfgLaunch => self.print_launch(op),
            Opcode::AccfgAwait => self.print_await(op),
            _ => self.print_generic(op),
        }
    }

    fn print_results_prefix(&mut self, op: OpId) {
        let results = self.m.op(op).results.clone();
        if results.is_empty() {
            return;
        }
        let names: Vec<String> = results.iter().map(|&r| self.name(r)).collect();
        write!(self.out, "{} = ", names.join(", ")).unwrap();
    }

    fn print_attrs(&mut self, op: OpId, skip: &[&str]) {
        let attrs: Vec<(String, Attribute)> = self
            .m
            .op(op)
            .attrs
            .iter()
            .filter(|(k, _)| !skip.contains(&k.as_str()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        if attrs.is_empty() {
            return;
        }
        self.out.push_str(" {");
        for (i, (k, v)) in attrs.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            write!(self.out, "{k} = {v}").unwrap();
        }
        self.out.push('}');
    }

    fn print_generic(&mut self, op: OpId) {
        self.pad();
        self.print_results_prefix(op);
        write!(self.out, "{}(", self.m.op(op).opcode.name()).unwrap();
        let operands = self.m.op(op).operands.clone();
        for (i, v) in operands.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let n = self.name(*v);
            self.out.push_str(&n);
        }
        self.out.push(')');
        self.print_attrs(op, &[]);
        let results = self.m.op(op).results.clone();
        if !results.is_empty() {
            let tys: Vec<String> = results
                .iter()
                .map(|&r| self.m.value_type(r).to_string())
                .collect();
            write!(self.out, " : {}", tys.join(", ")).unwrap();
        }
        self.out.push('\n');
    }

    fn print_setup(&mut self, op: OpId) {
        self.pad();
        self.print_results_prefix(op);
        let accel = self
            .m
            .str_attr(op, "accelerator")
            .unwrap_or_default()
            .to_string();
        write!(self.out, "accfg.setup \"{accel}\"").unwrap();
        let has_input = self
            .m
            .attr(op, "has_input_state")
            .and_then(Attribute::as_bool)
            .unwrap_or(false);
        let operands = self.m.op(op).operands.clone();
        let mut field_operands = operands.as_slice();
        if has_input {
            let n = self.name(operands[0]);
            write!(self.out, " from {n}").unwrap();
            field_operands = &operands[1..];
        }
        let field_names: Vec<String> = self
            .m
            .attr(op, "fields")
            .and_then(Attribute::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(|x| x.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        self.out.push_str(" to (");
        for (i, (fname, v)) in field_names.iter().zip(field_operands.iter()).enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let n = self.name(*v);
            write!(self.out, "\"{fname}\" = {n}").unwrap();
        }
        self.out.push(')');
        self.print_attrs(op, &["accelerator", "fields", "has_input_state"]);
        let result = self.m.op(op).results[0];
        writeln!(self.out, " : {}", self.m.value_type(result)).unwrap();
    }

    fn print_launch(&mut self, op: OpId) {
        self.pad();
        self.print_results_prefix(op);
        let accel = self
            .m
            .str_attr(op, "accelerator")
            .unwrap_or_default()
            .to_string();
        let state = self.name(self.m.op(op).operands[0]);
        write!(self.out, "accfg.launch \"{accel}\" with {state}").unwrap();
        self.print_attrs(op, &["accelerator"]);
        let result = self.m.op(op).results[0];
        writeln!(self.out, " : {}", self.m.value_type(result)).unwrap();
    }

    fn print_await(&mut self, op: OpId) {
        self.pad();
        let accel = self
            .m
            .str_attr(op, "accelerator")
            .unwrap_or_default()
            .to_string();
        let token = self.name(self.m.op(op).operands[0]);
        write!(self.out, "accfg.await \"{accel}\" {token}").unwrap();
        self.print_attrs(op, &["accelerator"]);
        self.out.push('\n');
    }

    fn print_for(&mut self, op: OpId) {
        self.pad();
        self.print_results_prefix(op);
        let operands = self.m.op(op).operands.clone();
        let (lb, ub, step) = (operands[0], operands[1], operands[2]);
        let inits = &operands[3..];
        let body = self.m.body_block(op, 0);
        let args = self.m.block(body).args.clone();
        let iv = args[0];
        let iv_name = self.name(iv);
        let lb_name = self.name(lb);
        let ub_name = self.name(ub);
        let step_name = self.name(step);
        write!(
            self.out,
            "scf.for {iv_name} = {lb_name} to {ub_name} step {step_name}"
        )
        .unwrap();
        if !inits.is_empty() {
            self.out.push_str(" iter_args(");
            for (i, (&arg, &init)) in args[1..].iter().zip(inits.iter()).enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let a = self.name(arg);
                let b = self.name(init);
                write!(self.out, "{a} = {b}").unwrap();
            }
            self.out.push(')');
            let tys: Vec<String> = self
                .m
                .op(op)
                .results
                .iter()
                .map(|&r| self.m.value_type(r).to_string())
                .collect();
            write!(self.out, " -> ({})", tys.join(", ")).unwrap();
        }
        self.print_attrs(op, &[]);
        self.out.push_str(" {\n");
        self.indent += 1;
        self.print_block_ops(body);
        self.indent -= 1;
        self.pad();
        self.out.push_str("}\n");
    }

    fn print_if(&mut self, op: OpId) {
        self.pad();
        self.print_results_prefix(op);
        let cond = self.name(self.m.op(op).operands[0]);
        write!(self.out, "scf.if {cond}").unwrap();
        let results = self.m.op(op).results.clone();
        if !results.is_empty() {
            let tys: Vec<String> = results
                .iter()
                .map(|&r| self.m.value_type(r).to_string())
                .collect();
            write!(self.out, " -> ({})", tys.join(", ")).unwrap();
        }
        self.print_attrs(op, &[]);
        self.out.push_str(" then {\n");
        self.indent += 1;
        let then_block = self.m.body_block(op, 0);
        self.print_block_ops(then_block);
        self.indent -= 1;
        self.pad();
        self.out.push_str("} else {\n");
        self.indent += 1;
        let else_block = self.m.body_block(op, 1);
        self.print_block_ops(else_block);
        self.indent -= 1;
        self.pad();
        self.out.push_str("}\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::Type;

    #[test]
    fn prints_figure6_style_ir() {
        let mut m = Module::new();
        let (mut b, args) =
            FuncBuilder::new_func(&mut m, "matmul", vec![Type::I64, Type::I64, Type::I64]);
        let x = b.const_index(64);
        let state = b.setup(
            "gemm2d",
            &[("x", x), ("A", args[0]), ("B", args[1]), ("C", args[2])],
        );
        let token = b.launch("gemm2d", state);
        b.await_token("gemm2d", token);
        b.ret(vec![]);

        let text = print_module(&m);
        assert!(text.contains("func.func @matmul(%0: i64, %1: i64, %2: i64)"));
        assert!(text.contains("accfg.setup \"gemm2d\" to (\"x\" = %3, \"A\" = %0, \"B\" = %1, \"C\" = %2) : !accfg.state<\"gemm2d\">"));
        assert!(text.contains("accfg.launch \"gemm2d\" with %4 : !accfg.token<\"gemm2d\">"));
        assert!(text.contains("accfg.await \"gemm2d\" %5"));
    }

    #[test]
    fn prints_setup_from() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let x = b.const_index(1);
        let s0 = b.setup("acc", &[("a", x)]);
        let _s1 = b.setup_from("acc", s0, &[("b", x)]);
        b.ret(vec![]);
        let text = print_module(&m);
        assert!(text.contains("accfg.setup \"acc\" from %1 to (\"b\" = %0)"));
    }

    #[test]
    fn prints_for_loop() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let lb = b.const_index(0);
        let ub = b.const_index(8);
        let step = b.const_index(1);
        let init = b.const_int(0, Type::I64);
        b.build_for(lb, ub, step, vec![init], |b, _iv, iters| {
            let one = b.const_int(1, Type::I64);
            vec![b.addi(iters[0], one)]
        });
        b.ret(vec![]);
        let text = print_module(&m);
        assert!(text.contains("scf.for"), "{text}");
        assert!(text.contains("iter_args("), "{text}");
        assert!(text.contains("-> (i64)"), "{text}");
        assert!(text.contains("scf.yield("), "{text}");
    }

    #[test]
    fn prints_if() {
        let mut m = Module::new();
        let (mut b, args) = FuncBuilder::new_func(&mut m, "f", vec![Type::I1]);
        b.build_if(
            args[0],
            |b| vec![b.const_int(1, Type::I64)],
            |b| vec![b.const_int(2, Type::I64)],
        );
        b.ret(vec![]);
        let text = print_module(&m);
        assert!(text.contains("scf.if %0 -> (i64) then {"), "{text}");
        assert!(text.contains("} else {"), "{text}");
    }

    #[test]
    fn generic_ops_include_attrs_and_types() {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        let c = b.const_int(42, Type::I32);
        b.csr_write(7, c);
        b.ret(vec![]);
        let text = print_module(&m);
        assert!(
            text.contains("arith.constant() {value = 42} : i32"),
            "{text}"
        );
        assert!(text.contains("target.csr_write(%0) {csr = 7}"), "{text}");
    }
}
