//! Attributes: compile-time constant metadata attached to operations.
//!
//! Includes the paper's `#accfg.effects<...>` attribute (Section 5.1), the
//! escape hatch that tells the accfg passes whether an opaque operation
//! preserves or clobbers accelerator configuration state.

use std::collections::BTreeMap;
use std::fmt;

/// How an operation outside the `accfg` dialect interacts with accelerator
/// configuration state (the paper's `#accfg.effects` attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Effects {
    /// `#accfg.effects<none>`: the operation is guaranteed to leave all
    /// accelerator configuration registers untouched (e.g. a `printf` call).
    None,
    /// `#accfg.effects<all>`: the operation may clobber any accelerator
    /// state; optimizations must not move setups across it.
    All,
}

impl fmt::Display for Effects {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effects::None => write!(f, "none"),
            Effects::All => write!(f, "all"),
        }
    }
}

/// A compile-time constant attribute value.
///
/// # Examples
///
/// ```
/// use accfg_ir::Attribute;
///
/// let a = Attribute::Int(42);
/// assert_eq!(a.as_int(), Some(42));
/// assert_eq!(a.to_string(), "42");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attribute {
    /// A 64-bit integer constant.
    Int(i64),
    /// A string constant.
    Str(String),
    /// A boolean constant.
    Bool(bool),
    /// An ordered list of attributes.
    Array(Vec<Attribute>),
    /// The accfg effects marker.
    Effects(Effects),
}

impl Attribute {
    /// Returns the integer payload, if this is an [`Attribute::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this is an [`Attribute::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is an [`Attribute::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the array payload, if this is an [`Attribute::Array`].
    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the effects payload, if this is an [`Attribute::Effects`].
    pub fn as_effects(&self) -> Option<Effects> {
        match self {
            Attribute::Effects(e) => Some(*e),
            _ => None,
        }
    }

    /// Builds an array of string attributes (used for `accfg.setup` field
    /// name lists).
    pub fn str_array<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Attribute::Array(
            items
                .into_iter()
                .map(|s| Attribute::Str(s.into()))
                .collect(),
        )
    }
}

impl From<i64> for Attribute {
    fn from(v: i64) -> Self {
        Attribute::Int(v)
    }
}

impl From<bool> for Attribute {
    fn from(v: bool) -> Self {
        Attribute::Bool(v)
    }
}

impl From<&str> for Attribute {
    fn from(v: &str) -> Self {
        Attribute::Str(v.to_string())
    }
}

impl From<String> for Attribute {
    fn from(v: String) -> Self {
        Attribute::Str(v)
    }
}

impl From<Effects> for Attribute {
    fn from(v: Effects) -> Self {
        Attribute::Effects(v)
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Int(v) => write!(f, "{v}"),
            Attribute::Str(s) => write!(f, "\"{}\"", escape(s)),
            Attribute::Bool(b) => write!(f, "{b}"),
            Attribute::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Attribute::Effects(e) => write!(f, "#accfg.effects<{e}>"),
        }
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// An ordered attribute dictionary, keyed by attribute name.
///
/// Ordering is deterministic (lexicographic) so printed IR is stable, which
/// the printer/parser round-trip tests rely on.
pub type AttrMap = BTreeMap<String, Attribute>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Attribute::Int(7).as_int(), Some(7));
        assert_eq!(Attribute::Int(7).as_str(), None);
        assert_eq!(Attribute::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Attribute::Bool(true).as_bool(), Some(true));
        assert_eq!(
            Attribute::Effects(Effects::All).as_effects(),
            Some(Effects::All)
        );
        let arr = Attribute::str_array(["a", "b"]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
    }

    #[test]
    fn display_escapes_strings() {
        let a = Attribute::Str("he\"llo\\world".into());
        assert_eq!(a.to_string(), "\"he\\\"llo\\\\world\"");
    }

    #[test]
    fn display_arrays_and_effects() {
        let arr = Attribute::Array(vec![Attribute::Int(1), Attribute::Bool(false)]);
        assert_eq!(arr.to_string(), "[1, false]");
        assert_eq!(
            Attribute::Effects(Effects::None).to_string(),
            "#accfg.effects<none>"
        );
    }

    #[test]
    fn conversion_impls() {
        assert_eq!(Attribute::from(3i64), Attribute::Int(3));
        assert_eq!(Attribute::from(true), Attribute::Bool(true));
        assert_eq!(Attribute::from("s"), Attribute::Str("s".into()));
        assert_eq!(
            Attribute::from(Effects::None),
            Attribute::Effects(Effects::None)
        );
    }
}
