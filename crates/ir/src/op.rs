//! Operation definitions: opcodes and per-operation storage.

use crate::attrs::AttrMap;
use crate::module::{BlockId, RegionId, ValueId};
use std::fmt;

/// Every operation kind known to the IR.
///
/// The set mirrors the dialects used in the paper's pipeline (Figure 8):
/// `func` and `arith`/`scf` as the host-side input IR, `accfg` as the
/// accelerator abstraction, and a small "target" dialect representing the
/// per-accelerator instruction sequences produced by lowering (step 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    // --- func dialect -----------------------------------------------------
    /// `func.func`: a function definition. Attr `sym_name`; one body region.
    Func,
    /// `func.return`: terminates a function body.
    Return,
    /// `func.call`: call to an external function. Attr `callee`. Opaque to
    /// optimizations unless annotated with `#accfg.effects<none>`.
    Call,

    // --- arith dialect ----------------------------------------------------
    /// `arith.constant`: attr `value` holds the integer constant.
    Constant,
    /// `arith.addi`.
    AddI,
    /// `arith.subi`.
    SubI,
    /// `arith.muli`.
    MulI,
    /// `arith.divui` (unsigned).
    DivUI,
    /// `arith.remui` (unsigned).
    RemUI,
    /// `arith.andi`.
    AndI,
    /// `arith.ori`.
    OrI,
    /// `arith.xori`.
    XOrI,
    /// `arith.shli`.
    ShLI,
    /// `arith.shrui` (logical shift right).
    ShRUI,
    /// `arith.cmpi`: attr `predicate` in {"eq","ne","slt","sle","sgt","sge","ult","ule"}.
    CmpI,
    /// `arith.select`: operands (cond, true_value, false_value).
    Select,

    // --- scf dialect ------------------------------------------------------
    /// `scf.for`: operands (lb, ub, step, init...); one region whose entry
    /// block has args (induction var, iter args...); results = final iter args.
    For,
    /// `scf.if`: operand (cond); two regions (then, else); results from yields.
    If,
    /// `scf.yield`: terminator of `scf.for`/`scf.if` regions.
    Yield,

    // --- accfg dialect (Section 5.1) ---------------------------------------
    /// `accfg.setup`: writes configuration registers. Attrs: `accelerator`
    /// (Str), `fields` (Array of Str, parallel to the field operands),
    /// `has_input_state` (Bool). Operands: `[input_state?, field values...]`.
    /// One result of `!accfg.state`.
    AccfgSetup,
    /// `accfg.launch`: launches the accelerator with a given state. Attr
    /// `accelerator`. Operand: state. Result: `!accfg.token`.
    AccfgLaunch,
    /// `accfg.await`: blocks until the token's computation completes.
    /// Attr `accelerator`. Operand: token. No results.
    AccfgAwait,

    // --- target dialect (post-lowering, step 5 of Figure 8) ----------------
    /// `target.csr_write`: a single MMIO/CSR config-register write. Attr
    /// `csr` (Int register index). Operand: the value written.
    CsrWrite,
    /// `target.rocc_cmd`: a Gemmini-style custom instruction carrying two
    /// 64-bit register payloads (16 config bytes). Attr `funct` (Int).
    /// Operands: (rs1, rs2).
    RoccCmd,
    /// `target.launch`: explicit write to the launch register.
    TargetLaunch,
    /// `target.await_poll`: poll the status register until idle.
    TargetAwait,

    // --- escape hatch -------------------------------------------------------
    /// An opaque foreign operation. Attr `name` (Str) and optionally
    /// `effects` ([`crate::Effects`]). Arbitrary operands/results.
    Opaque,
}

impl Opcode {
    /// The full dotted name, as printed in the textual IR.
    pub fn name(self) -> &'static str {
        use Opcode::*;
        match self {
            Func => "func.func",
            Return => "func.return",
            Call => "func.call",
            Constant => "arith.constant",
            AddI => "arith.addi",
            SubI => "arith.subi",
            MulI => "arith.muli",
            DivUI => "arith.divui",
            RemUI => "arith.remui",
            AndI => "arith.andi",
            OrI => "arith.ori",
            XOrI => "arith.xori",
            ShLI => "arith.shli",
            ShRUI => "arith.shrui",
            CmpI => "arith.cmpi",
            Select => "arith.select",
            For => "scf.for",
            If => "scf.if",
            Yield => "scf.yield",
            AccfgSetup => "accfg.setup",
            AccfgLaunch => "accfg.launch",
            AccfgAwait => "accfg.await",
            CsrWrite => "target.csr_write",
            RoccCmd => "target.rocc_cmd",
            TargetLaunch => "target.launch",
            TargetAwait => "target.await_poll",
            Opaque => "opaque.op",
        }
    }

    /// Looks an opcode up by its dotted name.
    pub fn from_name(name: &str) -> Option<Self> {
        use Opcode::*;
        Some(match name {
            "func.func" => Func,
            "func.return" => Return,
            "func.call" => Call,
            "arith.constant" => Constant,
            "arith.addi" => AddI,
            "arith.subi" => SubI,
            "arith.muli" => MulI,
            "arith.divui" => DivUI,
            "arith.remui" => RemUI,
            "arith.andi" => AndI,
            "arith.ori" => OrI,
            "arith.xori" => XOrI,
            "arith.shli" => ShLI,
            "arith.shrui" => ShRUI,
            "arith.cmpi" => CmpI,
            "arith.select" => Select,
            "scf.for" => For,
            "scf.if" => If,
            "scf.yield" => Yield,
            "accfg.setup" => AccfgSetup,
            "accfg.launch" => AccfgLaunch,
            "accfg.await" => AccfgAwait,
            "target.csr_write" => CsrWrite,
            "target.rocc_cmd" => RoccCmd,
            "target.launch" => TargetLaunch,
            "target.await_poll" => TargetAwait,
            "opaque.op" => Opaque,
            _ => return None,
        })
    }

    /// `true` if the op has no side effects and may be freely duplicated,
    /// CSE'd, hoisted, or removed when unused.
    ///
    /// `accfg.setup` is *not* pure — it writes external register state — but
    /// the accfg passes reason about it specially.
    pub fn is_pure(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Constant
                | AddI
                | SubI
                | MulI
                | DivUI
                | RemUI
                | AndI
                | OrI
                | XOrI
                | ShLI
                | ShRUI
                | CmpI
                | Select
        )
    }

    /// `true` for ops that terminate a block.
    pub fn is_terminator(self) -> bool {
        matches!(self, Opcode::Return | Opcode::Yield)
    }

    /// `true` for binary integer arithmetic ops (two integer operands, one
    /// integer result of the same type).
    pub fn is_binary_arith(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            AddI | SubI | MulI | DivUI | RemUI | AndI | OrI | XOrI | ShLI | ShRUI
        )
    }

    /// `true` for ops of the accfg dialect.
    pub fn is_accfg(self) -> bool {
        matches!(
            self,
            Opcode::AccfgSetup | Opcode::AccfgLaunch | Opcode::AccfgAwait
        )
    }

    /// `true` for ops with nested regions.
    pub fn has_regions(self) -> bool {
        matches!(self, Opcode::Func | Opcode::For | Opcode::If)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Integer comparison predicates for `arith.cmpi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPredicate {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
}

impl CmpPredicate {
    /// The textual form used in the `predicate` attribute.
    pub fn name(self) -> &'static str {
        match self {
            CmpPredicate::Eq => "eq",
            CmpPredicate::Ne => "ne",
            CmpPredicate::Slt => "slt",
            CmpPredicate::Sle => "sle",
            CmpPredicate::Sgt => "sgt",
            CmpPredicate::Sge => "sge",
            CmpPredicate::Ult => "ult",
            CmpPredicate::Ule => "ule",
        }
    }

    /// Parses the textual form.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "eq" => CmpPredicate::Eq,
            "ne" => CmpPredicate::Ne,
            "slt" => CmpPredicate::Slt,
            "sle" => CmpPredicate::Sle,
            "sgt" => CmpPredicate::Sgt,
            "sge" => CmpPredicate::Sge,
            "ult" => CmpPredicate::Ult,
            "ule" => CmpPredicate::Ule,
            _ => return None,
        })
    }

    /// Evaluates the predicate on two 64-bit values.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpPredicate::Eq => lhs == rhs,
            CmpPredicate::Ne => lhs != rhs,
            CmpPredicate::Slt => lhs < rhs,
            CmpPredicate::Sle => lhs <= rhs,
            CmpPredicate::Sgt => lhs > rhs,
            CmpPredicate::Sge => lhs >= rhs,
            CmpPredicate::Ult => (lhs as u64) < (rhs as u64),
            CmpPredicate::Ule => (lhs as u64) <= (rhs as u64),
        }
    }
}

/// The stored data of a single operation.
#[derive(Debug, Clone)]
pub struct OpData {
    /// What kind of operation this is.
    pub opcode: Opcode,
    /// SSA operands, in order.
    pub operands: Vec<ValueId>,
    /// SSA results, in order.
    pub results: Vec<ValueId>,
    /// Attribute dictionary.
    pub attrs: AttrMap,
    /// Nested regions (empty for most ops).
    pub regions: Vec<RegionId>,
    /// The block containing this op (`None` while detached).
    pub parent: Option<BlockId>,
    /// Tombstone: erased ops stay in the arena but are skipped everywhere.
    pub alive: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_names_round_trip() {
        use Opcode::*;
        for op in [
            Func,
            Return,
            Call,
            Constant,
            AddI,
            SubI,
            MulI,
            DivUI,
            RemUI,
            AndI,
            OrI,
            XOrI,
            ShLI,
            ShRUI,
            CmpI,
            Select,
            For,
            If,
            Yield,
            AccfgSetup,
            AccfgLaunch,
            AccfgAwait,
            CsrWrite,
            RoccCmd,
            TargetLaunch,
            TargetAwait,
            Opaque,
        ] {
            assert_eq!(Opcode::from_name(op.name()), Some(op), "{op}");
        }
        assert_eq!(Opcode::from_name("nonexistent.op"), None);
    }

    #[test]
    fn purity_classification() {
        assert!(Opcode::AddI.is_pure());
        assert!(Opcode::Constant.is_pure());
        assert!(!Opcode::AccfgSetup.is_pure());
        assert!(!Opcode::Call.is_pure());
        assert!(!Opcode::For.is_pure());
        assert!(!Opcode::CsrWrite.is_pure());
    }

    #[test]
    fn terminators() {
        assert!(Opcode::Return.is_terminator());
        assert!(Opcode::Yield.is_terminator());
        assert!(!Opcode::AddI.is_terminator());
    }

    #[test]
    fn cmp_predicates_round_trip_and_eval() {
        for p in [
            CmpPredicate::Eq,
            CmpPredicate::Ne,
            CmpPredicate::Slt,
            CmpPredicate::Sle,
            CmpPredicate::Sgt,
            CmpPredicate::Sge,
            CmpPredicate::Ult,
            CmpPredicate::Ule,
        ] {
            assert_eq!(CmpPredicate::from_name(p.name()), Some(p));
        }
        assert!(CmpPredicate::Slt.eval(-1, 0));
        assert!(!CmpPredicate::Ult.eval(-1, 0)); // -1 as u64 is huge
        assert!(CmpPredicate::Eq.eval(5, 5));
        assert!(CmpPredicate::Ne.eval(5, 6));
        assert!(CmpPredicate::Sge.eval(5, 5));
        assert!(CmpPredicate::Ule.eval(3, 3));
    }

    #[test]
    fn region_holding_ops() {
        assert!(Opcode::For.has_regions());
        assert!(Opcode::If.has_regions());
        assert!(Opcode::Func.has_regions());
        assert!(!Opcode::AddI.has_regions());
    }
}
