//! Pass infrastructure: the [`Pass`] trait and a [`PassManager`] that runs
//! pipelines with optional verification between passes — a miniature of
//! MLIR's pass manager, sufficient for the pipeline in Figure 8 of the paper.

use crate::module::Module;
use crate::verifier::{verify, VerifyError};
use std::error::Error;
use std::fmt;

/// Whether a pass changed the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Changed {
    /// The pass modified the module.
    Yes,
    /// The pass left the module untouched.
    No,
}

impl Changed {
    /// Combines two change indicators.
    pub fn or(self, other: Changed) -> Changed {
        if self == Changed::Yes || other == Changed::Yes {
            Changed::Yes
        } else {
            Changed::No
        }
    }

    /// `true` if this is [`Changed::Yes`].
    pub fn changed(self) -> bool {
        self == Changed::Yes
    }
}

impl From<bool> for Changed {
    fn from(b: bool) -> Self {
        if b {
            Changed::Yes
        } else {
            Changed::No
        }
    }
}

/// A module-level transformation.
pub trait Pass {
    /// A short kebab-case identifier (e.g. `"accfg-dedup"`).
    fn name(&self) -> &str;

    /// Runs the pass, reporting whether the IR changed.
    fn run(&self, module: &mut Module) -> Changed;
}

/// A differential checker comparing a module snapshot against its rewrite.
///
/// Called by [`PassManager::validate_each`] with `(before, after, pass)`;
/// returning `Err` aborts the pipeline with a [`PipelineError`] attributing
/// the failure to `pass`. The IR crate defines only the hook; semantic
/// validators (e.g. translation validation of the reaching configuration
/// state) live in higher layers.
pub type PassValidator = Box<dyn Fn(&Module, &Module, &str) -> Result<(), String>>;

/// Failure while running a pipeline: a pass broke verification.
#[derive(Debug)]
pub struct PipelineError {
    /// The pass that produced invalid IR.
    pub pass: String,
    /// The underlying verifier failure.
    pub error: VerifyError,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pass `{}` produced invalid IR: {}",
            self.pass, self.error
        )
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

/// Statistics from one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// For each executed pass: its name and whether it changed the IR.
    pub passes: Vec<(String, bool)>,
}

impl PipelineStats {
    /// `true` if any pass reported a change.
    pub fn any_changed(&self) -> bool {
        self.passes.iter().any(|(_, c)| *c)
    }
}

/// Runs an ordered list of passes over a module.
///
/// # Examples
///
/// ```
/// use accfg_ir::{Module, PassManager, FuncBuilder, Type};
/// use accfg_ir::passes::Canonicalize;
///
/// let mut m = Module::new();
/// let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
/// let one = b.const_int(1, Type::I64);
/// let two = b.const_int(2, Type::I64);
/// b.addi(one, two);
/// b.ret(vec![]);
///
/// let mut pm = PassManager::new();
/// pm.add(Canonicalize);
/// let stats = pm.run(&mut m)?;
/// assert!(stats.any_changed()); // 1 + 2 was folded
/// # Ok::<(), accfg_ir::PipelineError>(())
/// ```
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    validator: Option<PassValidator>,
}

impl PassManager {
    /// Creates an empty pipeline with per-pass verification enabled.
    pub fn new() -> Self {
        Self {
            passes: Vec::new(),
            verify_each: true,
            validator: None,
        }
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Enables or disables verification after every pass.
    pub fn verify_each(&mut self, enable: bool) -> &mut Self {
        self.verify_each = enable;
        self
    }

    /// Installs a differential validator run after every pass, mirroring
    /// [`PassManager::verify_each`]: the module is snapshotted before each
    /// pass and `validator(before, after, pass_name)` must accept the
    /// rewrite. Translation validation of accfg configuration state plugs
    /// in here.
    pub fn validate_each(
        &mut self,
        validator: impl Fn(&Module, &Module, &str) -> Result<(), String> + 'static,
    ) -> &mut Self {
        self.validator = Some(Box::new(validator));
        self
    }

    /// The names of the scheduled passes, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass once, in order.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] if verification fails after a pass (when
    /// enabled) or before the first pass.
    pub fn run(&self, module: &mut Module) -> Result<PipelineStats, PipelineError> {
        if self.verify_each {
            verify(module).map_err(|error| PipelineError {
                pass: "<input>".into(),
                error,
            })?;
        }
        let mut stats = PipelineStats::default();
        for pass in &self.passes {
            let before = self.validator.as_ref().map(|_| module.clone());
            let changed = pass.run(module);
            stats
                .passes
                .push((pass.name().to_string(), changed.changed()));
            if self.verify_each {
                verify(module).map_err(|error| PipelineError {
                    pass: pass.name().to_string(),
                    error,
                })?;
            }
            if let (Some(validator), Some(before)) = (&self.validator, before) {
                validator(&before, module, pass.name()).map_err(|message| PipelineError {
                    pass: pass.name().to_string(),
                    error: VerifyError {
                        op: None,
                        message: format!("translation validation failed: {message}"),
                    },
                })?;
            }
        }
        Ok(stats)
    }

    /// Runs the pipeline repeatedly until no pass reports a change (fixpoint)
    /// or `max_iterations` is reached.
    ///
    /// # Errors
    ///
    /// Propagates verification failures like [`PassManager::run`].
    pub fn run_to_fixpoint(
        &self,
        module: &mut Module,
        max_iterations: usize,
    ) -> Result<PipelineStats, PipelineError> {
        let mut all = PipelineStats::default();
        for _ in 0..max_iterations {
            let stats = self.run(module)?;
            let changed = stats.any_changed();
            all.passes.extend(stats.passes);
            if !changed {
                break;
            }
        }
        Ok(all)
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .field("verify_each", &self.verify_each)
            .field("validate_each", &self.validator.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::Type;

    struct NoOpPass;
    impl Pass for NoOpPass {
        fn name(&self) -> &str {
            "no-op"
        }
        fn run(&self, _m: &mut Module) -> Changed {
            Changed::No
        }
    }

    struct BreakingPass;
    impl Pass for BreakingPass {
        fn name(&self) -> &str {
            "breaker"
        }
        fn run(&self, m: &mut Module) -> Changed {
            // erase the terminator, invalidating the IR
            let func = m.funcs()[0];
            let block = m.body_block(func, 0);
            let term = m.terminator(block);
            m.erase_op(term);
            Changed::Yes
        }
    }

    fn simple_module() -> Module {
        let mut m = Module::new();
        let (mut b, _) = FuncBuilder::new_func(&mut m, "f", vec![]);
        b.const_int(1, Type::I64);
        b.ret(vec![]);
        m
    }

    #[test]
    fn runs_passes_in_order() {
        let mut m = simple_module();
        let mut pm = PassManager::new();
        pm.add(NoOpPass).add(NoOpPass);
        let stats = pm.run(&mut m).unwrap();
        assert_eq!(stats.passes.len(), 2);
        assert!(!stats.any_changed());
    }

    #[test]
    fn detects_broken_pass() {
        let mut m = simple_module();
        let mut pm = PassManager::new();
        pm.add(BreakingPass);
        let e = pm.run(&mut m).unwrap_err();
        assert_eq!(e.pass, "breaker");
    }

    struct ConstFlipPass;
    impl Pass for ConstFlipPass {
        fn name(&self) -> &str {
            "const-flip"
        }
        fn run(&self, m: &mut Module) -> Changed {
            // rewrite every constant to 0 — valid IR, changed semantics
            let func = m.funcs()[0];
            for op in m.walk_collect(func) {
                if m.op(op).opcode == crate::op::Opcode::Constant {
                    m.set_attr(op, "value", crate::attrs::Attribute::Int(0));
                }
            }
            Changed::Yes
        }
    }

    #[test]
    fn validator_sees_before_and_after() {
        let mut m = simple_module();
        let mut pm = PassManager::new();
        pm.add(ConstFlipPass);
        pm.validate_each(|before, after, pass| {
            assert_eq!(pass, "const-flip");
            let count = |m: &Module| {
                let f = m.funcs()[0];
                m.walk_collect(f)
                    .iter()
                    .filter(|&&o| m.int_attr(o, "value") == Some(1))
                    .count()
            };
            if count(before) != count(after) {
                Err("constant 1 was rewritten".into())
            } else {
                Ok(())
            }
        });
        let e = pm.run(&mut m).unwrap_err();
        assert_eq!(e.pass, "const-flip");
        assert!(
            e.to_string().contains("translation validation failed"),
            "{e}"
        );
    }

    #[test]
    fn validator_accepts_clean_passes() {
        let mut m = simple_module();
        let mut pm = PassManager::new();
        pm.add(NoOpPass);
        pm.validate_each(|_, _, _| Ok(()));
        pm.run(&mut m).unwrap();
    }

    #[test]
    fn fixpoint_stops_when_stable() {
        let mut m = simple_module();
        let mut pm = PassManager::new();
        pm.add(NoOpPass);
        let stats = pm.run_to_fixpoint(&mut m, 10).unwrap();
        assert_eq!(stats.passes.len(), 1); // one iteration, no change, stop
    }

    #[test]
    fn changed_combinators() {
        assert!(Changed::Yes.or(Changed::No).changed());
        assert!(!Changed::No.or(Changed::No).changed());
        assert!(Changed::from(true).changed());
    }
}
