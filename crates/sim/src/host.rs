//! Host CPU cost models.
//!
//! The paper approximates the Rocket host at 3 cycles per instruction (the
//! inverse harmonic mean of the IPC survey it cites) and runs OpenGeMM's
//! tiny in-order Snitch-like core cycle-accurately. Here both are
//! per-instruction-class cycle cost tables; the class costs are the
//! calibration knobs of the reproduction.

use crate::isa::Inst;

/// Per-instruction-class cycle costs for an in-order host core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostModel {
    /// Model name for reports.
    pub name: String,
    /// Register-register / register-immediate ALU ops.
    pub alu: u64,
    /// Load-immediate.
    pub li: u64,
    /// Loads and stores.
    pub mem: u64,
    /// Conditional branches.
    pub branch: u64,
    /// Unconditional jumps.
    pub jump: u64,
    /// Configuration-register (CSR/MMIO) writes.
    pub csr_write: u64,
    /// RoCC custom commands.
    pub rocc: u64,
    /// Explicit launch writes.
    pub launch: u64,
    /// One status-poll round (final successful poll of an await).
    pub poll: u64,
}

impl HostModel {
    /// The Rocket-like RV64 host of the Gemmini platform: a uniform 3
    /// cycles/instruction, matching Section 4.6's approximation.
    pub fn rocket_like() -> Self {
        Self {
            name: "rocket".into(),
            alu: 3,
            li: 3,
            mem: 3,
            branch: 3,
            jump: 3,
            csr_write: 3,
            rocc: 3,
            launch: 3,
            poll: 3,
        }
    }

    /// The Snitch-like tiny in-order RV32 host of the OpenGeMM platform:
    /// single-cycle integer ops, single-cycle tightly-coupled CSR accesses
    /// (OpenGeMM couples the accelerator directly to the core), and
    /// near-zero-overhead loops (Snitch's hardware-loop/FREP machinery:
    /// back-edges are folded into the loop body, modeled as free jumps and
    /// single-cycle compare-and-branch). The configuration wall there is
    /// the sheer *number* of configuration and parameter-calculation
    /// instructions per launch.
    pub fn snitch_like() -> Self {
        Self {
            name: "snitch".into(),
            alu: 1,
            li: 1,
            mem: 2,
            branch: 1,
            jump: 0,
            csr_write: 1,
            rocc: 1,
            launch: 1,
            poll: 1,
        }
    }

    /// The cycle cost of one instruction (excluding stall time, which the
    /// machine accounts separately).
    pub fn cycles_for(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Li { .. } => self.li,
            Inst::Alu { .. } | Inst::AluI { .. } => self.alu,
            Inst::Ld { .. } | Inst::St { .. } => self.mem,
            Inst::Branch { .. } => self.branch,
            Inst::Jump { .. } => self.jump,
            Inst::CsrWrite { .. } => self.csr_write,
            Inst::RoccCmd { .. } => self.rocc,
            Inst::Launch => self.launch,
            Inst::AwaitIdle => self.poll,
            Inst::Halt => 0,
        }
    }

    /// The raw (theoretical) configuration bandwidth in bytes/cycle for a
    /// payload of `bytes_per_write` bytes needing `instructions_per_write`
    /// host instructions — Section 4.2's `BW_config`.
    pub fn config_bandwidth(&self, bytes_per_write: u64, instructions_per_write: u64) -> f64 {
        let cycles = instructions_per_write as f64 * self.alu as f64;
        bytes_per_write as f64 / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Reg};

    #[test]
    fn rocket_is_uniform_three_cycles() {
        let h = HostModel::rocket_like();
        let r = Reg(0);
        for inst in [
            Inst::Li { rd: r, imm: 0 },
            Inst::Alu {
                op: AluOp::Add,
                rd: r,
                rs1: r,
                rs2: r,
            },
            Inst::RoccCmd {
                funct: 0,
                rs1: r,
                rs2: r,
            },
        ] {
            assert_eq!(h.cycles_for(&inst), 3);
        }
        assert_eq!(h.cycles_for(&Inst::Halt), 0);
    }

    #[test]
    fn gemmini_paper_config_bandwidth() {
        // Section 4.6: 16 bytes per RoCC write, 3 instructions at 3 CPI
        // → 16 / 9 ≈ 1.77 bytes/cycle
        let h = HostModel::rocket_like();
        let bw = h.config_bandwidth(16, 3);
        assert!((bw - 16.0 / 9.0).abs() < 1e-12, "{bw}");
    }

    #[test]
    fn snitch_is_single_cycle_on_config() {
        let h = HostModel::snitch_like();
        let r = Reg(0);
        assert_eq!(h.cycles_for(&Inst::CsrWrite { csr: 0, rs: r }), 1);
        assert_eq!(
            h.cycles_for(&Inst::Branch {
                cond: crate::isa::BranchCond::Eq,
                rs1: r,
                rs2: r,
                target: crate::isa::Label(0),
            }),
            1
        );
    }
}
