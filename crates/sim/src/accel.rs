//! Accelerator models: configuration registers, sequential/concurrent
//! configuration schemes (Section 2.2), and a functional matrix-multiply
//! datapath.
//!
//! Both evaluation platforms of the paper are instances of one
//! parameterized model:
//!
//! - **Gemmini-like**: sequential configuration, 16×16 systolic array
//!   (512 ops/cycle), configured by RoCC custom instructions, the last of
//!   which carries launch semantics;
//! - **OpenGeMM-like**: concurrent configuration with staging registers,
//!   8×8×8 GeMM array (1024 ops/cycle), configured by CSR writes with an
//!   explicit launch register and a polled status register.

use crate::memory::{MemError, Memory};
use crate::timing::{DvfsState, FreqState, TimingModel};

/// How the accelerator accepts configuration while running (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigScheme {
    /// The host stalls on any configuration access while the accelerator is
    /// busy; registers are written directly.
    Sequential,
    /// Configuration writes land in staging registers even while the
    /// accelerator runs; launch atomically adopts the staged configuration.
    Concurrent,
}

/// The accelerator's configuration register map (shared by both platforms;
/// per-target field *names* are mapped onto these indices by the lowering).
pub mod regmap {
    /// Base address of matrix A (i8 elements).
    pub const A_ADDR: u16 = 0;
    /// Base address of matrix B (i8 elements).
    pub const B_ADDR: u16 = 1;
    /// Base address of matrix C (i32 elements).
    pub const C_ADDR: u16 = 2;
    /// Base address of bias matrix D (i32 elements); 0 disables the bias.
    pub const D_ADDR: u16 = 3;
    /// Output rows.
    pub const M: u16 = 4;
    /// Output columns.
    pub const N: u16 = 5;
    /// Reduction depth.
    pub const K: u16 = 6;
    /// Row stride of A in bytes.
    pub const STRIDE_A: u16 = 7;
    /// Row stride of B in bytes.
    pub const STRIDE_B: u16 = 8;
    /// Row stride of C in bytes.
    pub const STRIDE_C: u16 = 9;
    /// Row stride of D in bytes.
    pub const STRIDE_D: u16 = 10;
    /// Flag bits, see [`flags`](super::flags).
    pub const FLAGS: u16 = 11;

    // Auxiliary registers: functionally inert in this model, but real
    // accelerators carry them (scratchpad addresses, packed loop bounds,
    // per-mover configuration words) and the host must compute and write
    // them — they are a large share of the configuration wall on
    // Gemmini-class targets.

    /// Scratchpad-local address of A.
    pub const SPAD_A: u16 = 12;
    /// Scratchpad-local address of B.
    pub const SPAD_B: u16 = 13;
    /// Scratchpad-local address of C (accumulator bank).
    pub const SPAD_C: u16 = 14;
    /// Scratchpad-local address of D.
    pub const SPAD_D: u16 = 15;
    /// Packed hardware-loop bounds (`I | J<<16 | K<<32`).
    pub const LOOP_SIZES: u16 = 16;
    /// Packed hardware-loop padding (`pad_I | pad_J<<16 | pad_K<<32`).
    pub const LOOP_PADS: u16 = 17;
    /// Execute-pipeline configuration word (dataflow, activation, transposes).
    pub const CONFIG_EX: u16 = 18;
    /// Load-mover configuration for A.
    pub const CONFIG_LD_A: u16 = 19;
    /// Load-mover configuration for B.
    pub const CONFIG_LD_B: u16 = 20;
    /// Load-mover configuration for D.
    pub const CONFIG_LD_D: u16 = 21;
    /// Store-mover configuration for C.
    pub const CONFIG_ST: u16 = 22;
    /// Input scale factor for the load movers.
    pub const MVIN_SCALE: u16 = 23;
    /// Reserved pair written by the launch-semantic command.
    pub const LAUNCH_LO: u16 = 26;
    /// Reserved pair written by the launch-semantic command (high half).
    pub const LAUNCH_HI: u16 = 27;
    /// Number of configuration registers.
    pub const COUNT: usize = 28;
}

/// Flag bits within [`regmap::FLAGS`].
pub mod flags {
    /// Apply ReLU to the output (Table 1's `act`).
    pub const RELU: i64 = 1 << 0;
    /// Read A transposed (Table 1's `A_transpose`).
    pub const TRANSPOSE_A: i64 = 1 << 1;
    /// Read B transposed (Table 1's `B_transpose`).
    pub const TRANSPOSE_B: i64 = 1 << 2;
    /// Accumulate onto the existing C contents instead of overwriting.
    pub const ACCUMULATE: i64 = 1 << 3;
}

/// Static parameters of an accelerator instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccelParams {
    /// Accelerator name (matches the accfg dialect's accelerator strings).
    pub name: String,
    /// Configuration scheme.
    pub scheme: ConfigScheme,
    /// Multiply-accumulates per cycle at peak (peak performance is twice
    /// this in ops/cycle).
    pub macs_per_cycle: u64,
    /// Fixed pipeline fill/drain overhead added to every launch, in cycles.
    pub launch_overhead: u64,
    /// Configuration payload bytes carried per CSR write (4 on the RV32
    /// OpenGeMM host, 8 on RV64).
    pub csr_payload_bytes: u64,
    /// RoCC funct value that carries launch semantics (Gemmini-style
    /// "the last instruction in the sequence implicitly launches"); `None`
    /// for targets with an explicit launch register.
    pub rocc_launch_funct: Option<u8>,
}

impl AccelParams {
    /// The Gemmini-like platform: 16×16 systolic array, one MAC per PE per
    /// cycle (P_peak = 512 ops/cycle), sequential configuration via RoCC.
    pub fn gemmini_like() -> Self {
        Self {
            name: "gemmini".into(),
            scheme: ConfigScheme::Sequential,
            macs_per_cycle: 256,
            launch_overhead: 16, // systolic fill/drain
            csr_payload_bytes: 8,
            rocc_launch_funct: Some(13),
        }
    }

    /// The OpenGeMM-like platform: 8×8×8 GeMM core (P_peak = 1024
    /// ops/cycle), concurrent configuration via CSR staging registers.
    pub fn opengemm_like() -> Self {
        Self {
            name: "opengemm".into(),
            scheme: ConfigScheme::Concurrent,
            macs_per_cycle: 512,
            launch_overhead: 9, // output pipeline drain
            csr_payload_bytes: 4,
            rocc_launch_funct: None,
        }
    }

    /// Peak performance in ops/cycle (1 MAC = 2 ops).
    pub fn peak_ops_per_cycle(&self) -> u64 {
        self.macs_per_cycle * 2
    }
}

/// A decoded macro-operation (one tile matmul `C = act(A·B + D)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileOp {
    /// Base address of A.
    pub a_addr: u64,
    /// Base address of B.
    pub b_addr: u64,
    /// Base address of C.
    pub c_addr: u64,
    /// Base address of D (0 = no bias).
    pub d_addr: u64,
    /// Output rows.
    pub m: u64,
    /// Output columns.
    pub n: u64,
    /// Reduction depth.
    pub k: u64,
    /// Row strides in bytes.
    pub stride_a: u64,
    /// Row stride of B in bytes.
    pub stride_b: u64,
    /// Row stride of C in bytes.
    pub stride_c: u64,
    /// Row stride of D in bytes.
    pub stride_d: u64,
    /// Flag bits.
    pub flags: i64,
}

/// Errors the accelerator can raise at launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// A matrix access fell outside memory.
    Mem(MemError),
    /// A dimension register held zero or a negative value.
    BadDimensions {
        /// The decoded (m, n, k).
        m: i64,
        /// Columns.
        n: i64,
        /// Depth.
        k: i64,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Mem(e) => write!(f, "accelerator memory fault: {e}"),
            LaunchError::BadDimensions { m, n, k } => {
                write!(f, "invalid tile dimensions m={m} n={n} k={k}")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<MemError> for LaunchError {
    fn from(e: MemError) -> Self {
        LaunchError::Mem(e)
    }
}

/// Accelerator execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelStats {
    /// Number of launches executed.
    pub launches: u64,
    /// Total multiply-accumulates performed.
    pub macs: u64,
    /// Total busy cycles (compute + launch overhead).
    pub busy_cycles: u64,
    /// Total configuration register writes received.
    pub reg_writes: u64,
}

impl AccelStats {
    /// Total arithmetic operations (1 MAC = 2 ops), the paper's `ops`.
    pub fn ops(&self) -> u64 {
        self.macs * 2
    }
}

/// A simulated accelerator instance: configuration registers plus the
/// functional matmul datapath.
#[derive(Debug, Clone)]
pub struct AccelSim {
    /// Static parameters.
    pub params: AccelParams,
    /// The machine's timing model (identity unless installed via
    /// [`AccelSim::with_timing`]): shared-bandwidth contention and DVFS.
    pub timing: TimingModel,
    active: [i64; regmap::COUNT],
    staging: [i64; regmap::COUNT],
    busy_until: u64,
    dvfs: DvfsState,
    last_launch_state: FreqState,
    /// Execution statistics.
    pub stats: AccelStats,
}

impl AccelSim {
    /// Creates an idle accelerator with zeroed registers and the identity
    /// timing model (base-simulator timing, bit-exact).
    pub fn new(params: AccelParams) -> Self {
        Self::with_timing(params, TimingModel::identity())
    }

    /// Creates an idle accelerator charged under `timing`.
    pub fn with_timing(params: AccelParams, timing: TimingModel) -> Self {
        Self {
            params,
            timing,
            active: [0; regmap::COUNT],
            staging: [0; regmap::COUNT],
            busy_until: 0,
            dvfs: DvfsState::default(),
            last_launch_state: FreqState::Cold,
            stats: AccelStats::default(),
        }
    }

    /// The frequency state the most recent launch ran at ([`FreqState::Cold`]
    /// while DVFS is disabled or before any launch).
    pub fn last_launch_state(&self) -> FreqState {
        self.last_launch_state
    }

    /// The DVFS automaton's accumulated busy-cycle heat.
    pub fn dvfs_heat(&self) -> u64 {
        self.dvfs.heat()
    }

    /// Accounts `idle_cycles` of real simulated idle time between
    /// dispatched programs (which each count cycles from 0, hiding the
    /// gap from in-program cooldown checks): a cooldown-length gap
    /// resets the DVFS history, so a worker left idle cools back to the
    /// cold state. A no-op without DVFS.
    pub fn note_idle(&mut self, idle_cycles: u64) {
        if let Some(params) = self.timing.dvfs {
            self.dvfs.note_idle(&params, idle_cycles);
        }
    }

    /// Extends the in-flight busy window by `extra` cycles — the machine
    /// charges this when host traffic steals shared-bandwidth slots from
    /// the accelerator's tile streams. A no-op when the accelerator is
    /// idle (there is no window to stretch).
    pub fn push_back(&mut self, now: u64, extra: u64) {
        if extra == 0 || !self.is_busy(now) {
            return;
        }
        self.busy_until += extra;
        self.stats.busy_cycles += extra;
        self.dvfs.note_busy(self.busy_until, extra);
    }

    /// The cycle at which the accelerator becomes idle.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// `true` if the accelerator is still computing at `cycle`.
    pub fn is_busy(&self, cycle: u64) -> bool {
        cycle < self.busy_until
    }

    /// Reads a configuration register (staged value).
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn reg(&self, index: u16) -> i64 {
        self.staging[index as usize]
    }

    /// Re-bases the accelerator's busy window to cycle 0.
    ///
    /// [`Machine::run`](crate::Machine::run) counts cycles from 0 on every
    /// call, while `busy_until` is absolute; a runtime that dispatches many
    /// programs onto one persistent machine calls this between programs
    /// (once the accelerator has drained) so a finished busy window is not
    /// mistaken for in-flight work. Registers and statistics persist.
    ///
    /// # Panics
    /// Panics if the accelerator still has an in-flight launch, i.e. the
    /// previous program ended without awaiting completion.
    pub fn reset_clock(&mut self, program_end_cycle: u64) {
        assert!(
            self.busy_until <= program_end_cycle,
            "reset_clock while the accelerator is busy (busy until {}, program ended at {})",
            self.busy_until,
            program_end_cycle
        );
        self.busy_until = 0;
        // DVFS heat survives the re-base, and the idle reference moves to
        // cycle 0 so the next program's small cycle values are not
        // mistaken for a long idle gap; real inter-dispatch idle is
        // reported separately via [`AccelSim::note_idle`]
        self.dvfs.rebase();
    }

    /// Writes a configuration register.
    ///
    /// For [`ConfigScheme::Sequential`] the machine must have stalled until
    /// idle before calling this; the write lands in the active registers.
    /// For [`ConfigScheme::Concurrent`] it lands in staging only.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn write_reg(&mut self, index: u16, value: i64) {
        self.staging[index as usize] = value;
        if self.params.scheme == ConfigScheme::Sequential {
            self.active[index as usize] = value;
        }
        self.stats.reg_writes += 1;
    }

    /// Decodes the staged configuration into a tile operation.
    pub fn decode(&self) -> TileOp {
        let r = &self.staging;
        TileOp {
            a_addr: r[regmap::A_ADDR as usize] as u64,
            b_addr: r[regmap::B_ADDR as usize] as u64,
            c_addr: r[regmap::C_ADDR as usize] as u64,
            d_addr: r[regmap::D_ADDR as usize] as u64,
            m: r[regmap::M as usize] as u64,
            n: r[regmap::N as usize] as u64,
            k: r[regmap::K as usize] as u64,
            stride_a: r[regmap::STRIDE_A as usize] as u64,
            stride_b: r[regmap::STRIDE_B as usize] as u64,
            stride_c: r[regmap::STRIDE_C as usize] as u64,
            stride_d: r[regmap::STRIDE_D as usize] as u64,
            flags: r[regmap::FLAGS as usize],
        }
    }

    /// Launches the staged configuration at `now`, executing the tile
    /// matmul on `mem` and returning the cycle at which it completes.
    ///
    /// The caller (the machine) is responsible for stalling until idle
    /// before launching — hardware refuses a second in-flight launch.
    ///
    /// # Errors
    /// Fails on invalid dimensions or out-of-bounds matrix accesses.
    pub fn launch(&mut self, mem: &mut Memory, now: u64) -> Result<u64, LaunchError> {
        debug_assert!(!self.is_busy(now), "launch while busy");
        self.active = self.staging;
        let op = self.decode();
        let raw = &self.active;
        if raw[regmap::M as usize] <= 0
            || raw[regmap::N as usize] <= 0
            || raw[regmap::K as usize] <= 0
        {
            return Err(LaunchError::BadDimensions {
                m: raw[regmap::M as usize],
                n: raw[regmap::N as usize],
                k: raw[regmap::K as usize],
            });
        }
        let macs = execute_tile(&op, mem)?;
        // DVFS: the launch runs at the rate of the current frequency
        // state; without DVFS this is exactly the nominal MAC rate
        let state = match &self.timing.dvfs {
            Some(params) => self.dvfs.launch_state(params, now),
            None => FreqState::Cold,
        };
        self.last_launch_state = state;
        let rate = self
            .timing
            .effective_macs_per_cycle(self.params.macs_per_cycle, state);
        let compute = macs.div_ceil(rate);
        let busy = compute + self.params.launch_overhead;
        self.busy_until = now + busy;
        self.dvfs.note_busy(self.busy_until, busy);
        self.stats.launches += 1;
        self.stats.macs += macs;
        self.stats.busy_cycles += busy;
        Ok(self.busy_until)
    }
}

/// Functionally executes one tile `C = act(A·B + D)` on memory, returning
/// the MAC count.
///
/// # Errors
/// Fails when any element access is out of bounds.
pub fn execute_tile(op: &TileOp, mem: &mut Memory) -> Result<u64, LaunchError> {
    let transpose_a = op.flags & flags::TRANSPOSE_A != 0;
    let transpose_b = op.flags & flags::TRANSPOSE_B != 0;
    let relu = op.flags & flags::RELU != 0;
    let accumulate = op.flags & flags::ACCUMULATE != 0;
    for i in 0..op.m {
        for j in 0..op.n {
            let mut acc: i32 = if op.d_addr != 0 {
                mem.read_i32(op.d_addr + i * op.stride_d + 4 * j)?
            } else {
                0
            };
            for k in 0..op.k {
                let a_addr = if transpose_a {
                    op.a_addr + k * op.stride_a + i
                } else {
                    op.a_addr + i * op.stride_a + k
                };
                let b_addr = if transpose_b {
                    op.b_addr + j * op.stride_b + k
                } else {
                    op.b_addr + k * op.stride_b + j
                };
                let a = mem.read_i8(a_addr)? as i32;
                let b = mem.read_i8(b_addr)? as i32;
                acc = acc.wrapping_add(a.wrapping_mul(b));
            }
            let c_addr = op.c_addr + i * op.stride_c + 4 * j;
            if accumulate {
                acc = acc.wrapping_add(mem.read_i32(c_addr)?);
            }
            if relu {
                acc = acc.max(0);
            }
            mem.write_i32(c_addr, acc)?;
        }
    }
    Ok(op.m * op.n * op.k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup_tile(mem: &mut Memory) -> TileOp {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] at i8; C at 0x100
        mem.write_i8_slice(0x00, &[1, 2, 3, 4]).unwrap();
        mem.write_i8_slice(0x10, &[5, 6, 7, 8]).unwrap();
        TileOp {
            a_addr: 0x00,
            b_addr: 0x10,
            c_addr: 0x100,
            d_addr: 0,
            m: 2,
            n: 2,
            k: 2,
            stride_a: 2,
            stride_b: 2,
            stride_c: 8,
            stride_d: 0,
            flags: 0,
        }
    }

    #[test]
    fn computes_matmul() {
        let mut mem = Memory::new(0x200);
        let op = setup_tile(&mut mem);
        let macs = execute_tile(&op, &mut mem).unwrap();
        assert_eq!(macs, 8);
        // C = [[19,22],[43,50]]
        assert_eq!(mem.read_i32_slice(0x100, 2).unwrap(), vec![19, 22]);
        assert_eq!(mem.read_i32_slice(0x108, 2).unwrap(), vec![43, 50]);
    }

    #[test]
    fn bias_and_accumulate() {
        let mut mem = Memory::new(0x300);
        let mut op = setup_tile(&mut mem);
        op.d_addr = 0x200;
        op.stride_d = 8;
        for j in 0..4 {
            mem.write_i32(0x200 + 4 * j, 100).unwrap();
        }
        execute_tile(&op, &mut mem).unwrap();
        assert_eq!(mem.read_i32(0x100).unwrap(), 119);
        // run again with ACCUMULATE: doubles on top of existing C
        op.flags = flags::ACCUMULATE;
        op.d_addr = 0;
        execute_tile(&op, &mut mem).unwrap();
        assert_eq!(mem.read_i32(0x100).unwrap(), 119 + 19);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut mem = Memory::new(0x200);
        let mut op = setup_tile(&mut mem);
        mem.write_i8_slice(0x00, &[-1, -2, -3, -4]).unwrap(); // overwrite A
        op.flags = flags::RELU;
        execute_tile(&op, &mut mem).unwrap();
        assert_eq!(mem.read_i32_slice(0x100, 2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn transpose_a() {
        let mut mem = Memory::new(0x200);
        let mut op = setup_tile(&mut mem);
        op.flags = flags::TRANSPOSE_A; // A^T = [[1,3],[2,4]]
        execute_tile(&op, &mut mem).unwrap();
        // A^T · B = [[26,30],[38,44]]
        assert_eq!(mem.read_i32_slice(0x100, 2).unwrap(), vec![26, 30]);
        assert_eq!(mem.read_i32_slice(0x108, 2).unwrap(), vec![38, 44]);
    }

    #[test]
    fn sequential_writes_hit_active_registers() {
        let mut acc = AccelSim::new(AccelParams::gemmini_like());
        acc.write_reg(regmap::M, 4);
        assert_eq!(acc.reg(regmap::M), 4);
        assert_eq!(acc.active[regmap::M as usize], 4);
    }

    #[test]
    fn concurrent_writes_stage_until_launch() {
        let mut mem = Memory::new(0x400);
        mem.write_i8_slice(0x00, &[1; 16]).unwrap();
        mem.write_i8_slice(0x20, &[1; 16]).unwrap();
        let mut acc = AccelSim::new(AccelParams::opengemm_like());
        for (r, v) in [
            (regmap::A_ADDR, 0x00),
            (regmap::B_ADDR, 0x20),
            (regmap::C_ADDR, 0x100),
            (regmap::M, 4),
            (regmap::N, 4),
            (regmap::K, 4),
            (regmap::STRIDE_A, 4),
            (regmap::STRIDE_B, 4),
            (regmap::STRIDE_C, 16),
        ] {
            acc.write_reg(r, v);
        }
        // staged, not active
        assert_eq!(acc.active[regmap::M as usize], 0);
        let done = acc.launch(&mut mem, 100).unwrap();
        assert!(done > 100);
        assert_eq!(acc.active[regmap::M as usize], 4);
        assert_eq!(mem.read_i32(0x100).unwrap(), 4); // 1·1 × 4
        assert_eq!(acc.stats.launches, 1);
        assert_eq!(acc.stats.macs, 64);
    }

    #[test]
    fn launch_timing_includes_overhead() {
        let mut mem = Memory::new(0x400);
        mem.write_i8_slice(0x00, &[1; 16]).unwrap();
        mem.write_i8_slice(0x20, &[1; 16]).unwrap();
        let params = AccelParams::opengemm_like();
        let overhead = params.launch_overhead;
        let mut acc = AccelSim::new(params);
        for (r, v) in [
            (regmap::A_ADDR, 0x00),
            (regmap::B_ADDR, 0x20),
            (regmap::C_ADDR, 0x100),
            (regmap::M, 4),
            (regmap::N, 4),
            (regmap::K, 4),
            (regmap::STRIDE_A, 4),
            (regmap::STRIDE_B, 4),
            (regmap::STRIDE_C, 16),
        ] {
            acc.write_reg(r, v);
        }
        let done = acc.launch(&mut mem, 0).unwrap();
        // 64 MACs at 512/cycle → 1 compute cycle + overhead
        assert_eq!(done, 1 + overhead);
        assert!(acc.is_busy(done - 1));
        assert!(!acc.is_busy(done));
    }

    #[test]
    fn zero_dimensions_rejected() {
        let mut mem = Memory::new(0x100);
        let mut acc = AccelSim::new(AccelParams::opengemm_like());
        acc.write_reg(regmap::M, 0);
        let e = acc.launch(&mut mem, 0).unwrap_err();
        assert!(matches!(e, LaunchError::BadDimensions { .. }));
    }

    #[test]
    fn oob_matrix_access_rejected() {
        let mut mem = Memory::new(0x40);
        let mut acc = AccelSim::new(AccelParams::opengemm_like());
        for (r, v) in [
            (regmap::A_ADDR, 0x00),
            (regmap::B_ADDR, 0x20),
            (regmap::C_ADDR, 0x1000), // out of bounds
            (regmap::M, 2),
            (regmap::N, 2),
            (regmap::K, 2),
            (regmap::STRIDE_A, 2),
            (regmap::STRIDE_B, 2),
            (regmap::STRIDE_C, 8),
        ] {
            acc.write_reg(r, v);
        }
        assert!(matches!(acc.launch(&mut mem, 0), Err(LaunchError::Mem(_))));
    }

    #[test]
    fn reset_clock_rebases_drained_busy_window() {
        let mut mem = Memory::new(0x400);
        mem.write_i8_slice(0x00, &[1; 16]).unwrap();
        mem.write_i8_slice(0x20, &[1; 16]).unwrap();
        let mut acc = AccelSim::new(AccelParams::opengemm_like());
        for (r, v) in [
            (regmap::A_ADDR, 0x00),
            (regmap::B_ADDR, 0x20),
            (regmap::C_ADDR, 0x100),
            (regmap::M, 4),
            (regmap::N, 4),
            (regmap::K, 4),
            (regmap::STRIDE_A, 4),
            (regmap::STRIDE_B, 4),
            (regmap::STRIDE_C, 16),
        ] {
            acc.write_reg(r, v);
        }
        let done = acc.launch(&mut mem, 0).unwrap();
        assert!(acc.is_busy(0));
        acc.reset_clock(done);
        assert!(!acc.is_busy(0));
        // registers and stats survive the re-base
        assert_eq!(acc.reg(regmap::M), 4);
        assert_eq!(acc.stats.launches, 1);
    }

    #[test]
    #[should_panic(expected = "reset_clock while the accelerator is busy")]
    fn reset_clock_rejects_inflight_work() {
        let mut mem = Memory::new(0x400);
        mem.write_i8_slice(0x00, &[1; 16]).unwrap();
        mem.write_i8_slice(0x20, &[1; 16]).unwrap();
        let mut acc = AccelSim::new(AccelParams::opengemm_like());
        for (r, v) in [
            (regmap::A_ADDR, 0x00),
            (regmap::B_ADDR, 0x20),
            (regmap::C_ADDR, 0x100),
            (regmap::M, 4),
            (regmap::N, 4),
            (regmap::K, 4),
            (regmap::STRIDE_A, 4),
            (regmap::STRIDE_B, 4),
            (regmap::STRIDE_C, 16),
        ] {
            acc.write_reg(r, v);
        }
        let done = acc.launch(&mut mem, 0).unwrap();
        acc.reset_clock(done - 1);
    }

    #[test]
    fn peak_ops() {
        assert_eq!(AccelParams::gemmini_like().peak_ops_per_cycle(), 512);
        assert_eq!(AccelParams::opengemm_like().peak_ops_per_cycle(), 1024);
    }
}
