//! Composable machine timing: shared memory-bandwidth contention and DVFS
//! frequency states.
//!
//! The base simulator prices every host instruction from a static cost
//! table and every launch at the accelerator's peak MAC rate, which makes
//! a dispatch's cycle cost an almost-linear function of the configuration
//! writes it emits. Real platforms are not that flat: host configuration
//! traffic and the accelerator's tile streams share one memory system, and
//! the accelerator's clock follows its recent utilization. A
//! [`TimingModel`] layers both effects onto a [`Machine`]:
//!
//! - **Contention** ([`ContentionParams`]): a bytes-in-flight budget
//!   shared by the host and the accelerator. While the accelerator is
//!   busy, its tile traffic occupies part of the budget, so host
//!   instructions that move bytes (configuration writes, loads/stores)
//!   take extra cycles — and the bytes they do move steal budget slots
//!   from the accelerator, pushing its busy window out.
//! - **DVFS** ([`DvfsParams`]): three frequency states — cold, warm,
//!   boost — with deterministic transitions keyed on accumulated
//!   busy-cycle history ([`DvfsState`]). A launch's compute rate is the
//!   platform's MAC rate scaled by the current state; sustained work heats
//!   the accelerator up through warm into boost, and a long enough idle
//!   gap drops it back to cold.
//!
//! [`TimingModel::identity`] disables both effects and reproduces the
//! base simulator's timing bit-exactly — the identity model is the
//! default everywhere, so enabling rich timing is always an explicit,
//! per-descriptor decision.
//!
//! Everything here is integer arithmetic over simulated cycles: two runs
//! of the same program produce identical timing, which is what lets the
//! serving runtime's determinism guarantees survive the richer model.
//!
//! [`Machine`]: crate::Machine

/// Accelerator frequency state under DVFS, ordered coldest to fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FreqState {
    /// Just powered / long idle: reduced clock.
    #[default]
    Cold,
    /// Nominal clock after sustained activity.
    Warm,
    /// Opportunistic overclock under continuous load.
    Boost,
}

/// Number of frequency states (the length of [`DvfsParams::speed_pct`]).
pub const FREQ_STATES: usize = 3;

impl FreqState {
    /// Every state in index order — for iterating per-state tables.
    pub const ALL: [FreqState; FREQ_STATES] = [FreqState::Cold, FreqState::Warm, FreqState::Boost];

    /// Index into per-state tables (`0` = cold, `2` = boost).
    pub fn index(self) -> usize {
        match self {
            FreqState::Cold => 0,
            FreqState::Warm => 1,
            FreqState::Boost => 2,
        }
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FreqState::Cold => "cold",
            FreqState::Warm => "warm",
            FreqState::Boost => "boost",
        }
    }
}

/// The shared memory-bandwidth budget host traffic and accelerator tile
/// streams contend over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionParams {
    /// Total bytes the memory system moves per cycle.
    pub budget_bytes_per_cycle: u64,
    /// Bytes per cycle the accelerator's tile traffic occupies while it is
    /// busy.
    pub accel_bytes_per_cycle: u64,
}

impl ContentionParams {
    /// Extra host cycles a transfer of `bytes` pays when issued while the
    /// accelerator's tile traffic holds its share of the budget: the
    /// transfer runs at the leftover bandwidth instead of the full budget.
    pub fn host_penalty(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let budget = self.budget_bytes_per_cycle.max(1);
        let leftover = budget.saturating_sub(self.accel_bytes_per_cycle).max(1);
        bytes.div_ceil(leftover) - bytes.div_ceil(budget)
    }

    /// Cycles the accelerator's busy window extends when the host moves
    /// `bytes` through the shared budget during it — every budget slot the
    /// host takes is one the tile streams wait for.
    pub fn accel_pushback(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(self.budget_bytes_per_cycle.max(1))
    }
}

/// The DVFS table: transition thresholds and per-state compute rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DvfsParams {
    /// Accumulated busy cycles at which the clock steps cold → warm.
    pub warm_busy_cycles: u64,
    /// Accumulated busy cycles at which the clock steps warm → boost.
    pub boost_busy_cycles: u64,
    /// Idle gap (cycles since the busy window last closed) that drops the
    /// state back to cold and resets the busy-cycle history.
    pub cooldown_idle_cycles: u64,
    /// Compute-rate multiplier per state, in percent of the platform's
    /// nominal MAC rate, indexed by [`FreqState::index`] (cold, warm,
    /// boost).
    pub speed_pct: [u64; FREQ_STATES],
}

impl DvfsParams {
    /// The state reached after `heat` accumulated busy cycles.
    pub fn state_at(&self, heat: u64) -> FreqState {
        if heat >= self.boost_busy_cycles {
            FreqState::Boost
        } else if heat >= self.warm_busy_cycles {
            FreqState::Warm
        } else {
            FreqState::Cold
        }
    }
}

/// The deterministic DVFS automaton: busy-cycle heat plus the cycle at
/// which the accelerator last went idle. Owned by the accelerator so the
/// history survives across dispatched programs on a persistent machine —
/// which is exactly what makes a worker's dispatch cost depend on its
/// recent load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DvfsState {
    /// Busy cycles accumulated since the last cooldown.
    heat: u64,
    /// Cycle at which the busy window last closed.
    last_busy_end: u64,
}

impl DvfsState {
    /// The frequency state a launch at `now` runs at: a sufficiently long
    /// idle gap first cools the history back to zero, then the heat picks
    /// the state from the table.
    pub fn launch_state(&mut self, params: &DvfsParams, now: u64) -> FreqState {
        if now.saturating_sub(self.last_busy_end) >= params.cooldown_idle_cycles {
            self.heat = 0;
        }
        params.state_at(self.heat)
    }

    /// Accounts a busy window closing at `end` after `busy` cycles of
    /// activity (launch compute or contention push-back).
    pub fn note_busy(&mut self, end: u64, busy: u64) {
        self.heat += busy;
        self.last_busy_end = self.last_busy_end.max(end);
    }

    /// Accounts an idle gap of `idle` cycles *between* dispatched
    /// programs. Each program counts cycles from 0, so in-program
    /// cooldown checks cannot see time spent idle between dispatches;
    /// the runtime's workers know their real simulated idle (next
    /// dispatch's start minus the previous finish) and report it here —
    /// a cooldown-length gap drops the history back to cold.
    pub fn note_idle(&mut self, params: &DvfsParams, idle: u64) {
        if idle >= params.cooldown_idle_cycles {
            self.heat = 0;
        }
    }

    /// Accumulated busy cycles since the last cooldown.
    pub fn heat(&self) -> u64 {
        self.heat
    }

    /// Re-bases the idle reference to cycle 0, mirroring
    /// [`AccelSim::reset_clock`]: dispatched programs each count cycles
    /// from 0, so back-to-back dispatches carry their heat across the
    /// re-base instead of fabricating a cooldown-length idle gap.
    ///
    /// [`AccelSim::reset_clock`]: crate::AccelSim::reset_clock
    pub fn rebase(&mut self) {
        self.last_busy_end = 0;
    }
}

/// A machine's composable timing model: optional contention, optional
/// DVFS. Both `None` is the identity model — bit-exact base-simulator
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingModel {
    /// Shared memory-bandwidth contention, or `None` for infinite
    /// bandwidth.
    pub contention: Option<ContentionParams>,
    /// DVFS frequency scaling, or `None` for a fixed nominal clock.
    pub dvfs: Option<DvfsParams>,
}

impl TimingModel {
    /// The identity model: no contention, no DVFS — the base simulator's
    /// timing, unchanged.
    pub fn identity() -> Self {
        Self::default()
    }

    /// `true` if this model charges nothing beyond the base timing.
    pub fn is_identity(&self) -> bool {
        self.contention.is_none() && self.dvfs.is_none()
    }

    /// The effective MAC rate at `state` for a platform whose nominal
    /// rate is `base`: the DVFS multiplier applied (floored at 1 MAC per
    /// cycle), or exactly `base` without DVFS.
    pub fn effective_macs_per_cycle(&self, base: u64, state: FreqState) -> u64 {
        match &self.dvfs {
            None => base.max(1),
            Some(d) => (base * d.speed_pct[state.index()] / 100).max(1),
        }
    }

    /// The MAC rate an analytic cost anchor should assume: the rate of an
    /// isolated from-cold launch. Anchors stay *honest* — they consume the
    /// same parameters the simulator charges — but they cannot know a
    /// worker's load-dependent heat or contention, which is exactly the
    /// gap online refinement closes.
    pub fn anchor_macs_per_cycle(&self, base: u64) -> u64 {
        self.effective_macs_per_cycle(base, FreqState::Cold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_charges_nothing() {
        let t = TimingModel::identity();
        assert!(t.is_identity());
        for state in [FreqState::Cold, FreqState::Warm, FreqState::Boost] {
            assert_eq!(t.effective_macs_per_cycle(512, state), 512);
        }
        assert_eq!(t.anchor_macs_per_cycle(0), 1);
    }

    #[test]
    fn contention_penalties_reflect_leftover_bandwidth() {
        let c = ContentionParams {
            budget_bytes_per_cycle: 8,
            accel_bytes_per_cycle: 6,
        };
        // 4 bytes at full budget: 1 cycle; at the 2 B/cyc leftover: 2 —
        // one extra host cycle, and one budget slot stolen from the tiles
        assert_eq!(c.host_penalty(4), 1);
        assert_eq!(c.accel_pushback(4), 1);
        assert_eq!(c.host_penalty(0), 0);
        assert_eq!(c.accel_pushback(0), 0);
        // 16 bytes: 8 leftover-cycles vs 2 budget-cycles
        assert_eq!(c.host_penalty(16), 6);
        assert_eq!(c.accel_pushback(16), 2);
        // an accelerator that saturates the budget still leaves the
        // 1 B/cyc floor
        let saturated = ContentionParams {
            budget_bytes_per_cycle: 4,
            accel_bytes_per_cycle: 9,
        };
        assert_eq!(saturated.host_penalty(4), 3);
    }

    #[test]
    fn dvfs_heats_through_warm_into_boost() {
        let params = DvfsParams {
            warm_busy_cycles: 100,
            boost_busy_cycles: 300,
            cooldown_idle_cycles: 1_000,
            speed_pct: [50, 100, 150],
        };
        let mut s = DvfsState::default();
        assert_eq!(s.launch_state(&params, 0), FreqState::Cold);
        s.note_busy(120, 120);
        assert_eq!(s.launch_state(&params, 150), FreqState::Warm);
        s.note_busy(400, 250);
        assert_eq!(s.launch_state(&params, 420), FreqState::Boost);
        assert_eq!(s.heat(), 370);
        // a short gap keeps the heat; a cooldown-length one resets it
        assert_eq!(s.launch_state(&params, 400 + 999), FreqState::Boost);
        assert_eq!(s.launch_state(&params, 400 + 1_000), FreqState::Cold);
        assert_eq!(s.heat(), 0);
    }

    #[test]
    fn note_idle_cools_only_at_the_threshold() {
        let params = DvfsParams {
            warm_busy_cycles: 100,
            boost_busy_cycles: 300,
            cooldown_idle_cycles: 500,
            speed_pct: [50, 100, 150],
        };
        let mut s = DvfsState::default();
        s.note_busy(200, 200);
        s.note_idle(&params, 499);
        assert_eq!(s.heat(), 200);
        s.note_idle(&params, 500);
        assert_eq!(s.heat(), 0);
    }

    #[test]
    fn rebase_keeps_heat_and_avoids_phantom_cooldown() {
        let params = DvfsParams {
            warm_busy_cycles: 100,
            boost_busy_cycles: 300,
            cooldown_idle_cycles: 500,
            speed_pct: [50, 100, 150],
        };
        let mut s = DvfsState::default();
        s.note_busy(10_000, 200);
        s.rebase();
        // next program counts cycles from 0 again: the small `now` is not
        // mistaken for a 10 000-cycle idle gap
        assert_eq!(s.launch_state(&params, 40), FreqState::Warm);
        assert_eq!(s.heat(), 200);
    }

    #[test]
    fn dvfs_scales_the_mac_rate() {
        let t = TimingModel {
            contention: None,
            dvfs: Some(DvfsParams {
                warm_busy_cycles: 1,
                boost_busy_cycles: 2,
                cooldown_idle_cycles: 1,
                speed_pct: [50, 100, 150],
            }),
        };
        assert_eq!(t.effective_macs_per_cycle(512, FreqState::Cold), 256);
        assert_eq!(t.effective_macs_per_cycle(512, FreqState::Warm), 512);
        assert_eq!(t.effective_macs_per_cycle(512, FreqState::Boost), 768);
        // the anchor rate is the isolated from-cold rate
        assert_eq!(t.anchor_macs_per_cycle(512), 256);
        // the rate never drops below one MAC per cycle
        assert_eq!(t.effective_macs_per_cycle(1, FreqState::Cold), 1);
    }

    #[test]
    fn state_thresholds_are_inclusive() {
        let params = DvfsParams {
            warm_busy_cycles: 10,
            boost_busy_cycles: 20,
            cooldown_idle_cycles: 100,
            speed_pct: [50, 100, 150],
        };
        assert_eq!(params.state_at(9), FreqState::Cold);
        assert_eq!(params.state_at(10), FreqState::Warm);
        assert_eq!(params.state_at(19), FreqState::Warm);
        assert_eq!(params.state_at(20), FreqState::Boost);
    }
}
