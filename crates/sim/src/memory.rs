//! Flat byte-addressable memory shared by the host and the accelerator
//! (Figure 1: the accelerator reads and writes host memory directly).

use std::error::Error;
use std::fmt;

/// An out-of-bounds access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    /// The faulting byte address.
    pub addr: u64,
    /// The access size in bytes.
    pub size: usize,
    /// Memory capacity.
    pub capacity: usize,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory access of {} bytes at {:#x} exceeds capacity {:#x}",
            self.size, self.addr, self.capacity
        )
    }
}

impl Error for MemError {}

/// A flat little-endian memory.
///
/// # Examples
///
/// ```
/// use accfg_sim::Memory;
///
/// let mut mem = Memory::new(1024);
/// mem.write_i32(0x40, -7)?;
/// assert_eq!(mem.read_i32(0x40)?, -7);
/// # Ok::<(), accfg_sim::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zero-initialized memory of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            bytes: vec![0; capacity],
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, addr: u64, size: usize) -> Result<usize, MemError> {
        let a = addr as usize;
        if a.checked_add(size)
            .is_some_and(|end| end <= self.bytes.len())
        {
            Ok(a)
        } else {
            Err(MemError {
                addr,
                size,
                capacity: self.bytes.len(),
            })
        }
    }

    /// Reads a signed byte.
    ///
    /// # Errors
    /// Fails on out-of-bounds access.
    pub fn read_i8(&self, addr: u64) -> Result<i8, MemError> {
        let a = self.check(addr, 1)?;
        Ok(self.bytes[a] as i8)
    }

    /// Writes a signed byte.
    ///
    /// # Errors
    /// Fails on out-of-bounds access.
    pub fn write_i8(&mut self, addr: u64, value: i8) -> Result<(), MemError> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = value as u8;
        Ok(())
    }

    /// Reads a little-endian i32.
    ///
    /// # Errors
    /// Fails on out-of-bounds access.
    pub fn read_i32(&self, addr: u64) -> Result<i32, MemError> {
        let a = self.check(addr, 4)?;
        Ok(i32::from_le_bytes(
            self.bytes[a..a + 4].try_into().expect("4 bytes"),
        ))
    }

    /// Writes a little-endian i32.
    ///
    /// # Errors
    /// Fails on out-of-bounds access.
    pub fn write_i32(&mut self, addr: u64, value: i32) -> Result<(), MemError> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian i64.
    ///
    /// # Errors
    /// Fails on out-of-bounds access.
    pub fn read_i64(&self, addr: u64) -> Result<i64, MemError> {
        let a = self.check(addr, 8)?;
        Ok(i64::from_le_bytes(
            self.bytes[a..a + 8].try_into().expect("8 bytes"),
        ))
    }

    /// Writes a little-endian i64.
    ///
    /// # Errors
    /// Fails on out-of-bounds access.
    pub fn write_i64(&mut self, addr: u64, value: i64) -> Result<(), MemError> {
        let a = self.check(addr, 8)?;
        self.bytes[a..a + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies a slice of i8 values into memory starting at `addr`.
    ///
    /// # Errors
    /// Fails on out-of-bounds access.
    pub fn write_i8_slice(&mut self, addr: u64, values: &[i8]) -> Result<(), MemError> {
        let a = self.check(addr, values.len())?;
        for (i, &v) in values.iter().enumerate() {
            self.bytes[a + i] = v as u8;
        }
        Ok(())
    }

    /// Reads `count` i32 values starting at `addr`.
    ///
    /// # Errors
    /// Fails on out-of-bounds access.
    pub fn read_i32_slice(&self, addr: u64, count: usize) -> Result<Vec<i32>, MemError> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            out.push(self.read_i32(addr + 4 * i as u64)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut m = Memory::new(64);
        m.write_i8(0, -5).unwrap();
        m.write_i32(8, -123456).unwrap();
        m.write_i64(16, i64::MIN + 3).unwrap();
        assert_eq!(m.read_i8(0).unwrap(), -5);
        assert_eq!(m.read_i32(8).unwrap(), -123456);
        assert_eq!(m.read_i64(16).unwrap(), i64::MIN + 3);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(8);
        m.write_i32(0, 0x0403_0201).unwrap();
        assert_eq!(m.read_i8(0).unwrap(), 1);
        assert_eq!(m.read_i8(3).unwrap(), 4);
    }

    #[test]
    fn bounds_are_checked() {
        let mut m = Memory::new(8);
        assert!(m.read_i32(5).is_err());
        assert!(m.write_i64(1, 0).is_err());
        assert!(m.read_i8(8).is_err());
        let e = m.read_i32(u64::MAX).unwrap_err();
        assert_eq!(e.size, 4);
    }

    #[test]
    fn slice_helpers() {
        let mut m = Memory::new(32);
        m.write_i8_slice(4, &[1, -2, 3]).unwrap();
        assert_eq!(m.read_i8(5).unwrap(), -2);
        m.write_i32(8, 7).unwrap();
        m.write_i32(12, 9).unwrap();
        assert_eq!(m.read_i32_slice(8, 2).unwrap(), vec![7, 9]);
    }
}
