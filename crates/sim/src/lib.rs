//! # accfg-sim: a cycle-level host + accelerator co-simulator
//!
//! The execution substrate for the reproduction of *"The Configuration
//! Wall"* (ASPLOS 2026). The paper runs its binaries on the spike ISA
//! simulator (Gemmini platform) and a Verilated RTL model (OpenGeMM
//! platform); this crate replaces both with one parameterized simulator
//! that reproduces the quantities the paper measures:
//!
//! - per-class host instruction and cycle counts ([`Counters`]), split into
//!   configuration vs. calculation, feeding the roofline model;
//! - configuration bytes transferred, for `I_OC` and `BW_config`;
//! - the timing structure of sequential vs. concurrent configuration
//!   ([`ConfigScheme`]): sequential hosts stall on any config access while
//!   the accelerator is busy, concurrent hosts stage writes and overlap;
//! - *functional* execution: the accelerator actually computes its tile
//!   matmuls on a shared byte-addressable [`Memory`], so compiled programs
//!   are checked end-to-end against reference results.
//!
//! ```
//! use accfg_sim::{Machine, HostModel, AccelSim, AccelParams, regmap};
//! use accfg_sim::isa::ProgramBuilder;
//!
//! let mut m = Machine::new(
//!     HostModel::snitch_like(),
//!     AccelSim::new(AccelParams::opengemm_like()),
//!     0x1000,
//! );
//! # for i in 0..4 { m.mem.write_i8(0x100 + i, 1)?; m.mem.write_i8(0x200 + i, 1)?; }
//! let mut p = ProgramBuilder::new();
//! let r = p.reg();
//! for (csr, v) in [(regmap::A_ADDR, 0x100), (regmap::B_ADDR, 0x200),
//!                  (regmap::C_ADDR, 0x300), (regmap::M, 2), (regmap::N, 2),
//!                  (regmap::K, 2), (regmap::STRIDE_A, 2), (regmap::STRIDE_B, 2),
//!                  (regmap::STRIDE_C, 8)] {
//!     p.li(r, v);
//!     p.csr_write(csr, r);
//! }
//! p.launch();
//! p.await_idle();
//! p.halt();
//! let counters = m.run(&p.finish(), 1_000).unwrap();
//! assert_eq!(counters.launches, 1);
//! assert_eq!(m.mem.read_i32(0x300)?, 2); // 1·1 + 1·1
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod accel;
pub mod host;
pub mod isa;
pub mod machine;
pub mod memory;
pub mod timeline;
pub mod timing;

pub use accel::{
    execute_tile, flags, regmap, AccelParams, AccelSim, AccelStats, ConfigScheme, LaunchError,
    TileOp,
};
pub use host::HostModel;
pub use isa::{AluOp, BranchCond, Inst, Label, Program, ProgramBuilder, Reg, Width};
pub use machine::{Counters, Machine, SimError};
pub use memory::{MemError, Memory};
pub use timeline::{Activity, Annotation, AnnotationKind, Span, Timeline};
pub use timing::{ContentionParams, DvfsParams, DvfsState, FreqState, TimingModel, FREQ_STATES};
