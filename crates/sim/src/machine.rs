//! The cycle-level host + accelerator co-simulator.
//!
//! Executes a [`Program`] on a [`HostModel`] connected to one [`AccelSim`],
//! reproducing the timing structure of Figure 2: host instructions cost
//! cycles, the accelerator runs in the background from `launch` until its
//! busy window closes, and the host stalls when it awaits — or, on
//! sequential-configuration platforms, whenever it touches a configuration
//! register while the accelerator is busy.

use crate::accel::{AccelSim, ConfigScheme, LaunchError};
use crate::host::HostModel;
use crate::isa::{Inst, Program};
use crate::memory::{MemError, Memory};
use crate::timeline::{Activity, Timeline};
use crate::timing::FREQ_STATES;
use std::error::Error;
use std::fmt;

/// Why simulation stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Host load/store fault.
    Mem(MemError),
    /// Accelerator launch fault.
    Launch(LaunchError),
    /// The dynamic instruction budget was exhausted.
    OutOfFuel {
        /// Instructions executed before giving up.
        executed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mem(e) => write!(f, "host memory fault: {e}"),
            SimError::Launch(e) => write!(f, "{e}"),
            SimError::OutOfFuel { executed } => {
                write!(f, "out of fuel after {executed} instructions")
            }
        }
    }
}

impl Error for SimError {}

impl From<MemError> for SimError {
    fn from(e: MemError) -> Self {
        SimError::Mem(e)
    }
}

impl From<LaunchError> for SimError {
    fn from(e: LaunchError) -> Self {
        SimError::Launch(e)
    }
}

/// Cycle and instruction counters from one run — everything the
/// configuration roofline needs (Section 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// End-to-end cycles (until both host and accelerator are done).
    pub cycles: u64,
    /// Cycles the host spent actively executing instructions.
    pub host_cycles: u64,
    /// Cycles the host spent stalled waiting for the accelerator.
    pub stall_cycles: u64,
    /// Cycles during which host execution and accelerator execution
    /// overlapped (nonzero only with concurrent configuration).
    pub overlap_cycles: u64,
    /// Dynamic instruction count.
    pub insts_total: u64,
    /// Dynamic configuration instructions (CSR writes, RoCC commands,
    /// launches, polls) — the paper's "setup instructions".
    pub insts_config: u64,
    /// Dynamic non-configuration instructions — the paper's "parameter
    /// calculation" instructions.
    pub insts_calc: u64,
    /// Cycles spent in configuration instructions.
    pub config_cycles: u64,
    /// Cycles spent in calculation instructions.
    pub calc_cycles: u64,
    /// Configuration payload bytes transferred to the accelerator.
    pub config_bytes: u64,
    /// Accelerator launches.
    pub launches: u64,
    /// Extra host cycles charged by the shared memory-bandwidth
    /// contention model (a subset of `config_cycles`/`calc_cycles`;
    /// always 0 under the identity timing model).
    pub contention_cycles: u64,
    /// Launches per DVFS frequency state (cold, warm, boost), counted
    /// only while DVFS is enabled — all zero under the identity model.
    pub freq_launches: [u64; FREQ_STATES],
}

impl Counters {
    /// Measured performance in ops/cycle given the accelerator's op count.
    pub fn ops_per_cycle(&self, ops: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            ops as f64 / self.cycles as f64
        }
    }

    /// Operation-to-configuration intensity `I_OC` in ops/byte
    /// (Section 4.2).
    pub fn operation_intensity(&self, ops: u64) -> f64 {
        if self.config_bytes == 0 {
            f64::INFINITY
        } else {
            ops as f64 / self.config_bytes as f64
        }
    }

    /// Effective configuration bandwidth in bytes/cycle (Section 4.4,
    /// Equation 4): configuration bytes over *all* host time spent
    /// producing them (calculation + register writes).
    pub fn effective_config_bandwidth(&self) -> f64 {
        let t = (self.config_cycles + self.calc_cycles) as f64;
        if t == 0.0 {
            f64::INFINITY
        } else {
            self.config_bytes as f64 / t
        }
    }
}

/// A host machine wired to one accelerator.
#[derive(Debug, Clone)]
pub struct Machine {
    /// The host cost model.
    pub host: HostModel,
    /// The accelerator.
    pub accel: AccelSim,
    /// Shared memory.
    pub mem: Memory,
    /// Host register file (sized on demand).
    pub regs: Vec<i64>,
}

impl Machine {
    /// Creates a machine with `mem_bytes` of zeroed memory.
    pub fn new(host: HostModel, accel: AccelSim, mem_bytes: usize) -> Self {
        Self {
            host,
            accel,
            mem: Memory::new(mem_bytes),
            regs: Vec::new(),
        }
    }

    /// Runs `program` to completion (Halt or falling off the end).
    ///
    /// # Errors
    ///
    /// Fails on memory faults, launch faults, or when more than `max_insts`
    /// dynamic instructions execute (runaway loop).
    pub fn run(&mut self, program: &Program, max_insts: u64) -> Result<Counters, SimError> {
        self.run_inner(program, max_insts, None)
    }

    /// Like [`Machine::run`], additionally recording a Figure 2-style
    /// execution [`Timeline`] of host and accelerator activity.
    ///
    /// # Errors
    /// Same as [`Machine::run`].
    pub fn run_traced(
        &mut self,
        program: &Program,
        max_insts: u64,
        timeline: &mut Timeline,
    ) -> Result<Counters, SimError> {
        self.run_inner(program, max_insts, Some(timeline))
    }

    fn run_inner(
        &mut self,
        program: &Program,
        max_insts: u64,
        mut timeline: Option<&mut Timeline>,
    ) -> Result<Counters, SimError> {
        if self.regs.len() < program.reg_count() {
            self.regs.resize(program.reg_count(), 0);
        }
        let mut c = Counters::default();
        let mut cycle: u64 = 0;
        let mut pc: usize = 0;
        let insts = program.insts();
        while pc < insts.len() {
            if c.insts_total >= max_insts {
                return Err(SimError::OutOfFuel {
                    executed: c.insts_total,
                });
            }
            let inst = insts[pc];
            if matches!(inst, Inst::Halt) {
                break;
            }
            c.insts_total += 1;

            // stalls: sequential config while busy; launches and awaits always
            let must_wait_idle = match inst {
                Inst::CsrWrite { .. } | Inst::RoccCmd { .. } => {
                    self.accel.params.scheme == ConfigScheme::Sequential
                }
                Inst::Launch | Inst::AwaitIdle => true,
                _ => false,
            };
            if must_wait_idle && self.accel.is_busy(cycle) {
                let until = self.accel.busy_until();
                c.stall_cycles += until - cycle;
                if let Some(t) = timeline.as_deref_mut() {
                    t.record_host(cycle, until, Activity::Stall);
                }
                cycle = until;
            }

            let mut cost = self.host.cycles_for(&inst);
            // shared-bandwidth contention: traffic issued while the
            // accelerator's tile streams hold part of the budget runs at
            // the leftover bandwidth, and the budget slots it takes push
            // the in-flight busy window out
            if let Some(cp) = self.accel.timing.contention {
                let traffic = inst.traffic_bytes(self.accel.params.csr_payload_bytes);
                if traffic > 0 && self.accel.is_busy(cycle) {
                    let extra = cp.host_penalty(traffic);
                    self.accel.push_back(cycle, cp.accel_pushback(traffic));
                    if let Some(t) = timeline.as_deref_mut() {
                        t.extend_accel(self.accel.busy_until());
                        t.annotate_contention(cycle, extra);
                    }
                    cost += extra;
                    c.contention_cycles += extra;
                }
            }
            // overlap accounting: host active [cycle, cycle+cost) vs busy window
            let busy_until = self.accel.busy_until();
            if busy_until > cycle {
                c.overlap_cycles += busy_until.min(cycle + cost) - cycle;
            }
            if inst.is_config() {
                c.insts_config += 1;
                c.config_cycles += cost;
            } else {
                c.insts_calc += 1;
                c.calc_cycles += cost;
            }
            if let Some(t) = timeline.as_deref_mut() {
                let activity = if inst.is_config() {
                    Activity::Config
                } else {
                    Activity::Calc
                };
                t.record_host(cycle, cycle + cost, activity);
            }
            c.host_cycles += cost;
            cycle += cost;

            let mut next_pc = pc + 1;
            match inst {
                Inst::Li { rd, imm } => self.regs[rd.0 as usize] = imm,
                Inst::Alu { op, rd, rs1, rs2 } => {
                    self.regs[rd.0 as usize] =
                        op.eval(self.regs[rs1.0 as usize], self.regs[rs2.0 as usize]);
                }
                Inst::AluI { op, rd, rs1, imm } => {
                    self.regs[rd.0 as usize] = op.eval(self.regs[rs1.0 as usize], imm);
                }
                Inst::Ld {
                    rd,
                    base,
                    offset,
                    width,
                } => {
                    let addr = (self.regs[base.0 as usize].wrapping_add(offset)) as u64;
                    self.regs[rd.0 as usize] = match width {
                        crate::isa::Width::Byte => i64::from(self.mem.read_i8(addr)?),
                        crate::isa::Width::Word => i64::from(self.mem.read_i32(addr)?),
                        crate::isa::Width::Double => self.mem.read_i64(addr)?,
                    };
                }
                Inst::St {
                    rs,
                    base,
                    offset,
                    width,
                } => {
                    let addr = (self.regs[base.0 as usize].wrapping_add(offset)) as u64;
                    let v = self.regs[rs.0 as usize];
                    match width {
                        crate::isa::Width::Byte => self.mem.write_i8(addr, v as i8)?,
                        crate::isa::Width::Word => self.mem.write_i32(addr, v as i32)?,
                        crate::isa::Width::Double => self.mem.write_i64(addr, v)?,
                    }
                }
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    if cond.eval(self.regs[rs1.0 as usize], self.regs[rs2.0 as usize]) {
                        next_pc = program.resolve(target);
                    }
                }
                Inst::Jump { target } => next_pc = program.resolve(target),
                Inst::CsrWrite { csr, rs } => {
                    self.accel.write_reg(csr, self.regs[rs.0 as usize]);
                    c.config_bytes += self.accel.params.csr_payload_bytes;
                }
                Inst::RoccCmd { funct, rs1, rs2 } => {
                    // funct f writes the register pair (2f, 2f+1): 16 bytes
                    self.accel
                        .write_reg(u16::from(funct) * 2, self.regs[rs1.0 as usize]);
                    self.accel
                        .write_reg(u16::from(funct) * 2 + 1, self.regs[rs2.0 as usize]);
                    c.config_bytes += 16;
                    if self.accel.params.rocc_launch_funct == Some(funct) {
                        let done = self.accel.launch(&mut self.mem, cycle)?;
                        if self.accel.timing.dvfs.is_some() {
                            c.freq_launches[self.accel.last_launch_state().index()] += 1;
                        }
                        if let Some(t) = timeline.as_deref_mut() {
                            t.record_accel(cycle, done);
                            if self.accel.timing.dvfs.is_some() {
                                t.annotate_frequency(cycle, self.accel.last_launch_state());
                            }
                        }
                        c.launches += 1;
                    }
                }
                Inst::Launch => {
                    let done = self.accel.launch(&mut self.mem, cycle)?;
                    if self.accel.timing.dvfs.is_some() {
                        c.freq_launches[self.accel.last_launch_state().index()] += 1;
                    }
                    if let Some(t) = timeline.as_deref_mut() {
                        t.record_accel(cycle, done);
                        if self.accel.timing.dvfs.is_some() {
                            t.annotate_frequency(cycle, self.accel.last_launch_state());
                        }
                    }
                    c.config_bytes += self.accel.params.csr_payload_bytes;
                    c.launches += 1;
                }
                Inst::AwaitIdle => {
                    // already stalled to idle above; this is the final poll
                }
                Inst::Halt => unreachable!("handled before execution"),
            }
            pc = next_pc;
        }
        // the program may end with the accelerator still running
        if self.accel.busy_until() > cycle {
            c.stall_cycles += self.accel.busy_until() - cycle;
            if let Some(t) = timeline {
                t.record_host(cycle, self.accel.busy_until(), Activity::Stall);
            }
            cycle = self.accel.busy_until();
        }
        c.cycles = cycle;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::{regmap, AccelParams};
    use crate::isa::{AluOp, BranchCond, ProgramBuilder, Width};

    fn machine(params: AccelParams) -> Machine {
        Machine::new(HostModel::snitch_like(), AccelSim::new(params), 0x10000)
    }

    /// Writes the full tile descriptor via CSRs and launches.
    fn emit_tile_csr(p: &mut ProgramBuilder, a: i64, b: i64, c: i64, size: i64) {
        let r = p.reg();
        for (csr, v) in [
            (regmap::A_ADDR, a),
            (regmap::B_ADDR, b),
            (regmap::C_ADDR, c),
            (regmap::M, size),
            (regmap::N, size),
            (regmap::K, size),
            (regmap::STRIDE_A, size),
            (regmap::STRIDE_B, size),
            (regmap::STRIDE_C, 4 * size),
        ] {
            p.li(r, v);
            p.csr_write(csr, r);
        }
        p.launch();
    }

    #[test]
    fn functional_matmul_end_to_end() {
        let mut m = machine(AccelParams::opengemm_like());
        // A = B = 4×4 identity-ish: fill with 1s
        for i in 0..16 {
            m.mem.write_i8(0x100 + i, 1).unwrap();
            m.mem.write_i8(0x200 + i, 1).unwrap();
        }
        let mut p = ProgramBuilder::new();
        emit_tile_csr(&mut p, 0x100, 0x200, 0x300, 4);
        p.await_idle();
        p.halt();
        let counters = m.run(&p.finish(), 10_000).unwrap();
        assert_eq!(counters.launches, 1);
        // every C element = Σ 1·1 over k=4
        for j in 0..16 {
            assert_eq!(m.mem.read_i32(0x300 + 4 * j).unwrap(), 4);
        }
        assert_eq!(m.accel.stats.macs, 64);
    }

    #[test]
    fn concurrent_config_overlaps_next_setup() {
        let mut m = machine(AccelParams::opengemm_like());
        for i in 0..4096 {
            m.mem.write_i8(0x100 + i, 1).unwrap();
            m.mem.write_i8(0x1100 + i, 1).unwrap();
        }
        let mut p = ProgramBuilder::new();
        // a long-running tile, then a reconfiguration while it is still
        // busy (should NOT stall on concurrent hardware)
        emit_tile_csr(&mut p, 0x100, 0x1100, 0x2100, 64);
        emit_tile_csr(&mut p, 0x100, 0x1100, 0x6100, 64);
        p.await_idle();
        p.halt();
        let c = m.run(&p.finish(), 100_000).unwrap();
        assert!(c.overlap_cycles > 0, "{c:?}");
        assert_eq!(c.launches, 2);
    }

    #[test]
    fn sequential_config_stalls_while_busy() {
        let mut m = machine(AccelParams::gemmini_like());
        for i in 0..4096 {
            m.mem.write_i8(0x100 + i, 1).unwrap();
            m.mem.write_i8(0x1100 + i, 1).unwrap();
        }
        // configure + launch via RoCC pairs: functs 0..=5 config, funct 13
        // (the launch-semantic command) launches
        let mut p = ProgramBuilder::new();
        let (r1, r2) = (p.reg(), p.reg());
        let size = 64i64;
        let emit = |p: &mut ProgramBuilder, c_addr: i64| {
            // funct f writes config registers (2f, 2f+1)
            let pairs: [(i64, i64); 6] = [
                (0x100, 0x1100),  // A_ADDR, B_ADDR
                (c_addr, 0),      // C_ADDR, D_ADDR
                (size, size),     // M, N
                (size, size),     // K, STRIDE_A
                (size, 4 * size), // STRIDE_B, STRIDE_C
                (0, 0),           // STRIDE_D, FLAGS
            ];
            for (f, &(v1, v2)) in pairs.iter().enumerate() {
                p.li(r1, v1);
                p.li(r2, v2);
                p.rocc(f as u8, r1, r2);
            }
            p.rocc(13, r1, r2); // launch-semantic command
        };
        emit(&mut p, 0x2100);
        emit(&mut p, 0x6100); // reconfigure immediately: must stall
        p.await_idle();
        p.halt();
        let c = m.run(&p.finish(), 100_000).unwrap();
        assert_eq!(c.launches, 2);
        assert!(c.stall_cycles > 0, "{c:?}");
        // the host may overlap its *own* (non-config) work — here just the
        // two `li`s before it stalls on the first RoCC of the next tile —
        // but never configuration
        assert!(c.overlap_cycles <= 4, "{c:?}");
    }

    #[test]
    fn await_accounts_stall_cycles() {
        let mut m = machine(AccelParams::opengemm_like());
        for i in 0..4096 {
            m.mem.write_i8(0x100 + i, 1).unwrap();
            m.mem.write_i8(0x1100 + i, 1).unwrap();
        }
        let mut p = ProgramBuilder::new();
        emit_tile_csr(&mut p, 0x100, 0x1100, 0x2100, 64);
        p.await_idle();
        p.halt();
        let c = m.run(&p.finish(), 100_000).unwrap();
        // 64³ = 262144 MACs at 512/cycle = 512 cycles + overhead; host does
        // almost nothing in between, so it stalls for most of that
        assert!(c.stall_cycles > 400, "{c:?}");
        assert_eq!(c.cycles, c.host_cycles + c.stall_cycles);
    }

    #[test]
    fn branch_loops_execute() {
        let mut m = machine(AccelParams::opengemm_like());
        let mut p = ProgramBuilder::new();
        let (i, n, acc) = (p.reg(), p.reg(), p.reg());
        p.li(i, 0);
        p.li(n, 10);
        p.li(acc, 0);
        let head = p.new_label();
        p.bind(head);
        p.alui(AluOp::Add, acc, acc, 5);
        p.alui(AluOp::Add, i, i, 1);
        p.branch(BranchCond::Lt, i, n, head);
        p.halt();
        let c = m.run(&p.finish(), 1000).unwrap();
        assert_eq!(m.regs[acc.0 as usize], 50);
        assert_eq!(c.insts_total, 3 + 30);
    }

    #[test]
    fn loads_and_stores_work() {
        let mut m = machine(AccelParams::opengemm_like());
        let mut p = ProgramBuilder::new();
        let (base, v, out) = (p.reg(), p.reg(), p.reg());
        p.li(base, 0x500);
        p.li(v, -42);
        p.st(v, base, 8, Width::Double);
        p.ld(out, base, 8, Width::Double);
        p.halt();
        m.run(&p.finish(), 100).unwrap();
        assert_eq!(m.regs[out.0 as usize], -42);
        assert_eq!(m.mem.read_i64(0x508).unwrap(), -42);
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let mut m = machine(AccelParams::opengemm_like());
        let mut p = ProgramBuilder::new();
        let head = p.new_label();
        p.bind(head);
        p.jump(head);
        p.halt();
        assert!(matches!(
            m.run(&p.finish(), 100),
            Err(SimError::OutOfFuel { executed: 100 })
        ));
    }

    #[test]
    fn counters_partition_cleanly() {
        let mut m = machine(AccelParams::opengemm_like());
        for i in 0..64 {
            m.mem.write_i8(0x100 + i, 2).unwrap();
            m.mem.write_i8(0x200 + i, 3).unwrap();
        }
        let mut p = ProgramBuilder::new();
        emit_tile_csr(&mut p, 0x100, 0x200, 0x300, 8);
        p.await_idle();
        p.halt();
        let c = m.run(&p.finish(), 10_000).unwrap();
        assert_eq!(c.insts_total, c.insts_config + c.insts_calc);
        assert_eq!(c.host_cycles, c.config_cycles + c.calc_cycles);
        // 9 CSR writes × 4 bytes + launch 4 bytes
        assert_eq!(c.config_bytes, 40);
        assert_eq!(m.mem.read_i32(0x300).unwrap(), 2 * 3 * 8);
    }

    #[test]
    fn traced_run_agrees_with_counters() {
        use crate::timeline::{Activity, Timeline};
        let mut m = machine(AccelParams::opengemm_like());
        for i in 0..256 {
            m.mem.write_i8(0x100 + i, 1).unwrap();
            m.mem.write_i8(0x400 + i, 1).unwrap();
        }
        let mut p = ProgramBuilder::new();
        emit_tile_csr(&mut p, 0x100, 0x400, 0x800, 16);
        p.await_idle();
        p.halt();
        let prog = p.finish();
        let mut timeline = Timeline::new();
        let c = m.run_traced(&prog, 100_000, &mut timeline).unwrap();
        assert_eq!(timeline.cycles_of(Activity::Config), c.config_cycles);
        assert_eq!(timeline.cycles_of(Activity::Calc), c.calc_cycles);
        assert_eq!(timeline.cycles_of(Activity::Stall), c.stall_cycles);
        assert_eq!(
            timeline.cycles_of(Activity::Busy),
            m.accel.stats.busy_cycles
        );
        assert_eq!(timeline.end(), c.cycles);
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        let build = || {
            let mut p = ProgramBuilder::new();
            emit_tile_csr(&mut p, 0x100, 0x200, 0x300, 4);
            p.await_idle();
            p.halt();
            p.finish()
        };
        let mut m1 = machine(AccelParams::opengemm_like());
        let mut m2 = machine(AccelParams::opengemm_like());
        for i in 0..16 {
            m1.mem.write_i8(0x100 + i, 2).unwrap();
            m1.mem.write_i8(0x200 + i, 2).unwrap();
            m2.mem.write_i8(0x100 + i, 2).unwrap();
            m2.mem.write_i8(0x200 + i, 2).unwrap();
        }
        let c1 = m1.run(&build(), 100_000).unwrap();
        let mut t = crate::timeline::Timeline::new();
        let c2 = m2.run_traced(&build(), 100_000, &mut t).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(m1.mem, m2.mem);
    }

    fn reference_timing() -> crate::timing::TimingModel {
        crate::timing::TimingModel {
            contention: Some(crate::timing::ContentionParams {
                budget_bytes_per_cycle: 8,
                accel_bytes_per_cycle: 6,
            }),
            dvfs: Some(crate::timing::DvfsParams {
                warm_busy_cycles: 64,
                boost_busy_cycles: 256,
                cooldown_idle_cycles: 4_096,
                speed_pct: [50, 100, 150],
            }),
        }
    }

    fn timed_machine(timing: crate::timing::TimingModel) -> Machine {
        Machine::new(
            HostModel::snitch_like(),
            AccelSim::with_timing(AccelParams::opengemm_like(), timing),
            0x10000,
        )
    }

    fn two_tile_program() -> Program {
        let mut p = ProgramBuilder::new();
        emit_tile_csr(&mut p, 0x100, 0x1100, 0x2100, 64);
        emit_tile_csr(&mut p, 0x100, 0x1100, 0x6100, 64);
        p.await_idle();
        p.halt();
        p.finish()
    }

    fn fill_two_tiles(m: &mut Machine) {
        for i in 0..4096 {
            m.mem.write_i8(0x100 + i, 1).unwrap();
            m.mem.write_i8(0x1100 + i, 1).unwrap();
        }
    }

    #[test]
    fn identity_timing_is_the_default_and_charges_nothing() {
        let mut base = machine(AccelParams::opengemm_like());
        let mut explicit = timed_machine(crate::timing::TimingModel::identity());
        fill_two_tiles(&mut base);
        fill_two_tiles(&mut explicit);
        let p = two_tile_program();
        let a = base.run(&p, 100_000).unwrap();
        let b = explicit.run(&p, 100_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.contention_cycles, 0);
        assert_eq!(a.freq_launches, [0, 0, 0]);
        assert_eq!(base.mem, explicit.mem);
    }

    #[test]
    fn contention_stretches_overlapped_config_writes() {
        // the second tile's CSR writes land while the first is busy: under
        // contention they run at leftover bandwidth and push the busy
        // window out, so the run takes longer than the identity run
        let contention_only = crate::timing::TimingModel {
            contention: reference_timing().contention,
            dvfs: None,
        };
        let mut ident = timed_machine(crate::timing::TimingModel::identity());
        let mut contended = timed_machine(contention_only);
        fill_two_tiles(&mut ident);
        fill_two_tiles(&mut contended);
        let p = two_tile_program();
        let a = ident.run(&p, 100_000).unwrap();
        let b = contended.run(&p, 100_000).unwrap();
        assert!(b.contention_cycles > 0, "{b:?}");
        assert!(b.cycles > a.cycles, "{} !> {}", b.cycles, a.cycles);
        // contention changes timing only, never results
        assert_eq!(ident.mem, contended.mem);
        assert_eq!(a.insts_total, b.insts_total);
        assert_eq!(a.config_bytes, b.config_bytes);
        // the counter partitions still hold, contention included
        assert_eq!(b.insts_total, b.insts_config + b.insts_calc);
        assert_eq!(b.host_cycles, b.config_cycles + b.calc_cycles);
        assert_eq!(b.cycles, b.host_cycles + b.stall_cycles);
    }

    #[test]
    fn dvfs_heats_up_across_launches() {
        let dvfs_only = crate::timing::TimingModel {
            contention: None,
            dvfs: reference_timing().dvfs,
        };
        let mut m = timed_machine(dvfs_only);
        fill_two_tiles(&mut m);
        // several sequential tiles with awaits in between: the first runs
        // cold, the accumulated busy cycles push later ones warmer
        let mut p = ProgramBuilder::new();
        for i in 0..4 {
            emit_tile_csr(&mut p, 0x100, 0x1100, 0x2100 + 0x1000 * i, 32);
            p.await_idle();
        }
        p.halt();
        let c = m.run(&p.finish(), 1_000_000).unwrap();
        assert_eq!(c.launches, 4);
        assert_eq!(c.freq_launches.iter().sum::<u64>(), 4);
        assert!(c.freq_launches[0] >= 1, "{:?}", c.freq_launches);
        assert!(
            c.freq_launches[1] + c.freq_launches[2] >= 1,
            "never left cold: {:?}",
            c.freq_launches
        );
        assert!(m.accel.dvfs_heat() > 0);
    }

    #[test]
    fn traced_timed_run_agrees_with_counters() {
        use crate::timeline::Timeline;
        let run = |traced: bool| {
            let mut m = timed_machine(reference_timing());
            fill_two_tiles(&mut m);
            let p = two_tile_program();
            if traced {
                let mut t = Timeline::new();
                let c = m.run_traced(&p, 100_000, &mut t).unwrap();
                (c, Some(t), m)
            } else {
                (m.run(&p, 100_000).unwrap(), None, m)
            }
        };
        let (c_plain, _, m_plain) = run(false);
        let (c, t, m) = run(true);
        let t = t.unwrap();
        // tracing never perturbs timing, even under the rich model
        assert_eq!(c, c_plain);
        assert_eq!(m.mem, m_plain.mem);
        // the annotations explain exactly the charged contention, and the
        // accel lane includes the pushed-back busy window
        assert_eq!(t.contention_cycles(), c.contention_cycles);
        assert!(c.contention_cycles > 0);
        assert_eq!(t.cycles_of(Activity::Busy), m.accel.stats.busy_cycles);
        assert_eq!(t.cycles_of(Activity::Config), c.config_cycles);
        assert_eq!(t.cycles_of(Activity::Calc), c.calc_cycles);
        assert_eq!(t.cycles_of(Activity::Stall), c.stall_cycles);
        assert_eq!(t.end(), c.cycles);
        // one frequency annotation per launch
        let freq_notes = t
            .annotations
            .iter()
            .filter(|a| matches!(a.kind, crate::timeline::AnnotationKind::Frequency { .. }))
            .count() as u64;
        assert_eq!(freq_notes, c.launches);
    }

    #[test]
    fn roofline_counter_helpers() {
        let c = Counters {
            cycles: 100,
            config_bytes: 50,
            config_cycles: 20,
            calc_cycles: 30,
            ..Default::default()
        };
        assert!((c.ops_per_cycle(800) - 8.0).abs() < 1e-12);
        assert!((c.operation_intensity(800) - 16.0).abs() < 1e-12);
        assert!((c.effective_config_bandwidth() - 1.0).abs() < 1e-12);
    }
}
