//! The virtual host ISA.
//!
//! A RISC-V-flavoured instruction set with an unbounded virtual register
//! file, plus the accelerator-interface instructions the paper's platforms
//! use: memory-mapped/CSR configuration writes (OpenGeMM-style), RoCC custom
//! instructions carrying 16 configuration bytes (Gemmini-style), explicit
//! launches, and status polling.
//!
//! Register allocation is intentionally not modeled: the paper's metrics are
//! instruction-class counts and cycles, and the tiled kernels it measures
//! do not spill under -O2.

use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A branch target, resolved to an instruction index by [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

impl Label {
    /// The label's index into a program's target table (for serialization).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a label from its table index. Pairs with
    /// [`Program::from_parts`], which validates that every referenced index
    /// resolves; a hand-built label is only meaningful against the program
    /// it was serialized from.
    pub fn from_index(index: u32) -> Self {
        Label(index)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// ALU operations (two's-complement, 64-bit, RISC-V division semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Unsigned division (`/0` → all ones).
    Divu,
    /// Unsigned remainder (`%0` → dividend).
    Remu,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Set-less-than, signed (1 or 0).
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Evaluates the op on two 64-bit values.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Divu => {
                if b == 0 {
                    -1
                } else {
                    ((a as u64) / (b as u64)) as i64
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    ((a as u64) % (b as u64)) as i64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => {
                if (b as u64) >= 64 {
                    0
                } else {
                    ((a as u64) << b) as i64
                }
            }
            AluOp::Srl => {
                if (b as u64) >= 64 {
                    0
                } else {
                    ((a as u64) >> b) as i64
                }
            }
            AluOp::Slt => i64::from(a < b),
            AluOp::Sltu => i64::from((a as u64) < (b as u64)),
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Divu => "divu",
            AluOp::Remu => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
}

impl BranchCond {
    /// Evaluates the condition.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
        }
    }
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    Byte,
    /// 4 bytes.
    Word,
    /// 8 bytes.
    Double,
}

impl Width {
    /// Access size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Width::Byte => 1,
            Width::Word => 4,
            Width::Double => 8,
        }
    }
}

/// One host instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// Load immediate: `rd = imm`.
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Register-register ALU: `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left source.
        rs1: Reg,
        /// Right source.
        rs2: Reg,
    },
    /// Register-immediate ALU: `rd = rs1 op imm`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// Load: `rd = mem[rs1 + offset]`.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// Store: `mem[rs1 + offset] = rs2`.
    St {
        /// Value to store.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// Conditional branch to `target`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// Left comparand.
        rs1: Reg,
        /// Right comparand.
        rs2: Reg,
        /// Branch target.
        target: Label,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: Label,
    },
    /// Configuration-register write (MMIO/CSR style): `cfg[csr] = rs`.
    CsrWrite {
        /// Config register index.
        csr: u16,
        /// Source register.
        rs: Reg,
    },
    /// RoCC-style custom instruction: 16 configuration bytes in one shot.
    RoccCmd {
        /// Function selector (which config pair to write; the launch funct
        /// carries launch semantics on Gemmini-style targets).
        funct: u8,
        /// First 8-byte payload.
        rs1: Reg,
        /// Second 8-byte payload.
        rs2: Reg,
    },
    /// Explicit launch (write to the launch register).
    Launch,
    /// Poll the status register until the accelerator is idle.
    AwaitIdle,
    /// Stop execution.
    Halt,
}

impl Inst {
    /// `true` for the instructions that transfer configuration bytes or
    /// control to the accelerator (the paper's "setup instructions").
    pub fn is_config(self) -> bool {
        matches!(
            self,
            Inst::CsrWrite { .. } | Inst::RoccCmd { .. } | Inst::Launch | Inst::AwaitIdle
        )
    }

    /// Bytes this instruction moves through the shared memory system —
    /// what the contention model charges when the accelerator's tile
    /// traffic holds part of the bandwidth budget. Configuration writes
    /// carry their payload (`csr_payload_bytes` per CSR access, 16 bytes
    /// per RoCC pair), loads/stores their access width; everything else
    /// stays in registers. `Launch` reports its payload for byte
    /// accounting completeness, but never contends in practice: the
    /// machine stalls a launch until the accelerator is idle, so its
    /// traffic cannot overlap a busy window.
    pub fn traffic_bytes(self, csr_payload_bytes: u64) -> u64 {
        match self {
            Inst::CsrWrite { .. } | Inst::Launch => csr_payload_bytes,
            Inst::RoccCmd { .. } => 16,
            Inst::Ld { width, .. } | Inst::St { width, .. } => width.bytes() as u64,
            _ => 0,
        }
    }
}

/// A finished program: instructions with resolved branch targets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    /// label index → instruction index
    label_targets: Vec<usize>,
    max_reg: u32,
}

impl Program {
    /// Reassembles a program from serialized parts (the inverse of
    /// [`Program::insts`], [`Program::label_targets`] and
    /// [`Program::reg_count`]).
    ///
    /// Returns `None` unless the parts are self-consistent: every label a
    /// branch or jump references must exist in `label_targets`, every
    /// target must land inside the program (one past the end is legal — a
    /// label bound after the final instruction), `reg_count` must be at
    /// least 1 and cover every register the instructions touch.
    pub fn from_parts(
        insts: Vec<Inst>,
        label_targets: Vec<usize>,
        reg_count: usize,
    ) -> Option<Self> {
        let max_reg = u32::try_from(reg_count.checked_sub(1)?).ok()?;
        if label_targets.iter().any(|&t| t > insts.len()) {
            return None;
        }
        let reg_ok = |r: Reg| r.0 <= max_reg;
        let label_ok = |l: Label| (l.0 as usize) < label_targets.len();
        for inst in &insts {
            let ok = match *inst {
                Inst::Li { rd, .. } => reg_ok(rd),
                Inst::Alu { rd, rs1, rs2, .. } => reg_ok(rd) && reg_ok(rs1) && reg_ok(rs2),
                Inst::AluI { rd, rs1, .. } => reg_ok(rd) && reg_ok(rs1),
                Inst::Ld { rd, base, .. } => reg_ok(rd) && reg_ok(base),
                Inst::St { rs, base, .. } => reg_ok(rs) && reg_ok(base),
                Inst::Branch {
                    rs1, rs2, target, ..
                } => reg_ok(rs1) && reg_ok(rs2) && label_ok(target),
                Inst::Jump { target } => label_ok(target),
                Inst::CsrWrite { rs, .. } => reg_ok(rs),
                Inst::RoccCmd { rs1, rs2, .. } => reg_ok(rs1) && reg_ok(rs2),
                Inst::Launch | Inst::AwaitIdle | Inst::Halt => true,
            };
            if !ok {
                return None;
            }
        }
        Some(Self {
            insts,
            label_targets,
            max_reg,
        })
    }

    /// The instruction sequence.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The label table: label index → instruction index (for
    /// serialization; use [`Program::resolve`] to follow a single label).
    pub fn label_targets(&self) -> &[usize] {
        &self.label_targets
    }

    /// The instruction index a label points to.
    pub fn resolve(&self, label: Label) -> usize {
        self.label_targets[label.0 as usize]
    }

    /// Number of virtual registers used (max index + 1).
    pub fn reg_count(&self) -> usize {
        self.max_reg as usize + 1
    }

    /// Instruction count (static, not dynamic).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// A readable disassembly listing.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            for (li, &t) in self.label_targets.iter().enumerate() {
                if t == i {
                    writeln!(out, ".L{li}:").unwrap();
                }
            }
            let line = match *inst {
                Inst::Li { rd, imm } => format!("li {rd}, {imm}"),
                Inst::Alu { op, rd, rs1, rs2 } => {
                    format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
                }
                Inst::AluI { op, rd, rs1, imm } => {
                    format!("{}i {rd}, {rs1}, {imm}", op.mnemonic())
                }
                Inst::Ld {
                    rd,
                    base,
                    offset,
                    width,
                } => format!("ld{} {rd}, {offset}({base})", width.bytes()),
                Inst::St {
                    rs,
                    base,
                    offset,
                    width,
                } => format!("st{} {rs}, {offset}({base})", width.bytes()),
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => format!("{} {rs1}, {rs2}, {target}", cond.mnemonic()),
                Inst::Jump { target } => format!("j {target}"),
                Inst::CsrWrite { csr, rs } => format!("csrw cfg{csr}, {rs}"),
                Inst::RoccCmd { funct, rs1, rs2 } => {
                    format!("rocc.custom f{funct}, {rs1}, {rs2}")
                }
                Inst::Launch => "launch".to_string(),
                Inst::AwaitIdle => "await_idle".to_string(),
                Inst::Halt => "halt".to_string(),
            };
            writeln!(out, "  {line}").unwrap();
        }
        out
    }
}

/// Incremental program construction with labels.
///
/// # Examples
///
/// ```
/// use accfg_sim::isa::{ProgramBuilder, AluOp, BranchCond};
///
/// let mut p = ProgramBuilder::new();
/// let counter = p.reg();
/// let limit = p.reg();
/// p.li(counter, 0);
/// p.li(limit, 10);
/// let head = p.new_label();
/// p.bind(head);
/// p.alui(AluOp::Add, counter, counter, 1);
/// p.branch(BranchCond::Lt, counter, limit, head);
/// p.halt();
/// let prog = p.finish();
/// assert_eq!(prog.len(), 5);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    label_targets: Vec<Option<usize>>,
    next_reg: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.label_targets.len() as u32);
        self.label_targets.push(None);
        l
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.label_targets[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len());
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Emits `li`.
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.push(Inst::Li { rd, imm });
    }

    /// Emits a register-register ALU op.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu { op, rd, rs1, rs2 });
    }

    /// Emits a register-immediate ALU op.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) {
        self.push(Inst::AluI { op, rd, rs1, imm });
    }

    /// Emits a load.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64, width: Width) {
        self.push(Inst::Ld {
            rd,
            base,
            offset,
            width,
        });
    }

    /// Emits a store.
    pub fn st(&mut self, rs: Reg, base: Reg, offset: i64, width: Width) {
        self.push(Inst::St {
            rs,
            base,
            offset,
            width,
        });
    }

    /// Emits a conditional branch.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) {
        self.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        });
    }

    /// Emits an unconditional jump.
    pub fn jump(&mut self, target: Label) {
        self.push(Inst::Jump { target });
    }

    /// Emits a configuration write.
    pub fn csr_write(&mut self, csr: u16, rs: Reg) {
        self.push(Inst::CsrWrite { csr, rs });
    }

    /// Emits a RoCC custom command.
    pub fn rocc(&mut self, funct: u8, rs1: Reg, rs2: Reg) {
        self.push(Inst::RoccCmd { funct, rs1, rs2 });
    }

    /// Emits a launch.
    pub fn launch(&mut self) {
        self.push(Inst::Launch);
    }

    /// Emits a status poll.
    pub fn await_idle(&mut self) {
        self.push(Inst::AwaitIdle);
    }

    /// Emits a halt.
    pub fn halt(&mut self) {
        self.push(Inst::Halt);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    /// Panics if any created label was never bound.
    pub fn finish(self) -> Program {
        let label_targets: Vec<usize> = self
            .label_targets
            .iter()
            .enumerate()
            .map(|(i, t)| t.unwrap_or_else(|| panic!("label .L{i} never bound")))
            .collect();
        Program {
            insts: self.insts,
            label_targets,
            max_reg: self.next_reg.max(1) - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics_match_riscv() {
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Divu.eval(10, 0), -1);
        assert_eq!(AluOp::Remu.eval(10, 0), 10);
        assert_eq!(AluOp::Sll.eval(1, 63), i64::MIN);
        assert_eq!(AluOp::Sll.eval(1, 64), 0);
        assert_eq!(AluOp::Srl.eval(-1, 63), 1);
        assert_eq!(AluOp::Slt.eval(-1, 0), 1);
        assert_eq!(AluOp::Sltu.eval(-1, 0), 0);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(-5, 0));
        assert!(BranchCond::Ge.eval(0, 0));
    }

    #[test]
    fn labels_resolve() {
        let mut p = ProgramBuilder::new();
        let r = p.reg();
        let skip = p.new_label();
        p.li(r, 1);
        p.jump(skip);
        p.li(r, 2);
        p.bind(skip);
        p.halt();
        let prog = p.finish();
        assert_eq!(prog.resolve(skip), 3);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut p = ProgramBuilder::new();
        let l = p.new_label();
        p.jump(l);
        let _ = p.finish();
    }

    #[test]
    fn config_instruction_classification() {
        let r = Reg(0);
        assert!(Inst::CsrWrite { csr: 0, rs: r }.is_config());
        assert!(Inst::RoccCmd {
            funct: 0,
            rs1: r,
            rs2: r
        }
        .is_config());
        assert!(Inst::Launch.is_config());
        assert!(Inst::AwaitIdle.is_config());
        assert!(!Inst::Li { rd: r, imm: 0 }.is_config());
        assert!(!Inst::Halt.is_config());
    }

    #[test]
    fn disassembly_is_readable() {
        let mut p = ProgramBuilder::new();
        let a = p.reg();
        let b = p.reg();
        p.li(a, 64);
        p.alu(AluOp::Mul, b, a, a);
        p.csr_write(3, b);
        p.launch();
        p.await_idle();
        p.halt();
        let text = p.finish().disassemble();
        assert!(text.contains("li x0, 64"));
        assert!(text.contains("mul x1, x0, x0"));
        assert!(text.contains("csrw cfg3, x1"));
        assert!(text.contains("launch"));
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Word.bytes(), 4);
        assert_eq!(Width::Double.bytes(), 8);
    }

    #[test]
    fn from_parts_round_trips_a_built_program() {
        let mut p = ProgramBuilder::new();
        let i = p.reg();
        let n = p.reg();
        p.li(i, 0);
        p.li(n, 4);
        let top = p.new_label();
        p.bind(top);
        p.alui(AluOp::Add, i, i, 1);
        p.branch(BranchCond::Lt, i, n, top);
        p.halt();
        let original = p.finish();

        let rebuilt = Program::from_parts(
            original.insts().to_vec(),
            original.label_targets().to_vec(),
            original.reg_count(),
        )
        .expect("parts of a valid program must reassemble");
        assert_eq!(rebuilt, original);
        assert_eq!(rebuilt.resolve(Label::from_index(0)), original.resolve(top));
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        let insts = vec![
            Inst::Jump {
                target: Label::from_index(1),
            },
            Inst::Halt,
        ];
        // Referenced label 1 does not exist in a 1-entry table.
        assert!(Program::from_parts(insts.clone(), vec![0], 1).is_none());
        // Label target beyond one-past-the-end.
        assert!(Program::from_parts(insts.clone(), vec![0, 9], 1).is_none());
        // Register outside the declared file.
        let wide = vec![Inst::Li { rd: Reg(5), imm: 0 }];
        assert!(Program::from_parts(wide.clone(), vec![], 2).is_none());
        assert!(Program::from_parts(wide, vec![], 6).is_some());
        // A zero-register program is impossible (reg_count >= 1).
        assert!(Program::from_parts(vec![Inst::Halt], vec![], 0).is_none());
    }
}
