//! Execution timelines: the simulated counterpart of the paper's Figure 2.
//!
//! The machine can record what the host and the accelerator are doing each
//! cycle; rendering the two lanes side by side makes configuration overhead
//! visible exactly as in the paper's timeline illustration — and shows it
//! disappearing once the optimizations are applied.

use crate::timing::FreqState;
use std::fmt;

/// What a lane is doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Host: ordinary computation (the paper's `E`).
    Calc,
    /// Host: configuring the accelerator (the paper's `C`).
    Config,
    /// Host: stalled waiting for the accelerator.
    Stall,
    /// Accelerator: executing a macro-operation.
    Busy,
}

impl Activity {
    /// One-character rendering.
    pub fn glyph(self) -> char {
        match self {
            Activity::Calc => 'E',
            Activity::Config => 'C',
            Activity::Stall => '.',
            Activity::Busy => '#',
        }
    }
}

/// A half-open `[start, end)` span of one activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First cycle of the span.
    pub start: u64,
    /// First cycle past the span.
    pub end: u64,
    /// What was happening.
    pub activity: Activity,
}

/// A point annotation the timing model attaches to the timeline: where
/// contention stretched an instruction, and which frequency state a
/// launch ran at. Annotations never change the lanes — they explain them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annotation {
    /// The cycle the annotated event started at.
    pub cycle: u64,
    /// What happened.
    pub kind: AnnotationKind,
}

/// The kinds of timing annotation a run can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationKind {
    /// Host traffic contended with accelerator tile streams: the
    /// instruction paid `extra_cycles` beyond its table cost.
    Contention {
        /// Extra host cycles charged by the shared-bandwidth model.
        extra_cycles: u64,
    },
    /// A launch ran at this DVFS frequency state.
    Frequency {
        /// The state the launch's compute was clocked at.
        state: FreqState,
    },
}

/// Recorded host and accelerator activity of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Host lane spans, in time order.
    pub host: Vec<Span>,
    /// Accelerator lane spans, in time order.
    pub accel: Vec<Span>,
    /// Timing-model annotations (contention, frequency states), in time
    /// order. Empty under the identity timing model.
    pub annotations: Vec<Annotation>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(lane: &mut Vec<Span>, start: u64, end: u64, activity: Activity) {
        if end <= start {
            return;
        }
        if let Some(last) = lane.last_mut() {
            if last.activity == activity && last.end == start {
                last.end = end;
                return;
            }
        }
        lane.push(Span {
            start,
            end,
            activity,
        });
    }

    /// Records host activity over `[start, end)`, merging adjacent spans.
    pub fn record_host(&mut self, start: u64, end: u64, activity: Activity) {
        Self::push(&mut self.host, start, end, activity);
    }

    /// Records accelerator business over `[start, end)`.
    pub fn record_accel(&mut self, start: u64, end: u64) {
        Self::push(&mut self.accel, start, end, Activity::Busy);
    }

    /// Extends the most recent accelerator span to `new_end` — how the
    /// contention model stretches an in-flight busy window after it was
    /// recorded at launch. A no-op when nothing is recorded or the window
    /// already reaches `new_end`.
    pub fn extend_accel(&mut self, new_end: u64) {
        if let Some(last) = self.accel.last_mut() {
            last.end = last.end.max(new_end);
        }
    }

    /// Records a contention event: `extra_cycles` charged on top of the
    /// instruction that started at `cycle`.
    pub fn annotate_contention(&mut self, cycle: u64, extra_cycles: u64) {
        if extra_cycles > 0 {
            self.annotations.push(Annotation {
                cycle,
                kind: AnnotationKind::Contention { extra_cycles },
            });
        }
    }

    /// Records the frequency state of a launch issued at `cycle`.
    pub fn annotate_frequency(&mut self, cycle: u64, state: FreqState) {
        self.annotations.push(Annotation {
            cycle,
            kind: AnnotationKind::Frequency { state },
        });
    }

    /// Total extra host cycles recorded in contention annotations.
    pub fn contention_cycles(&self) -> u64 {
        self.annotations
            .iter()
            .map(|a| match a.kind {
                AnnotationKind::Contention { extra_cycles } => extra_cycles,
                AnnotationKind::Frequency { .. } => 0,
            })
            .sum()
    }

    /// The last recorded cycle.
    pub fn end(&self) -> u64 {
        self.host
            .last()
            .map(|s| s.end)
            .into_iter()
            .chain(self.accel.last().map(|s| s.end))
            .max()
            .unwrap_or(0)
    }

    /// Cycles during which the lane shows the given activity.
    pub fn cycles_of(&self, activity: Activity) -> u64 {
        let lane = if activity == Activity::Busy {
            &self.accel
        } else {
            &self.host
        };
        lane.iter()
            .filter(|s| s.activity == activity)
            .map(|s| s.end - s.start)
            .sum()
    }

    fn render_lane(lane: &[Span], total: u64, width: usize) -> String {
        let mut row = vec![' '; width];
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            // dominant activity inside this bucket
            let from = (col as u64 * total) / width as u64;
            let to = (((col + 1) as u64 * total) / width as u64).max(from + 1);
            let mut best: Option<(u64, Activity)> = None;
            for s in lane {
                let overlap = s.end.min(to).saturating_sub(s.start.max(from));
                if overlap > 0 {
                    let better = match best {
                        Some((b, _)) => overlap > b,
                        None => true,
                    };
                    if better {
                        best = Some((overlap, s.activity));
                    }
                }
            }
            row[col] = best.map_or(' ', |(_, a)| a.glyph());
        }
        row.into_iter().collect()
    }

    /// Renders both lanes, Figure 2-style.
    pub fn render(&self, width: usize) -> String {
        let total = self.end().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "Host  |{}|\n",
            Self::render_lane(&self.host, total, width)
        ));
        out.push_str(&format!(
            "Accel |{}|\n",
            Self::render_lane(&self.accel, total, width)
        ));
        out.push_str(&format!(
            "       0{:>width$}\n",
            format!("{total} cycles"),
            width = width - 1
        ));
        out
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(72))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge_when_adjacent() {
        let mut t = Timeline::new();
        t.record_host(0, 5, Activity::Calc);
        t.record_host(5, 9, Activity::Calc);
        t.record_host(9, 12, Activity::Config);
        assert_eq!(t.host.len(), 2);
        assert_eq!(t.host[0].end, 9);
        assert_eq!(t.cycles_of(Activity::Calc), 9);
        assert_eq!(t.cycles_of(Activity::Config), 3);
    }

    #[test]
    fn empty_spans_dropped() {
        let mut t = Timeline::new();
        t.record_host(5, 5, Activity::Calc);
        assert!(t.host.is_empty());
        assert_eq!(t.end(), 0);
    }

    #[test]
    fn render_shows_all_activities() {
        let mut t = Timeline::new();
        t.record_host(0, 10, Activity::Calc);
        t.record_host(10, 20, Activity::Config);
        t.record_host(20, 40, Activity::Stall);
        t.record_accel(20, 40);
        let text = t.render(40);
        assert!(text.contains('E'), "{text}");
        assert!(text.contains('C'), "{text}");
        assert!(text.contains('.'), "{text}");
        assert!(text.contains('#'), "{text}");
        assert!(text.contains("40 cycles"), "{text}");
    }

    #[test]
    fn accel_lane_tracks_busy_cycles() {
        let mut t = Timeline::new();
        t.record_accel(10, 30);
        t.record_accel(50, 60);
        assert_eq!(t.cycles_of(Activity::Busy), 30);
        assert_eq!(t.end(), 60);
    }
}
