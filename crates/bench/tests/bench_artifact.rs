//! The committed `BENCH_runtime.json` artifact must stay strict JSON —
//! every downstream consumer (plots, dashboards, the paper tables) parses
//! it with an ordinary JSON parser, and the file is hand-rendered.

#[test]
fn committed_bench_runtime_json_is_strict_json() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_runtime.json exists");
    accfg_bench::json::validate(&text).expect("committed BENCH_runtime.json is strict JSON");
    // and it reports the streams the serving benchmark promises
    for stream in ["mixed", "shape_heavy", "bursty", "closed_loop"] {
        assert!(text.contains(&format!("\"{stream}\"")), "missing {stream}");
    }
}
