//! Integration tests for the deterministic serving-knob autotuner
//! (`accfg_bench::tune` + the `autotune` binary's committed artifact):
//!
//! - **Determinism**: the same stream, space, and options produce a
//!   byte-identical tuned table — the property that lets CI re-run the
//!   tuner and `cmp` `TUNED.json`.
//! - **Winner preservation** (the racing oracle property): capped-run
//!   racing aborts losers early but returns exactly the winner a
//!   full-length evaluation of every candidate returns. This is the
//!   correctness claim that makes the LeapsAndBounds-style phase safe.
//! - **Artifact consistency**: the committed `TUNED.json` parses, names
//!   the promised seed and held-out streams, and its tuned rows never
//!   regress their recorded defaults.
//!
//! Evaluation serves here use small request counts: the properties under
//! test are scale-independent, and these tests run unoptimized.

use accfg_bench::streams;
use accfg_bench::tune::{
    evaluate, knob_space, parse_table, render_table, tune_stream, Eval, KnobConfig, StreamEntry,
    TuneOptions,
};
use accfg_runtime::Policy;

/// A trimmed core grid (no 512-cycle horizon, no uncapped-cutoff points,
/// no round-robin rows) — the search shape is the same, the evaluations
/// are fewer, which is what an unoptimized test build wants.
fn small_space() -> Vec<KnobConfig> {
    knob_space(false)
        .into_iter()
        .filter(|k| {
            k.load_slack != 512 && k.batch_cutoff.is_some() && k.policy != Policy::FifoElide
        })
        .collect()
}

#[test]
fn tuning_is_deterministic_to_the_byte() {
    let stream = streams::mixed_stream(400);
    let pool = streams::uniform_pool();
    let space = small_space();
    let opts = TuneOptions {
        refine_rounds: 1,
        racing: true,
    };
    let entry = |label: &str| {
        let r = tune_stream(label, &pool, &stream, &space, &opts);
        StreamEntry {
            name: r.stream.clone(),
            role: "seed",
            source: "search".to_string(),
            knobs: r.knobs,
            default: r.default_objective,
            tuned: r.objective,
            evaluations: r.evaluations,
            aborts: r.aborts,
        }
    };
    let first = render_table(400, &opts, &[entry("mixed")]);
    let second = render_table(400, &opts, &[entry("mixed")]);
    assert_eq!(
        first, second,
        "two identical tuning runs must agree byte-for-byte"
    );
    // and the table round-trips into the knobs serve_bench --tuned needs
    let rows = parse_table(&first).expect("rendered table parses");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].0, "mixed");
}

#[test]
fn capped_racing_preserves_the_full_evaluation_winner() {
    let stream = streams::mixed_stream(400);
    let pool = streams::uniform_pool();
    let space = small_space();
    let racing = tune_stream(
        "mixed",
        &pool,
        &stream,
        &space,
        &TuneOptions {
            refine_rounds: 1,
            racing: true,
        },
    );
    let full = tune_stream(
        "mixed",
        &pool,
        &stream,
        &space,
        &TuneOptions {
            refine_rounds: 1,
            racing: false,
        },
    );
    // the oracle property: aborting provably-losing candidates early
    // changes the work done, never the winner
    assert_eq!(racing.knobs, full.knobs, "racing changed the winning knobs");
    assert_eq!(
        racing.objective, full.objective,
        "racing changed the winning objective"
    );
    assert_eq!(racing.improved, full.improved);
    assert_eq!(racing.default_objective, full.default_objective);
    // both modes attempt the same candidate set
    assert_eq!(racing.evaluations, full.evaluations);
    // and the capped run actually raced: at least one loser was cut
    // short, while the full run never aborts anything
    assert!(racing.aborts > 0, "no candidate was cut short at all");
    assert_eq!(full.aborts, 0, "uncapped runs cannot abort");
    // the reported winner objective is real: re-serving the winning
    // knobs uncapped reproduces it exactly
    assert_eq!(
        evaluate(&pool, &stream, &racing.knobs, None),
        Eval::Complete(racing.objective)
    );
}

#[test]
fn committed_tuned_table_is_consistent() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TUNED.json");
    let text = std::fs::read_to_string(path).expect("committed TUNED.json exists");
    accfg_bench::json::validate(&text).expect("committed TUNED.json is strict JSON");
    let rows = parse_table(&text).expect("committed TUNED.json parses");
    for name in ["mixed", "bursty", "contention", "hetero"] {
        assert!(
            rows.iter().any(|(n, _)| n == name),
            "committed TUNED.json is missing stream `{name}`"
        );
    }
    // the tuned rows must never regress their recorded defaults
    let doc = accfg_bench::json::parse(&text).expect("parses");
    let streams_obj = doc.get("streams").and_then(|s| s.entries()).unwrap();
    let mut improved = 0usize;
    for (name, entry) in streams_obj {
        let metric = |section: &str, key: &str| {
            entry
                .get(section)
                .and_then(|o| o.get(key))
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| panic!("{name}: missing {section}.{key}"))
        };
        let (dp99, dwr) = (metric("default", "p99"), metric("default", "setup_writes"));
        let (tp99, twr) = (metric("tuned", "p99"), metric("tuned", "setup_writes"));
        assert!(
            tp99 <= dp99 && twr <= dwr,
            "{name}: tuned row regresses the default (p99 {dp99}->{tp99}, writes {dwr}->{twr})"
        );
        if tp99 < dp99 || twr < dwr {
            improved += 1;
        }
    }
    assert!(
        improved >= 1,
        "TUNED.json pins no stream where the tuned config strictly beats the default"
    );
}
