//! Criterion benches for the simulator substrate: end-to-end co-simulation
//! throughput, and the host-CPI sensitivity ablation.
use accfg::pipeline::OptLevel;
use accfg::AccelFilter;
use accfg_sim::{AccelSim, HostModel, Machine};
use accfg_targets::{compile, AcceleratorDescriptor};
use accfg_workloads::{fill_inputs, matmul_ir, MatmulLayout, MatmulSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn prepared_program(
    desc: &AcceleratorDescriptor,
    size: i64,
) -> (accfg_sim::Program, MatmulSpec, MatmulLayout) {
    let spec = MatmulSpec::opengemm_paper(size).unwrap();
    let mut m = matmul_ir(desc, &spec);
    accfg::pipeline::pipeline(OptLevel::All, AccelFilter::All)
        .run(&mut m)
        .unwrap();
    let layout = MatmulLayout::at(0x1000, &spec);
    let prog = compile(&m, "matmul", desc, &[layout.a_addr, layout.b_addr, layout.c_addr]).unwrap();
    (prog, spec, layout)
}

fn bench_cosimulation(c: &mut Criterion) {
    let desc = AcceleratorDescriptor::opengemm();
    let mut group = c.benchmark_group("cosimulation");
    for size in [16i64, 32, 64] {
        let (prog, spec, layout) = prepared_program(&desc, size);
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter_batched(
                || {
                    let mut machine = Machine::new(
                        desc.host.clone(),
                        AccelSim::new(desc.accel.clone()),
                        layout.end as usize,
                    );
                    fill_inputs(&mut machine.mem, &spec, &layout, 7).unwrap();
                    machine
                },
                |mut machine| machine.run(&prog, 100_000_000).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Host-CPI sensitivity (extension): the effective configuration bandwidth
/// of the Gemmini platform scales inversely with host CPI, so a slower host
/// pushes the knee right. This bench records the cycle totals per CPI.
fn bench_cpi_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_cpi_sensitivity");
    for cpi in [1u64, 3, 5] {
        let mut desc = AcceleratorDescriptor::gemmini();
        desc.host = HostModel {
            name: format!("rocket-cpi{cpi}"),
            alu: cpi,
            li: cpi,
            mem: cpi,
            branch: cpi,
            jump: cpi,
            csr_write: cpi,
            rocc: cpi,
            launch: cpi,
            poll: cpi,
        };
        let spec = MatmulSpec::gemmini_paper(64).unwrap();
        let mut module = accfg_workloads::gemmini_ws_ir(&desc, &spec);
        accfg::pipeline::pipeline(OptLevel::Dedup, AccelFilter::Only(vec![]))
            .run(&mut module)
            .unwrap();
        let layout = MatmulLayout::at(0x1000, &spec);
        let prog =
            compile(&module, "matmul", &desc, &[layout.a_addr, layout.b_addr, layout.c_addr])
                .unwrap();
        group.bench_function(BenchmarkId::from_parameter(cpi), |b| {
            b.iter_batched(
                || {
                    let mut machine = Machine::new(
                        desc.host.clone(),
                        AccelSim::new(desc.accel.clone()),
                        layout.end as usize,
                    );
                    fill_inputs(&mut machine.mem, &spec, &layout, 7).unwrap();
                    machine
                },
                |mut machine| machine.run(&prog, 100_000_000).unwrap(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cosimulation, bench_cpi_sensitivity);
criterion_main!(benches);
