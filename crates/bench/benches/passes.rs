//! Criterion benches for the compiler itself: how fast the accfg pass
//! pipeline processes tiled-matmul IR of growing size.
use accfg::pipeline::{pipeline, OptLevel};
use accfg::AccelFilter;
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{matmul_ir, tiled_collapsed_ir, MatmulSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipeline_levels(c: &mut Criterion) {
    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::opengemm_paper(64).unwrap();
    let mut group = c.benchmark_group("pipeline_levels");
    for level in [OptLevel::Base, OptLevel::Dedup, OptLevel::Overlap, OptLevel::All] {
        group.bench_function(BenchmarkId::from_parameter(level.label()), |b| {
            b.iter_batched(
                || matmul_ir(&desc, &spec),
                |mut m| {
                    pipeline(level, AccelFilter::All).run(&mut m).unwrap();
                    m
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_dedup_scaling(c: &mut Criterion) {
    // dedup's loop-entry fixpoint over growing collapsed loops
    let desc = AcceleratorDescriptor::opengemm();
    let mut group = c.benchmark_group("dedup_scaling");
    for size in [16i64, 32, 64] {
        let spec = MatmulSpec::opengemm_paper(size).unwrap();
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter_batched(
                || tiled_collapsed_ir(&desc, &spec),
                |mut m| {
                    pipeline(OptLevel::Dedup, AccelFilter::All).run(&mut m).unwrap();
                    m
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_levels, bench_dedup_scaling);
criterion_main!(benches);
