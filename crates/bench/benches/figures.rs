//! Criterion benches wrapping the figure experiments at reduced sizes, so
//! `cargo bench` exercises every table/figure path end-to-end:
//! Figure 10 (Gemmini Eq. 3 proxy), Figure 11/12 (OpenGeMM measured), and
//! the output-stationary extension the paper forecasts in §6.1.
use accfg::pipeline::OptLevel;
use accfg_bench::{measure, run_gemmini, run_opengemm, GemminiFlavor};
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{matmul_ir, MatmulSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig10_gemmini(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_gemmini");
    group.sample_size(10);
    for size in [32i64, 128] {
        for flavor in [GemminiFlavor::CBaseline, GemminiFlavor::Accfg] {
            group.bench_function(
                BenchmarkId::new(flavor.label().replace(' ', "_"), size),
                |b| b.iter(|| run_gemmini(size, flavor)),
            );
        }
    }
    group.finish();
}

fn bench_fig11_opengemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_opengemm");
    group.sample_size(10);
    for size in [16i64, 64] {
        for level in [OptLevel::Base, OptLevel::All] {
            group.bench_function(BenchmarkId::new(level.label(), size), |b| {
                b.iter(|| run_opengemm(size, level))
            });
        }
    }
    group.finish();
}

/// §6.1 extension: the output-stationary-style flow (accumulating k-tiles,
/// more per-invocation configuration) — the paper predicts larger dedup
/// gains than the WS flow shows.
fn bench_output_stationary_extension(c: &mut Criterion) {
    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::new((32, 32, 32), (8, 8, 8)).unwrap();
    let mut group = c.benchmark_group("output_stationary_extension");
    group.sample_size(10);
    for level in [OptLevel::Base, OptLevel::Dedup, OptLevel::All] {
        group.bench_function(BenchmarkId::from_parameter(level.label()), |b| {
            b.iter(|| measure(&desc, &spec, matmul_ir(&desc, &spec), Some(level), level.label()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig10_gemmini,
    bench_fig11_opengemm,
    bench_output_stationary_extension
);
criterion_main!(benches);
