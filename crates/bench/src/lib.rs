//! # accfg-bench: experiment harnesses for every table and figure
//!
//! Shared machinery for the binaries that regenerate the paper's evaluation
//! (Section 6): build a workload, run a pass pipeline, lower it, simulate
//! it cycle-accurately, functionally check the result, and derive the
//! roofline quantities the paper plots.
//!
//! Binaries (run with `cargo run -p accfg-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 (gemmini_loop_ws field table) |
//! | `fig3_roofline` | Figure 3 (processor roofline) |
//! | `fig4_config_roofline` | Figure 4 (configuration roofline + regions) |
//! | `fig5_roofsurface` | Figure 5 (combined roofsurface) |
//! | `sec46_example` | Section 4.6 (Gemmini worked example) |
//! | `fig10_gemmini` | Figure 10 (Gemmini C vs accfg attainable perf) |
//! | `fig11_opengemm` | Figure 11 (OpenGeMM base vs optimized, measured) |
//! | `fig12_roofline_scatter` | Figure 12 (per-pass ablation on the roofline) |
//! | `make_experiments` | regenerates EXPERIMENTS.md from all of the above |
//! | `serve_bench` | the serving-runtime characterization (`BENCH_runtime.json`) |
//! | `microbench` | deterministic simulated-cycle micro-benchmarks (replaces the old criterion benches) |
//! | `autotune` | the deterministic serving-knob autotuner (`TUNED.json`) |

#![warn(missing_docs)]

pub mod csv;
pub mod json;
pub mod streams;
pub mod tune;

use accfg::pipeline::{pipeline, OptLevel};
use accfg_roofline::ConfigRoofline;
use accfg_sim::{AccelSim, Counters, Machine};
use accfg_targets::{compile, AcceleratorDescriptor};
use accfg_workloads::{
    check_result, fill_inputs, gemmini_ws_ir, matmul_ir, MatmulLayout, MatmulSpec,
};

/// One measured configuration point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Square matrix size.
    pub size: i64,
    /// Configuration label ("C", "accfg", "base", "dedup", ...).
    pub label: String,
    /// Raw simulator counters.
    pub counters: Counters,
    /// Total accelerator operations (2·m·n·k).
    pub ops: u64,
    /// Static instruction count of the compiled program.
    pub static_insts: usize,
}

impl Measurement {
    /// Measured performance in ops/cycle (the y-axis of Figures 11 and 12).
    pub fn perf(&self) -> f64 {
        self.counters.ops_per_cycle(self.ops)
    }

    /// Operation-to-configuration intensity I_OC in ops/byte.
    pub fn i_oc(&self) -> f64 {
        self.counters.operation_intensity(self.ops)
    }

    /// Effective configuration bandwidth (Equation 4) in bytes/cycle.
    pub fn bw_eff(&self) -> f64 {
        self.counters.effective_config_bandwidth()
    }

    /// The paper's Figure 10 y-axis: attainable performance from the
    /// sequential roofline (Equation 3) with the *effective* configuration
    /// bandwidth derived from the traced counters — exactly the proxy
    /// Section 6.1 describes.
    pub fn attainable_sequential(&self, peak: f64) -> f64 {
        let r = ConfigRoofline {
            peak,
            config_bandwidth: self.bw_eff(),
        };
        r.attainable_sequential(self.i_oc())
    }
}

/// Which compilation flow to measure on the Gemmini platform (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemminiFlavor {
    /// The C baseline: the volatile-inline-assembly sequence, pinned —
    /// no IR passes run at all.
    CBaseline,
    /// The accfg flow: generic cleanups + state tracing + hoisting +
    /// deduplication (overlap is impossible on sequential hardware).
    Accfg,
}

impl GemminiFlavor {
    /// Display label as in Figure 10's legend.
    pub fn label(self) -> &'static str {
        match self {
            GemminiFlavor::CBaseline => "C Gemmini",
            GemminiFlavor::Accfg => "accfg (ours)",
        }
    }
}

/// Builds, compiles, runs, and functionally checks one workload.
///
/// # Panics
/// Panics if any stage fails — harnesses want loud failures.
pub fn measure(
    desc: &AcceleratorDescriptor,
    spec: &MatmulSpec,
    mut module: accfg_ir::Module,
    level: Option<OptLevel>,
    label: impl Into<String>,
) -> Measurement {
    if let Some(level) = level {
        pipeline(level, desc.overlap_filter())
            .run(&mut module)
            .expect("pipeline runs");
    }
    let layout = MatmulLayout::at(0x1000, spec);
    let prog = compile(
        &module,
        "matmul",
        desc,
        &[layout.a_addr, layout.b_addr, layout.c_addr],
    )
    .expect("lowering succeeds");
    let mut machine = Machine::new(
        desc.host.clone(),
        AccelSim::new(desc.accel.clone()),
        layout.end as usize,
    );
    fill_inputs(&mut machine.mem, spec, &layout, 0x5EED + spec.m as u64).expect("inputs fit");
    let counters = machine.run(&prog, 1_000_000_000).expect("simulation");
    check_result(&machine.mem, spec, &layout).expect("functional result matches reference");
    Measurement {
        size: spec.m,
        label: label.into(),
        counters,
        ops: spec.total_ops() as u64,
        static_insts: prog.len(),
    }
}

/// Runs the Gemmini weight-stationary experiment of Figure 10 for one size
/// and flavor.
pub fn run_gemmini(size: i64, flavor: GemminiFlavor) -> Measurement {
    let desc = AcceleratorDescriptor::gemmini();
    let spec = MatmulSpec::gemmini_paper(size).expect("valid gemmini size");
    let module = gemmini_ws_ir(&desc, &spec);
    let (level, label) = match flavor {
        GemminiFlavor::CBaseline => (None, flavor.label()),
        GemminiFlavor::Accfg => (Some(OptLevel::Dedup), flavor.label()),
    };
    measure(&desc, &spec, module, level, label)
}

/// Runs the OpenGeMM tiled-matmul experiment of Figures 11/12 for one size
/// and optimization level.
pub fn run_opengemm(size: i64, level: OptLevel) -> Measurement {
    let desc = AcceleratorDescriptor::opengemm();
    let spec = MatmulSpec::opengemm_paper(size).expect("valid opengemm size");
    let module = matmul_ir(&desc, &spec);
    measure(&desc, &spec, module, Some(level), level.label())
}

/// Geometric mean.
///
/// # Panics
/// Panics on an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// The matrix sizes of Figure 10.
pub const FIG10_SIZES: [i64; 5] = [32, 64, 128, 256, 512];
/// The matrix sizes of Figures 11 and 12.
pub const FIG11_SIZES: [i64; 6] = [16, 32, 64, 128, 256, 512];
/// The matrix sizes plotted in Figure 12.
pub const FIG12_SIZES: [i64; 3] = [64, 128, 256];

/// Renders a simple aligned markdown table.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "| {} |", header.join(" | ")).unwrap();
    writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    )
    .unwrap();
    for row in rows {
        writeln!(out, "| {} |", row.join(" | ")).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gemmini_small_size_measures() {
        let c = run_gemmini(32, GemminiFlavor::CBaseline);
        let a = run_gemmini(32, GemminiFlavor::Accfg);
        assert_eq!(c.counters.launches, 1);
        assert_eq!(a.counters.launches, 1);
        // accfg folds the packing: fewer host cycles, higher attainable perf
        assert!(a.counters.host_cycles < c.counters.host_cycles);
        assert!(a.attainable_sequential(512.0) > c.attainable_sequential(512.0));
    }

    #[test]
    fn opengemm_small_size_measures() {
        let base = run_opengemm(16, OptLevel::Base);
        let all = run_opengemm(16, OptLevel::All);
        assert_eq!(base.counters.launches, 4);
        assert_eq!(all.counters.launches, 4);
        assert!(all.perf() > base.perf());
    }

    #[test]
    fn markdown_table_shapes() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
    }
}
