//! Reproduces Figure 5: the combined processor + configuration
//! "roofsurface" — which of the three planes limits performance across the
//! (I_operational, I_OC) space.
use accfg_roofline::{render_surface, Roofsurface};

fn main() {
    let s = Roofsurface {
        peak: 512.0,
        memory_bandwidth: 32.0,
        config_bandwidth: 16.0 / 9.0,
    };
    println!(
        "Figure 5: roofsurface (P_peak = {}, BW_mem = {}, BW_config = {:.2})\n",
        s.peak, s.memory_bandwidth, s.config_bandwidth
    );
    println!(
        "{}",
        render_surface(&s, (0.25, 4096.0), (1.0, 16384.0), 64, 20)
    );
    println!(
        "A system can be perfectly balanced in the processor roofline and\n\
         still be configuration bound: e.g. at I_op = 64, I_OC = 32:\n\
         memory allows {:.0}, compute allows {:.0}, but configuration\n\
         caps performance at {:.1} ops/cycle ({:?}).",
        s.memory_bandwidth * 64.0,
        s.peak,
        s.attainable(64.0, 32.0),
        s.limiting_factor(64.0, 32.0),
    );
}
