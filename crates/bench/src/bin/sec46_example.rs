//! Reproduces the worked example of Section 4.6: the configuration roofline
//! of Gemmini's output-stationary 64×64×64 matmul, first from the paper's
//! published trace numbers, then from our own simulated trace.
use accfg_bench::{run_gemmini, GemminiFlavor};
use accfg_roofline::{effective_config_bandwidth, ConfigRoofline};

fn main() {
    println!("Section 4.6: configuration roofline for Gemmini\n");

    // --- the paper's numbers, recomputed through our model ----------------
    let peak = 512.0;
    let bw_config = 16.0 / (3.0 * 3.0); // 16 B per RoCC, 3 instrs, 3 CPI
    let ops = 2.0 * 64.0 * 64.0 * 64.0; // the paper prints 525,288 (typo)
    let setup_instrs = 160.0;
    let calc_instrs = 775.0;
    let config_bytes = setup_instrs * 16.0;
    let i_oc = ops / config_bytes;

    println!("paper inputs: {ops} ops, {setup_instrs} setup instrs, {calc_instrs} calc instrs");
    println!("BW_config          = {bw_config:.3} B/cycle   (paper: 1.77)");
    println!("I_OC               = {i_oc:.2} ops/byte   (paper: 205.19, incl. its ops typo)");

    let r = ConfigRoofline {
        peak,
        config_bandwidth: bw_config,
    };
    let util = 100.0 * r.utilization_sequential(i_oc);
    println!("Eq. 3 utilization  = {util:.2} %        (paper: 41.49 %)");

    let bw_eff = effective_config_bandwidth(config_bytes, calc_instrs * 3.0, setup_instrs * 3.0);
    let r_eff = ConfigRoofline {
        peak,
        config_bandwidth: bw_eff,
    };
    let util_eff = 100.0 * r_eff.utilization_sequential(i_oc);
    println!("BW_config,eff      = {bw_eff:.3} B/cycle   (paper: 0.913)");
    println!("Eq. 3 (effective)  = {util_eff:.2} %        (paper: 26.78 %)");

    // --- the same quantities traced from our simulator --------------------
    println!("\nsimulated 64-wide strip (weight-stationary, C baseline):");
    let m = run_gemmini(64, GemminiFlavor::CBaseline);
    println!(
        "  {} setup instrs, {} calc instrs, {} config bytes",
        m.counters.insts_config, m.counters.insts_calc, m.counters.config_bytes
    );
    println!(
        "  I_OC = {:.2} ops/byte, BW_eff = {:.3} B/cycle, attainable = {:.1} ops/cycle ({:.1} % of peak)",
        m.i_oc(),
        m.bw_eff(),
        m.attainable_sequential(peak),
        100.0 * m.attainable_sequential(peak) / peak,
    );
}
