//! Serving benchmark for the `accfg-runtime` dispatch layer: throughput,
//! latency, and configuration-write savings of the scheduling policies
//! across arrival processes, shape mixes, and pool provisioning — over
//! both evaluation platforms and their heterogeneous variants.
//!
//! Policies:
//!
//! - `fifo` — the production baseline: round-robin routing, every dispatch
//!   reprograms its full configuration;
//! - `fifo+elide` — round-robin routing with resident-state elision
//!   (isolates the value of cross-request state tracking);
//! - `fifo+elide+batch` — the above plus adjacent same-shape batching
//!   (batching's clearest win: it overrides round-robin scattering);
//! - `affinity` — config-affinity routing (queue-depth-aware, in
//!   estimated outstanding cycles) plus elision;
//! - `affinity+batch` — affinity with batching;
//! - `cost` — cycle-cost routing: minimize refined predicted cycles to
//!   completion over per-platform cost models, the policy heterogeneous
//!   pools need;
//! - `thermal` — frequency-aware cycle-cost routing: each candidate is
//!   priced at the DVFS mode the scheduler's shadow automaton predicts
//!   for it (frequency-keyed EWMA rows, agnostic fallback while cold),
//!   plus the contention penalty of pushing the dispatch's config
//!   traffic into a busy window; ties prefer the hotter worker, so
//!   boost residency concentrates instead of scattering. Identical to
//!   `cost` on identity-timing pools — it earns its keep on the
//!   `contention` stream.
//!
//! Streams:
//!
//! - `mixed` — the canonical six-shape open-loop mix (routing and balance
//!   both matter);
//! - `shape_heavy` — sixteen shapes over four workers: no static
//!   partition keeps every worker warm, so the routing term dominates;
//! - `bursty` — on/off arrivals that build deep queues, the worst case
//!   for sticky routing's tail latency;
//! - `closed_loop` — a fixed client population, self-limiting arrivals
//!   driven by a static per-request service estimate;
//! - `closed_loop_measured` — the same population, but each client's
//!   feedback uses the *measured* mean service time of its request's
//!   class (from a `fifo+elide` calibration serve of the static stream),
//!   so heavy shapes hold their clients proportionally longer;
//! - `hetero` — the mixed-platform mix served by a *heterogeneous* pool:
//!   each family pairs its base platform with a differently provisioned
//!   variant (`gemmini`+`gemmini-turbo`, `opengemm`+`opengemm-lite`),
//!   where write-count affinity scoring is blind to provisioning and
//!   cycle-cost routing earns its keep.
//!
//! - `contention` — the canonical mix at a tighter arrival gap, served
//!   by a pool whose platforms run their *reference timing models*
//!   (shared memory-bandwidth contention + DVFS frequency states,
//!   [`AcceleratorDescriptor::with_reference_timing`]): dispatch cost is
//!   no longer write-linear, the analytic anchors go wrong under load,
//!   and the per-(module, warmth) EWMA has a real gap to close — the
//!   stream that exercises the refiner (and the `cost` policy's cycle
//!   predictions) hardest. Its report rows carry the extra `timing`
//!   object (contention cycles, launches per frequency state).
//!
//! Writes the raw per-stream, per-policy metrics to `BENCH_runtime.json`
//! (validated as strict JSON before the file lands). Each stream object
//! opens with a `static_analysis` summary — `accfg-analyze`'s lint
//! counts and static elidable-write lower bound over the stream's raw
//! per-class modules, weighted by request count — ahead of the
//! per-policy sections, whose bytes it leaves untouched. Pass
//! `--requests <n>` for a reduced smoke run, `--out <path>` to write the
//! report elsewhere (CI uses both to avoid clobbering the committed
//! artifact), `--policies <a,b,...>` to exercise a subset of the policy
//! labels without paying for all of them, `--streams <a,b,...>` to
//! serve a subset of the stream names the same way (CI's thermal smoke
//! runs `--policies thermal --streams contention`), and
//! `--slack <cycles>` to sweep the load-slack horizon (sets both
//! `load_slack` and the batch cutoff, via
//! [`ServeConfig::with_load_slack`]) without recompiling.
//! `--batch-cutoff <cycles|none>` decouples the cutoff from the horizon:
//! it overrides the queue-depth cutoff for every policy row (`none`
//! disables the cap, i.e. uncapped coalescing) while `--slack` keeps
//! governing the routing horizon alone.
//!
//! `--tuned <TUNED.json>` replays the `autotune` binary's winning knob
//! configurations: every stream named in the table gains a `tuned` row —
//! served on a fresh runtime built from the tuned pool knobs (power cap,
//! DVFS variant) with the tuned `ServeConfig` knobs (policy, slack,
//! cutoff, batch) — next to the stock policy rows, so the tuned-vs-default
//! comparison lands in the same report. Like every non-default invocation
//! it refuses to write the committed artifact.
//!
//! `--mode` selects the serve engine and what the binary measures:
//!
//! - `sim` (the default) — the deterministic simulated-clock oracle;
//!   the only mode the committed artifact is generated from;
//! - `wall` — the same streams served by the *parallel* engine
//!   (`--threads <n>`, default 8 executor threads), with each stream's
//!   report object gaining an `engine` section recording wall-clock
//!   milliseconds and requests/sec of the runtime itself (not the
//!   simulated hardware) per policy. The simulated-cycle bars are
//!   byte-identical to `sim` — the parallel engine's contract — so the
//!   `engine` object is strictly additive;
//! - `diff` — the differential smoke: every stream × policy pair served
//!   by both engines, asserting per-request outcome equality (the same
//!   contract `tests/differential.rs` pins), then a small JSON summary.
//!
//! Non-`sim` modes never write the committed artifact: they require an
//! `--out` whose file name differs from `BENCH_runtime.json`.
//!
//! `--store <path>` switches the binary into the *warm-start* mode: the
//! `contention` stream is served twice against the given persistent
//! store — a cold pass into a fresh runtime that flushes its compiled
//! modules and learned EWMA state, then a warm pass into another fresh
//! runtime that restores them — and the report (a `warm_start` section
//! with the cold and warm metric rows) quantifies what persistence
//! saves: zero compile builds and converged cycle predictions from the
//! first request. The store file survives the run, so a second
//! invocation against the same path starts warm in its first pass —
//! that is the cross-process warm start the CI smoke checks.

use accfg_analyze::{lint_module, LintKind};
use accfg_bench::tune::{parse_table, KnobConfig};
use accfg_bench::{json, markdown_table, streams};
use accfg_runtime::{
    measured_class_service_times, Policy, PoolConfig, Runtime, ServeConfig, ServeMetrics,
    ServeMode, LOAD_SLACK_CYCLES,
};
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{matmul_ir, MatmulSpec, TrafficRequest};

const DEFAULT_REQUESTS: usize = 12_000;
const DEFAULT_THREADS: usize = 8;

/// Every stream name the sim/wall/diff modes can serve, in report order —
/// the vocabulary `--streams` validates against.
const STREAM_NAMES: [&str; 7] = [
    "mixed",
    "shape_heavy",
    "bursty",
    "closed_loop",
    "closed_loop_measured",
    "hetero",
    "contention",
];

/// Whether `--streams` (when given) selects this stream name.
fn stream_selected(filter: Option<&[String]>, name: &str) -> bool {
    filter.is_none_or(|f| f.iter().any(|s| s == name))
}

/// What the binary measures (`--mode`).
#[derive(Clone, Copy, PartialEq)]
enum BenchMode {
    /// Simulated-cycle bars from the deterministic oracle (the default;
    /// the only mode the committed artifact is generated from).
    Sim,
    /// The same bars served by the parallel engine, plus wall-clock
    /// requests/sec of the runtime itself per stream and policy.
    Wall,
    /// Differential smoke: every stream × policy pair through both
    /// engines, asserting per-request outcome equality.
    Diff,
}

fn policies(
    include_batch: bool,
    slack: u64,
    cutoff: Option<Option<u64>>,
) -> Vec<(&'static str, ServeConfig)> {
    // with_load_slack keeps the cutoff pinned to the horizon; an explicit
    // --batch-cutoff decouples them for every policy row
    let slacked = ServeConfig::default().with_load_slack(slack);
    let slacked = ServeConfig {
        batch_cutoff: cutoff.unwrap_or(slacked.batch_cutoff),
        ..slacked
    };
    let base = |policy| ServeConfig {
        policy,
        ..slacked.clone()
    };
    let batched = |policy| ServeConfig {
        policy,
        max_batch: 8,
        ..slacked.clone()
    };
    let mut out = vec![
        ("fifo", base(Policy::Fifo)),
        ("fifo+elide", base(Policy::FifoElide)),
    ];
    if include_batch {
        out.push(("fifo+elide+batch", batched(Policy::FifoElide)));
    }
    out.push(("affinity", base(Policy::ConfigAffinity)));
    if include_batch {
        out.push(("affinity+batch", batched(Policy::ConfigAffinity)));
    }
    out.push(("cost", base(Policy::Cost)));
    out.push(("thermal", base(Policy::Thermal)));
    out
}

fn uniform_streams(requests: usize) -> Vec<(&'static str, Vec<TrafficRequest>, bool)> {
    let closed_loop = streams::closed_loop_config(requests)
        .stream()
        .expect("valid closed-loop mix");
    // the batch variants only on the canonical mix: they change placement,
    // not the routing-vs-balance story the extra streams characterize
    vec![
        ("mixed", streams::mixed_stream(requests), true),
        ("shape_heavy", streams::shape_heavy_stream(requests), false),
        ("bursty", streams::bursty_stream(requests), false),
        ("closed_loop", closed_loop, false),
    ]
}

/// One policy's measurements over a stream: label, the (deterministic)
/// serve metrics, and the wall-clock seconds the serve itself took —
/// the runtime's own speed, only reported in wall mode.
type PolicyRow = (String, ServeMetrics, f64);

/// Runs every (selected) policy over one stream and prints its table.
/// A stream deselected by `--streams` serves nothing and returns no
/// rows, so the caller drops its report section entirely. With `tuned`
/// (from `--tuned`), a `tuned` row joins the table: the tuned knobs
/// served on a fresh runtime over the tuned pool.
#[allow(clippy::too_many_arguments)]
fn run_stream(
    runtime: &mut Runtime,
    stream_name: &str,
    stream: &[TrafficRequest],
    include_batch: bool,
    filter: Option<&[String]>,
    streams: Option<&[String]>,
    slack: u64,
    cutoff: Option<Option<u64>>,
    serve_mode: ServeMode,
    tuned: Option<(KnobConfig, PoolConfig)>,
) -> Vec<PolicyRow> {
    let mut results: Vec<PolicyRow> = Vec::new();
    if !stream_selected(streams, stream_name) {
        return results;
    }
    for (label, cfg) in &policies(include_batch, slack, cutoff) {
        if let Some(filter) = filter {
            if !filter.iter().any(|f| f == label) {
                continue;
            }
        }
        let cfg = ServeConfig {
            mode: serve_mode,
            ..cfg.clone()
        };
        let started = std::time::Instant::now();
        let report = runtime.serve(stream, &cfg).expect("serve succeeds");
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(
            report.metrics.check_failures, 0,
            "{stream_name}/{label}: functional checks failed"
        );
        assert_eq!(
            report.metrics.sim_failures, 0,
            "{stream_name}/{label}: simulation failed"
        );
        results.push((label.to_string(), report.metrics, wall));
    }
    if let Some((knobs, base_pool)) = &tuned {
        // the tuned knobs span the pool too (power cap, DVFS variant), so
        // the row gets its own runtime over the tuned pool — a policy
        // filter never hides it: replaying the table is the row's point
        let mut tuned_runtime = Runtime::new(knobs.apply_pool(base_pool));
        let cfg = ServeConfig {
            mode: serve_mode,
            ..knobs.serve_config()
        };
        let started = std::time::Instant::now();
        let report = tuned_runtime.serve(stream, &cfg).expect("serve succeeds");
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(
            report.metrics.check_failures, 0,
            "{stream_name}/tuned: functional checks failed"
        );
        assert_eq!(
            report.metrics.sim_failures, 0,
            "{stream_name}/tuned: simulation failed"
        );
        results.push(("tuned".to_string(), report.metrics, wall));
    }
    if results.is_empty() {
        // e.g. --policies affinity+batch on a stream that runs no batch
        // variants: nothing to measure here, the caller skips the stream
        println!("== {stream_name} == (skipped: no selected policy applies)\n");
        return results;
    }

    let find = |label: &str| {
        results
            .iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, m, _)| m)
    };
    let fifo = find("fifo").cloned();
    let elide_p99 = find("fifo+elide").map(|m| m.latency.p99);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, m, _)| {
            vec![
                label.clone(),
                m.setup_writes.to_string(),
                fifo.as_ref()
                    .map(|f| format!("{:.1}%", 100.0 * m.write_savings_vs(f)))
                    .unwrap_or_else(|| "-".into()),
                m.makespan.to_string(),
                format!("{:.1}", m.throughput_per_mcycle()),
                m.latency.p50.to_string(),
                m.latency.p99.to_string(),
                elide_p99
                    .map(|e| format!("{:.2}", m.latency.p99 as f64 / e.max(1) as f64))
                    .unwrap_or_else(|| "-".into()),
                m.queue_depth.max.to_string(),
                format!("{:.1}", m.prediction.anchor_mae()),
                format!("{:.1}", m.prediction.ewma_mae()),
                m.contention_cycles.to_string(),
                format!(
                    "{}/{}/{}",
                    m.freq_launches[0], m.freq_launches[1], m.freq_launches[2]
                ),
            ]
        })
        .collect();
    println!("== {stream_name} ==");
    print!(
        "{}",
        markdown_table(
            &[
                "policy",
                "setup writes",
                "saved vs fifo",
                "makespan (cyc)",
                "req/Mcycle",
                "p50 lat",
                "p99 lat",
                "p99 / elide p99",
                "max qdepth",
                "anchor MAE",
                "ewma MAE",
                "cont cyc",
                "freq c/w/b",
            ],
            &rows,
        )
    );

    // the refined estimates must not be worse than the static anchors on
    // the dispatches the scheduler actually charged for
    for (label, m, _) in results.iter().filter(|(_, m, _)| m.prediction.samples > 0) {
        assert!(
            m.prediction.ewma_abs_error <= m.prediction.anchor_abs_error,
            "{stream_name}/{label}: ewma MAE {:.1} > anchor MAE {:.1}",
            m.prediction.ewma_mae(),
            m.prediction.anchor_mae()
        );
    }
    if let Some(fifo) = &fifo {
        // elision guarantees the resident-aware policies never write more
        // than the cold baseline
        for label in ["affinity", "cost", "thermal"] {
            if let Some(m) = find(label) {
                assert!(
                    m.setup_writes <= fifo.setup_writes,
                    "{stream_name}: {label} wrote more than fifo"
                );
            }
        }
        if let (Some(affinity), Some(elide_p99)) = (find("affinity"), elide_p99) {
            println!(
                "affinity: {:.1}% fewer setup writes than fifo, p99 {:.2}x fifo+elide",
                100.0 * affinity.write_savings_vs(fifo),
                affinity.latency.p99 as f64 / elide_p99.max(1) as f64,
            );
        }
    }
    println!();
    results
}

/// Wall mode's per-policy requests/sec of the runtime itself. The serve
/// outcomes are engine-independent, so this is pure added information on
/// top of the simulated-cycle bars.
fn report_wall(stream_name: &str, results: &[PolicyRow], threads: usize) {
    for (label, m, wall) in results {
        let rps = m.requests as f64 / wall.max(f64::MIN_POSITIVE);
        assert!(
            rps > 0.0,
            "{stream_name}/{label}: wall-clock throughput must be positive"
        );
        println!(
            "{stream_name}/{label}: {:.1} ms wall ({threads} threads), \
             {rps:.0} requests/sec",
            wall * 1e3
        );
    }
    println!();
}

/// The wall-mode `engine` JSON object for one stream: wall-clock
/// milliseconds and requests/sec per policy, at the executor thread count
/// the run used. Emitted as a single report line so the per-policy metric
/// sections below keep their exact deterministic-mode bytes.
fn engine_json(results: &[PolicyRow], threads: usize) -> String {
    let policies: Vec<String> = results
        .iter()
        .map(|(label, m, wall)| {
            let wall = wall.max(f64::MIN_POSITIVE);
            format!(
                "\"{label}\": {{\"wall_ms\": {:.3}, \"requests_per_sec\": {:.1}}}",
                wall * 1e3,
                m.requests as f64 / wall
            )
        })
        .collect();
    format!(
        "{{\"mode\": \"wall\", \"threads\": {threads}, \"policies\": {{{}}}}}",
        policies.join(", ")
    )
}

/// The differential smoke (`--mode diff`): every stream × policy pair
/// served by both engines — a fresh runtime per engine, so module-cache
/// provenance matches too — asserting the per-request outcomes (routing,
/// writes, cycles, latencies, prediction samples) are identical, then a
/// small JSON summary. This is the same contract `tests/differential.rs`
/// pins; the binary form exists so CI can run it at an arbitrary request
/// count and thread count without recompiling tests.
fn run_diff(
    requests: usize,
    threads: usize,
    out_path: &str,
    slack: u64,
    cutoff: Option<Option<u64>>,
    filter: Option<&[String]>,
    stream_filter: Option<&[String]>,
) {
    let mut pairs_under_test: Vec<(&'static str, Vec<TrafficRequest>, bool, PoolConfig)> =
        uniform_streams(requests)
            .into_iter()
            .filter(|(name, _, _)| stream_selected(stream_filter, name))
            .map(|(name, stream, include_batch)| {
                (name, stream, include_batch, streams::uniform_pool())
            })
            .collect();
    if stream_selected(stream_filter, "closed_loop_measured") {
        // the measured closed loop calibrates off a fifo+elide oracle
        // serve, exactly as the sim-mode report does
        let closed_cfg = streams::closed_loop_config(requests);
        let calibration_stream = closed_cfg.stream().expect("valid closed-loop mix");
        let calibration = Runtime::new(streams::uniform_pool())
            .serve(
                &calibration_stream,
                &ServeConfig {
                    policy: Policy::FifoElide,
                    ..ServeConfig::default().with_load_slack(slack)
                },
            )
            .expect("calibration serve succeeds");
        let service_times = measured_class_service_times(
            &closed_cfg.classes,
            &calibration_stream,
            &calibration,
            closed_cfg.service_estimate,
        );
        pairs_under_test.push((
            "closed_loop_measured",
            closed_cfg
                .stream_with_service_times(&service_times)
                .expect("valid measured closed-loop mix"),
            false,
            streams::uniform_pool(),
        ));
    }
    if stream_selected(stream_filter, "hetero") {
        pairs_under_test.push((
            "hetero",
            streams::hetero_stream(requests),
            false,
            streams::hetero_pool(),
        ));
    }
    if stream_selected(stream_filter, "contention") {
        pairs_under_test.push((
            "contention",
            streams::contention_stream(requests),
            false,
            streams::contention_pool(),
        ));
    }

    let mut pairs = 0usize;
    for (stream_name, stream, include_batch, pool) in &pairs_under_test {
        for (label, cfg) in &policies(*include_batch, slack, cutoff) {
            if let Some(filter) = filter {
                if !filter.iter().any(|f| f == label) {
                    continue;
                }
            }
            let oracle = Runtime::new(pool.clone())
                .serve(stream, cfg)
                .expect("oracle serve succeeds");
            let parallel = Runtime::new(pool.clone())
                .serve(
                    stream,
                    &ServeConfig {
                        mode: ServeMode::Parallel { threads },
                        ..cfg.clone()
                    },
                )
                .expect("parallel serve succeeds");
            assert_eq!(
                oracle.metrics, parallel.metrics,
                "{stream_name}/{label}: metrics diverge"
            );
            assert_eq!(
                oracle.latencies, parallel.latencies,
                "{stream_name}/{label}: latencies diverge"
            );
            assert_eq!(
                oracle.predictions, parallel.predictions,
                "{stream_name}/{label}: prediction samples diverge"
            );
            for (slot, (o, p)) in oracle
                .completions
                .iter()
                .zip(&parallel.completions)
                .enumerate()
            {
                assert_eq!(
                    o.worker, p.worker,
                    "{stream_name}/{label}: request {slot} routed differently"
                );
                assert_eq!(
                    o.emitted_writes, p.emitted_writes,
                    "{stream_name}/{label}: request {slot} wrote differently"
                );
                assert_eq!(
                    o.counters.cycles, p.counters.cycles,
                    "{stream_name}/{label}: request {slot} took different cycles"
                );
            }
            println!(
                "{stream_name}/{label}: identical over {} requests ({threads} threads)",
                stream.len()
            );
            pairs += 1;
        }
    }
    assert!(
        pairs > 0,
        "every stream × policy pair was skipped by --policies/--streams"
    );

    let out = format!(
        "{{\n  \"differential\": {{\"requests\": {requests}, \"threads\": {threads}, \
         \"streams\": {}, \"pairs\": {pairs}, \"identical\": true}}\n}}\n",
        pairs_under_test.len()
    );
    json::validate(&out).expect("differential report must be strict JSON");
    std::fs::write(out_path, &out).expect("write differential report");
    println!("\n{pairs} stream × policy pairs identical across engines; summary: {out_path}");
}

/// The stream's static-analysis summary: the config-write lints and the
/// static elidable-write lower bound of `accfg-analyze`, computed over the
/// *raw* per-class modules (exactly what the runtime compiles), weighted
/// by each class's request count. `elidable_bound` is the write-execution
/// count the analysis proves value-resident, so the measured dynamic
/// savings of any eliding policy — raw writes minus emitted writes — must
/// be at least this much; `tests/serving.rs` asserts that relation.
fn stream_static_analysis(stream: &[TrafficRequest]) -> String {
    let mut classes: Vec<(String, MatmulSpec, u64)> = Vec::new();
    for req in stream {
        match classes
            .iter_mut()
            .find(|(a, s, _)| *a == req.accelerator && *s == req.spec)
        {
            Some((_, _, n)) => *n += 1,
            None => classes.push((req.accelerator.clone(), req.spec, 1)),
        }
    }
    let (mut dead, mut redundant, mut clobbered) = (0usize, 0usize, 0usize);
    let (mut static_writes, mut elidable) = (0u64, 0u64);
    for (accel, spec, n) in &classes {
        let desc = match accel.as_str() {
            "gemmini" => AcceleratorDescriptor::gemmini(),
            "opengemm" => AcceleratorDescriptor::opengemm(),
            other => panic!("stream class targets unknown accelerator `{other}`"),
        };
        let report = lint_module(&matmul_ir(&desc, spec));
        dead += report.count(LintKind::DeadWrite);
        redundant += report.count(LintKind::RedundantWrite);
        clobbered += report.count(LintKind::ClobberedLaunch);
        static_writes += n * report.static_writes;
        elidable += n * report.elidable_bound;
    }
    format!(
        "{{\"dead_writes\": {dead}, \"redundant_writes\": {redundant}, \
         \"clobbered_launches\": {clobbered}, \"static_writes\": {static_writes}, \
         \"elidable_bound\": {elidable}}}"
    )
}

const DEFAULT_OUT: &str = "BENCH_runtime.json";

/// The warm-start mode (`--store <path>`): serve the contention stream
/// twice against one persistent store — cold pass flushes compiled
/// modules + learned EWMA state, warm pass restores them — and report
/// both metric rows under a `warm_start` section. Against a store file
/// left by an earlier invocation even the "cold" pass starts warm;
/// the cross-pass assertions only apply to a genuinely cold first pass.
fn run_warm_start(requests: usize, store_path: &str, out_path: &str, slack: u64) {
    let stream = streams::contention_stream(requests);
    let cfg = ServeConfig {
        policy: Policy::ConfigAffinity,
        store: Some(std::path::PathBuf::from(store_path)),
        ..ServeConfig::default().with_load_slack(slack)
    };

    let mut results: Vec<(&'static str, ServeMetrics)> = Vec::new();
    for pass in ["cold", "warm"] {
        // a fresh runtime per pass: nothing carries over in memory, so
        // everything the warm pass knows came back through the store
        let mut runtime = Runtime::new(streams::contention_pool());
        let report = runtime.serve(&stream, &cfg).expect("serve succeeds");
        let m = report.metrics;
        assert_eq!(m.check_failures, 0, "{pass} pass: functional checks failed");
        assert_eq!(m.sim_failures, 0, "{pass} pass: simulation failed");
        let w = m
            .warm_start
            .expect("store-backed serves report warm-start provenance");
        println!(
            "{pass} pass: restored {} modules, seeded {} ewma rows, avoided {} \
             compile builds ({} paid), anchor MAE {:.1}, ewma MAE {:.1}",
            w.modules_restored,
            w.ewma_entries_seeded,
            w.builds_avoided,
            m.cache.misses,
            m.prediction.anchor_mae(),
            m.prediction.ewma_mae(),
        );
        results.push((pass, m));
    }

    let cold = &results[0].1;
    let warm = &results[1].1;
    let warm_stats = warm.warm_start.expect("warm pass provenance");
    assert!(
        warm_stats.modules_restored > 0,
        "warm pass restored no modules from {store_path}"
    );
    assert_eq!(
        warm.cache.misses, 0,
        "warm pass paid {} compile builds despite the store",
        warm.cache.misses
    );
    if cold
        .warm_start
        .expect("cold pass provenance")
        .modules_restored
        == 0
    {
        // genuinely cold first pass: persistence must not make the
        // charged-path predictions worse than relearning from scratch
        assert!(
            warm.prediction.ewma_abs_error <= cold.prediction.ewma_abs_error,
            "warm ewma MAE {:.1} worse than cold {:.1}",
            warm.prediction.ewma_mae(),
            cold.prediction.ewma_mae()
        );
    }
    println!(
        "\nwarm start over {store_path}: {} modules + {} ewma rows restored, \
         compile builds {} -> {}, ewma MAE {:.1} -> {:.1}",
        warm_stats.modules_restored,
        warm_stats.ewma_entries_seeded,
        cold.cache.misses,
        warm.cache.misses,
        cold.prediction.ewma_mae(),
        warm.prediction.ewma_mae(),
    );

    let mut out = String::from("{\n  \"warm_start\": {\n");
    for (i, (pass, m)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let body = m
            .to_json()
            .lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n");
        out.push_str(&format!("    \"{pass}\": {}{comma}\n", body.trim_start()));
    }
    out.push_str("  }\n}\n");
    json::validate(&out).expect("benchmark report must be strict JSON");
    std::fs::write(out_path, &out).expect("write benchmark report");
    println!("raw metrics: {out_path} (validated as strict JSON)");
}

fn main() {
    let mut requests = DEFAULT_REQUESTS;
    let mut out_path = String::from(DEFAULT_OUT);
    let mut policy_filter: Option<Vec<String>> = None;
    let mut stream_filter: Option<Vec<String>> = None;
    let mut slack = LOAD_SLACK_CYCLES;
    let mut store_path: Option<String> = None;
    let mut mode = BenchMode::Sim;
    let mut threads: Option<usize> = None;
    // outer None = flag absent (cutoff follows the slack horizon);
    // Some(None) = `--batch-cutoff none` (uncapped coalescing)
    let mut batch_cutoff: Option<Option<u64>> = None;
    let mut tuned_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--requests takes a positive integer");
            }
            "--slack" => {
                slack = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .expect("--slack takes a positive cycle count");
            }
            "--out" => {
                out_path = args.next().expect("--out takes a file path");
            }
            "--store" => {
                store_path = Some(args.next().expect("--store takes a file path"));
            }
            "--batch-cutoff" => {
                let value = args
                    .next()
                    .expect("--batch-cutoff takes a cycle count or `none`");
                batch_cutoff = Some(match value.as_str() {
                    "none" => None,
                    _ => Some(
                        value
                            .parse()
                            .ok()
                            .filter(|&c: &u64| c > 0)
                            .expect("--batch-cutoff takes a positive cycle count or `none`"),
                    ),
                });
            }
            "--tuned" => {
                tuned_path = Some(args.next().expect("--tuned takes a tuned-table path"));
            }
            "--mode" => {
                mode = match args.next().as_deref() {
                    Some("sim") => BenchMode::Sim,
                    Some("wall") => BenchMode::Wall,
                    Some("diff") => BenchMode::Diff,
                    other => panic!("--mode takes sim, wall, or diff (got {other:?})"),
                };
            }
            "--threads" => {
                threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .expect("--threads takes a positive integer"),
                );
            }
            "--policies" => {
                let list = args
                    .next()
                    .expect("--policies takes a comma-separated list");
                let known: Vec<&str> = policies(true, LOAD_SLACK_CYCLES, None)
                    .iter()
                    .map(|(l, _)| *l)
                    .collect();
                let selected: Vec<String> = list.split(',').map(str::to_string).collect();
                for label in &selected {
                    assert!(
                        known.contains(&label.as_str()),
                        "unknown policy `{label}` (known: {})",
                        known.join(", ")
                    );
                }
                policy_filter = Some(selected);
            }
            "--streams" => {
                let list = args.next().expect("--streams takes a comma-separated list");
                let selected: Vec<String> = list.split(',').map(str::to_string).collect();
                for name in &selected {
                    assert!(
                        STREAM_NAMES.contains(&name.as_str()),
                        "unknown stream `{name}` (known: {})",
                        STREAM_NAMES.join(", ")
                    );
                }
                stream_filter = Some(selected);
            }
            other => panic!(
                "unknown argument `{other}` (supported: --requests <n>, \
                 --out <path>, --policies <a,b,...>, --streams <a,b,...>, \
                 --slack <cycles>, --batch-cutoff <cycles|none>, \
                 --tuned <path>, --store <path>, --mode <sim|wall|diff>, \
                 --threads <n>)"
            ),
        }
    }
    // a filtered, slack-swept, reduced, warm-start, or non-sim-mode run
    // produces a report that is not the committed artifact: refuse to
    // overwrite it (by file name, so alternate spellings of the same
    // path cannot slip past). `--threads` counts even in sim mode — a
    // partial wall-mode invocation mistyped as sim must not land on the
    // deterministic artifact either.
    assert!(
        (policy_filter.is_none()
            && stream_filter.is_none()
            && slack == LOAD_SLACK_CYCLES
            && requests == DEFAULT_REQUESTS
            && store_path.is_none()
            && mode == BenchMode::Sim
            && threads.is_none()
            && batch_cutoff.is_none()
            && tuned_path.is_none())
            || std::path::Path::new(&out_path).file_name()
                != std::path::Path::new(DEFAULT_OUT).file_name(),
        "--policies/--streams/--slack/--batch-cutoff/--tuned/--requests/\
         --store/--mode/--threads write a non-canonical report; pass --out \
         with a file name other than {DEFAULT_OUT} so it cannot clobber \
         the committed artifact"
    );
    let tuned_table: Option<Vec<(String, KnobConfig)>> = tuned_path.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--tuned: cannot read {path}: {e}"));
        parse_table(&text).unwrap_or_else(|e| panic!("--tuned: {path}: {e}"))
    });
    if let Some(store) = &store_path {
        assert!(
            policy_filter.is_none(),
            "--store runs the warm-start passes under the affinity policy; \
             it cannot be combined with --policies"
        );
        assert!(
            stream_filter.is_none(),
            "--store always serves the contention stream for both passes; \
             it cannot be combined with --streams"
        );
        assert!(
            mode == BenchMode::Sim,
            "--store runs its passes on the deterministic engine; \
             it cannot be combined with --mode"
        );
        assert!(
            batch_cutoff.is_none() && tuned_table.is_none(),
            "--store serves a fixed affinity configuration; it cannot be \
             combined with --batch-cutoff or --tuned"
        );
        run_warm_start(requests, store, &out_path, slack);
        return;
    }
    let filter = policy_filter.as_deref();
    let streams_wanted = stream_filter.as_deref();
    let threads = threads.unwrap_or(DEFAULT_THREADS);
    if mode == BenchMode::Diff {
        assert!(
            tuned_table.is_none(),
            "--tuned adds report rows to the sim/wall tables; \
             it cannot be combined with --mode diff"
        );
        run_diff(
            requests,
            threads,
            &out_path,
            slack,
            batch_cutoff,
            filter,
            streams_wanted,
        );
        return;
    }
    let serve_mode = match mode {
        BenchMode::Sim => ServeMode::Deterministic,
        _ => ServeMode::Parallel { threads },
    };

    // a stream appears in the tuned table -> its section gains a `tuned`
    // row served over the given base pool with the table's knobs applied
    let tuned_knobs = |name: &str| {
        tuned_table
            .as_ref()
            .and_then(|t| t.iter().find(|(n, _)| n == name))
            .map(|(_, k)| *k)
    };

    let mut runtime = Runtime::new(streams::uniform_pool());

    println!(
        "serve_bench: {requests} requests per stream, 2 workers/accelerator, \
         slack horizon {slack} cycles\n"
    );
    if mode == BenchMode::Wall {
        println!(
            "wall mode: parallel engine, {threads} executor threads — \
             measuring the runtime's own requests/sec\n"
        );
    }

    // (stream name, static-analysis JSON object, per-policy rows)
    type StreamSection<'a> = (&'a str, String, Vec<PolicyRow>);
    let mut all: Vec<StreamSection> = Vec::new();
    for (stream_name, stream, include_batch) in &uniform_streams(requests) {
        let results = run_stream(
            &mut runtime,
            stream_name,
            stream,
            *include_batch,
            filter,
            streams_wanted,
            slack,
            batch_cutoff,
            serve_mode,
            tuned_knobs(stream_name).map(|k| (k, streams::uniform_pool())),
        );
        if mode == BenchMode::Wall {
            report_wall(stream_name, &results, threads);
        }
        if !results.is_empty() {
            all.push((stream_name, stream_static_analysis(stream), results));
        }
    }

    // closed-loop fidelity: re-drive the client feedback with the
    // *measured* mean service time of each class, taken from a
    // calibration serve (fifo+elide — routing-neutral state tracking) of
    // the static-estimate stream above. A `--streams` filter that drops
    // this stream also skips the calibration serve it would pay for.
    if stream_selected(streams_wanted, "closed_loop_measured") {
        let closed_cfg = streams::closed_loop_config(requests);
        let calibration_stream = closed_cfg.stream().expect("valid closed-loop mix");
        let calibration = runtime
            .serve(
                &calibration_stream,
                &ServeConfig {
                    policy: Policy::FifoElide,
                    mode: serve_mode,
                    ..ServeConfig::default().with_load_slack(slack)
                },
            )
            .expect("calibration serve succeeds");
        let service_times = measured_class_service_times(
            &closed_cfg.classes,
            &calibration_stream,
            &calibration,
            closed_cfg.service_estimate,
        );
        println!(
            "closed-loop calibration: measured per-class service times {service_times:?} \
             (static estimate was {})\n",
            closed_cfg.service_estimate
        );
        let measured_stream = closed_cfg
            .stream_with_service_times(&service_times)
            .expect("valid measured closed-loop mix");
        let measured_results = run_stream(
            &mut runtime,
            "closed_loop_measured",
            &measured_stream,
            false,
            filter,
            streams_wanted,
            slack,
            batch_cutoff,
            serve_mode,
            tuned_knobs("closed_loop_measured").map(|k| (k, streams::uniform_pool())),
        );
        if mode == BenchMode::Wall {
            report_wall("closed_loop_measured", &measured_results, threads);
        }
        if !measured_results.is_empty() {
            all.push((
                "closed_loop_measured",
                stream_static_analysis(&measured_stream),
                measured_results,
            ));
        }
    }

    // the heterogeneous pool: same capacity (2 workers/family), but each
    // family pairs its base platform with a differently provisioned
    // variant — its own runtime, so module caches stay per-pool
    let mut hetero_runtime = Runtime::new(streams::hetero_pool());
    let hetero_stream = streams::hetero_stream(requests);
    let hetero_results = run_stream(
        &mut hetero_runtime,
        "hetero",
        &hetero_stream,
        false,
        filter,
        streams_wanted,
        slack,
        batch_cutoff,
        serve_mode,
        tuned_knobs("hetero").map(|k| (k, streams::hetero_pool())),
    );
    if mode == BenchMode::Wall {
        report_wall("hetero", &hetero_results, threads);
    }
    let hetero_find = |label: &str| {
        hetero_results
            .iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, m, _)| m)
    };
    if let (Some(cost), Some(affinity)) = (hetero_find("cost"), hetero_find("affinity")) {
        // the heterogeneous acceptance bar: cycle-cost routing beats
        // write-count affinity on its own metric
        assert!(
            cost.setup_writes <= affinity.setup_writes,
            "hetero: cost wrote {} setup registers, affinity {}",
            cost.setup_writes,
            affinity.setup_writes
        );
        println!(
            "hetero: cost {} setup writes vs affinity {} ({:.1}% fewer), \
             p99 {} vs {} cycles",
            cost.setup_writes,
            affinity.setup_writes,
            100.0 * cost.write_savings_vs(affinity),
            cost.latency.p99,
            affinity.latency.p99,
        );
    }
    if !hetero_results.is_empty() {
        all.push((
            "hetero",
            stream_static_analysis(&hetero_stream),
            hetero_results,
        ));
    }

    // the timing-model stream: the canonical mix at a tighter arrival
    // gap over the reference contention + DVFS pool — dispatch cost now
    // depends on worker load, so the analytic anchors drift and the
    // EWMA refiner has a real gap to close
    let mut contention_runtime = Runtime::new(streams::contention_pool());
    let contention_stream = streams::contention_stream(requests);
    let contention_results = run_stream(
        &mut contention_runtime,
        "contention",
        &contention_stream,
        false,
        filter,
        streams_wanted,
        slack,
        batch_cutoff,
        serve_mode,
        tuned_knobs("contention").map(|k| (k, streams::contention_pool())),
    );
    if mode == BenchMode::Wall {
        report_wall("contention", &contention_results, threads);
    }
    let contention_find = |label: &str| {
        contention_results
            .iter()
            .find(|(l, _, _)| l == label)
            .map(|(_, m, _)| m)
    };
    if let (Some(cost), Some(affinity)) = (contention_find("cost"), contention_find("affinity")) {
        println!(
            "contention: anchor MAE {:.1} vs ewma MAE {:.1} under affinity \
             ({} contended host cycles, launches cold/warm/boost \
             {}/{}/{}); cost p99 {} vs affinity p99 {} cycles",
            affinity.prediction.anchor_mae(),
            affinity.prediction.ewma_mae(),
            affinity.contention_cycles,
            affinity.freq_launches[0],
            affinity.freq_launches[1],
            affinity.freq_launches[2],
            cost.latency.p99,
            affinity.latency.p99,
        );
    }
    if !contention_results.is_empty() {
        all.push((
            "contention",
            stream_static_analysis(&contention_stream),
            contention_results,
        ));
    }
    assert!(
        !all.is_empty(),
        "every stream was skipped by --policies/--streams"
    );

    // per-class SLO view of the canonical mix under affinity
    if let Some(mixed_affinity) = all
        .iter()
        .find(|(stream, _, _)| *stream == "mixed")
        .and_then(|(_, _, results)| results.iter().find(|(label, _, _)| label == "affinity"))
    {
        println!("\n== mixed / affinity, per class ==");
        let class_rows: Vec<Vec<String>> = mixed_affinity
            .1
            .per_class
            .iter()
            .map(|c| {
                vec![
                    c.class.clone(),
                    c.requests.to_string(),
                    c.latency.p50.to_string(),
                    c.latency.p99.to_string(),
                    c.latency.max.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            markdown_table(&["class", "requests", "p50", "p99", "max"], &class_rows)
        );
    }

    let mut out = String::from("{\n");
    for (si, (stream_name, static_analysis, results)) in all.iter().enumerate() {
        let stream_comma = if si + 1 == all.len() { "" } else { "," };
        out.push_str(&format!("  \"{stream_name}\": {{\n"));
        // the static-analysis summary leads the stream object so every
        // per-policy section below keeps its exact bytes from earlier
        // report formats
        out.push_str(&format!("    \"static_analysis\": {static_analysis},\n"));
        // the engine section only exists in wall mode: deterministic-mode
        // reports keep their exact committed bytes
        if mode == BenchMode::Wall {
            out.push_str(&format!(
                "    \"engine\": {},\n",
                engine_json(results, threads)
            ));
        }
        for (i, (label, m, _)) in results.iter().enumerate() {
            let comma = if i + 1 == results.len() { "" } else { "," };
            let body = m
                .to_json()
                .lines()
                .map(|l| format!("    {l}"))
                .collect::<Vec<_>>()
                .join("\n");
            out.push_str(&format!("    \"{label}\": {}{comma}\n", body.trim_start()));
        }
        out.push_str(&format!("  }}{stream_comma}\n"));
    }
    out.push_str("}\n");
    json::validate(&out).expect("benchmark report must be strict JSON");
    std::fs::write(&out_path, &out).expect("write benchmark report");
    println!("\nraw metrics: {out_path} (validated as strict JSON)");
}
