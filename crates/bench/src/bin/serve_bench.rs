//! Serving benchmark for the `accfg-runtime` dispatch layer: throughput,
//! latency, and configuration-write savings of the scheduling policies
//! across arrival processes and shape mixes, over both evaluation
//! platforms.
//!
//! Policies:
//!
//! - `fifo` — the production baseline: round-robin routing, every dispatch
//!   reprograms its full configuration;
//! - `fifo+elide` — round-robin routing with resident-state elision
//!   (isolates the value of cross-request state tracking);
//! - `fifo+elide+batch` — the above plus adjacent same-shape batching
//!   (batching's clearest win: it overrides round-robin scattering);
//! - `affinity` — config-affinity routing (queue-depth-aware, in
//!   estimated outstanding cycles) plus elision;
//! - `affinity+batch` — affinity with batching.
//!
//! Streams:
//!
//! - `mixed` — the canonical six-shape open-loop mix (routing and balance
//!   both matter);
//! - `shape_heavy` — sixteen shapes over four workers: no static
//!   partition keeps every worker warm, so the routing term dominates;
//! - `bursty` — on/off arrivals that build deep queues, the worst case
//!   for sticky routing's tail latency;
//! - `closed_loop` — a fixed client population, self-limiting arrivals.
//!
//! Writes the raw per-stream, per-policy metrics to `BENCH_runtime.json`
//! (validated as strict JSON before the file lands). Pass
//! `--requests <n>` for a reduced smoke run and `--out <path>` to write
//! the report elsewhere (CI uses both to avoid clobbering the committed
//! artifact).

use accfg_bench::{json, markdown_table};
use accfg_runtime::{Policy, PoolConfig, Runtime, ServeConfig, ServeMetrics};
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{
    mixed_serving_classes, shape_heavy_classes, BurstyConfig, ClosedLoopConfig, TrafficConfig,
    TrafficRequest,
};

const DEFAULT_REQUESTS: usize = 12_000;

fn policies(include_batch: bool) -> Vec<(&'static str, ServeConfig)> {
    let base = |policy| ServeConfig {
        policy,
        ..ServeConfig::default()
    };
    let batched = |policy| ServeConfig {
        policy,
        max_batch: 8,
        ..ServeConfig::default()
    };
    let mut out = vec![
        ("fifo", base(Policy::Fifo)),
        ("fifo+elide", base(Policy::FifoElide)),
    ];
    if include_batch {
        out.push(("fifo+elide+batch", batched(Policy::FifoElide)));
    }
    out.push(("affinity", base(Policy::ConfigAffinity)));
    if include_batch {
        out.push(("affinity+batch", batched(Policy::ConfigAffinity)));
    }
    out
}

fn streams(requests: usize) -> Vec<(&'static str, Vec<TrafficRequest>, bool)> {
    let mixed = TrafficConfig {
        classes: mixed_serving_classes(),
        requests,
        mean_gap: 200,
        seed: 0xC0FFEE,
    }
    .open_loop_stream()
    .expect("valid traffic mix");
    let shape_heavy = TrafficConfig {
        classes: shape_heavy_classes(),
        requests,
        mean_gap: 400,
        seed: 0x5EED,
    }
    .open_loop_stream()
    .expect("valid shape-heavy mix");
    let bursty = BurstyConfig {
        classes: mixed_serving_classes(),
        requests,
        burst_len: 24,
        burst_gap: 60,
        idle_gap: 12_000,
        seed: 0xB0257,
    }
    .stream()
    .expect("valid bursty mix");
    let closed_loop = ClosedLoopConfig {
        classes: mixed_serving_classes(),
        requests,
        clients: 12,
        think_time: 400,
        service_estimate: 250,
        seed: 0xC105ED,
    }
    .stream()
    .expect("valid closed-loop mix");
    // the batch variants only on the canonical mix: they change placement,
    // not the routing-vs-balance story the extra streams characterize
    vec![
        ("mixed", mixed, true),
        ("shape_heavy", shape_heavy, false),
        ("bursty", bursty, false),
        ("closed_loop", closed_loop, false),
    ]
}

fn main() {
    let mut requests = DEFAULT_REQUESTS;
    let mut out_path = String::from("BENCH_runtime.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--requests takes a positive integer");
            }
            "--out" => {
                out_path = args.next().expect("--out takes a file path");
            }
            other => {
                panic!("unknown argument `{other}` (supported: --requests <n>, --out <path>)")
            }
        }
    }

    let mut runtime = Runtime::new(
        PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ])
        .with_workers_per_accelerator(2),
    );

    println!("serve_bench: {requests} requests per stream, 2 workers/accelerator\n");

    let mut all: Vec<(&str, Vec<(String, ServeMetrics)>)> = Vec::new();
    for (stream_name, stream, include_batch) in &streams(requests) {
        let mut results: Vec<(String, ServeMetrics)> = Vec::new();
        for (label, cfg) in &policies(*include_batch) {
            let report = runtime.serve(stream, cfg).expect("serve succeeds");
            assert_eq!(
                report.metrics.check_failures, 0,
                "{stream_name}/{label}: functional checks failed"
            );
            assert_eq!(
                report.metrics.sim_failures, 0,
                "{stream_name}/{label}: simulation failed"
            );
            results.push((label.to_string(), report.metrics));
        }

        let fifo = results[0].1.clone();
        let elide_p99 = results
            .iter()
            .find(|(l, _)| l == "fifo+elide")
            .expect("fifo+elide row")
            .1
            .latency
            .p99;
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(label, m)| {
                vec![
                    label.clone(),
                    m.setup_writes.to_string(),
                    format!("{:.1}%", 100.0 * m.write_savings_vs(&fifo)),
                    m.makespan.to_string(),
                    format!("{:.1}", m.throughput_per_mcycle()),
                    m.latency.p50.to_string(),
                    m.latency.p99.to_string(),
                    format!("{:.2}", m.latency.p99 as f64 / elide_p99.max(1) as f64),
                    m.queue_depth.max.to_string(),
                    format!("{:.1}", m.prediction.anchor_mae()),
                    format!("{:.1}", m.prediction.ewma_mae()),
                ]
            })
            .collect();
        println!("== {stream_name} ==");
        print!(
            "{}",
            markdown_table(
                &[
                    "policy",
                    "setup writes",
                    "saved vs fifo",
                    "makespan (cyc)",
                    "req/Mcycle",
                    "p50 lat",
                    "p99 lat",
                    "p99 / elide p99",
                    "max qdepth",
                    "anchor MAE",
                    "ewma MAE",
                ],
                &rows,
            )
        );

        let affinity = &results
            .iter()
            .find(|(label, _)| label == "affinity")
            .expect("affinity row present")
            .1;
        assert!(
            affinity.setup_writes <= fifo.setup_writes,
            "{stream_name}: affinity wrote more than fifo"
        );
        // the refined estimates must not be worse than the static anchors
        // on the dispatches the scheduler actually charged for
        for (label, m) in results.iter().filter(|(_, m)| m.prediction.samples > 0) {
            assert!(
                m.prediction.ewma_abs_error <= m.prediction.anchor_abs_error,
                "{stream_name}/{label}: ewma MAE {:.1} > anchor MAE {:.1}",
                m.prediction.ewma_mae(),
                m.prediction.anchor_mae()
            );
        }
        println!(
            "affinity: {:.1}% fewer setup writes than fifo, p99 {:.2}x fifo+elide\n",
            100.0 * affinity.write_savings_vs(&fifo),
            affinity.latency.p99 as f64 / elide_p99.max(1) as f64,
        );
        all.push((stream_name, results));
    }

    // per-class SLO view of the canonical mix under affinity
    let mixed_affinity = &all[0]
        .1
        .iter()
        .find(|(label, _)| label == "affinity")
        .expect("affinity on mixed")
        .1;
    println!("== mixed / affinity, per class ==");
    let class_rows: Vec<Vec<String>> = mixed_affinity
        .per_class
        .iter()
        .map(|c| {
            vec![
                c.class.clone(),
                c.requests.to_string(),
                c.latency.p50.to_string(),
                c.latency.p99.to_string(),
                c.latency.max.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(&["class", "requests", "p50", "p99", "max"], &class_rows)
    );

    let mut out = String::from("{\n");
    for (si, (stream_name, results)) in all.iter().enumerate() {
        let stream_comma = if si + 1 == all.len() { "" } else { "," };
        out.push_str(&format!("  \"{stream_name}\": {{\n"));
        for (i, (label, m)) in results.iter().enumerate() {
            let comma = if i + 1 == results.len() { "" } else { "," };
            let body = m
                .to_json()
                .lines()
                .map(|l| format!("    {l}"))
                .collect::<Vec<_>>()
                .join("\n");
            out.push_str(&format!("    \"{label}\": {}{comma}\n", body.trim_start()));
        }
        out.push_str(&format!("  }}{stream_comma}\n"));
    }
    out.push_str("}\n");
    json::validate(&out).expect("benchmark report must be strict JSON");
    std::fs::write(&out_path, &out).expect("write benchmark report");
    println!("\nraw metrics: {out_path} (validated as strict JSON)");
}
