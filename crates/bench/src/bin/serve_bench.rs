//! Serving benchmark for the `accfg-runtime` dispatch layer: throughput,
//! latency, and configuration-write savings of the scheduling policies on
//! a mixed-shape open-loop stream over both evaluation platforms.
//!
//! Policies:
//!
//! - `fifo` — the production baseline: round-robin routing, every dispatch
//!   reprograms its full configuration;
//! - `fifo+elide` — round-robin routing with resident-state elision
//!   (isolates the value of cross-request state tracking);
//! - `fifo+elide+batch` — the above plus adjacent same-shape batching
//!   (batching's clearest win: it overrides round-robin scattering);
//! - `affinity` — config-affinity routing plus elision;
//! - `affinity+batch` — affinity with batching (affinity already keeps
//!   same-shape runs together, so batching mostly pins them across
//!   load-balance boundaries).
//!
//! Writes the raw per-policy metrics to `BENCH_runtime.json`.

use accfg_bench::markdown_table;
use accfg_runtime::{Policy, PoolConfig, Runtime, ServeConfig, ServeMetrics};
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{mixed_serving_classes, TrafficConfig};

const REQUESTS: usize = 12_000;

fn main() {
    let stream = TrafficConfig {
        classes: mixed_serving_classes(),
        requests: REQUESTS,
        mean_gap: 200,
        seed: 0xC0FFEE,
    }
    .open_loop_stream()
    .expect("valid traffic mix");

    let mut runtime = Runtime::new(
        PoolConfig::new(vec![
            AcceleratorDescriptor::gemmini(),
            AcceleratorDescriptor::opengemm(),
        ])
        .with_workers_per_accelerator(2),
    );

    let configs: Vec<(&str, ServeConfig)> = vec![
        (
            "fifo",
            ServeConfig {
                policy: Policy::Fifo,
                ..ServeConfig::default()
            },
        ),
        (
            "fifo+elide",
            ServeConfig {
                policy: Policy::FifoElide,
                ..ServeConfig::default()
            },
        ),
        (
            "fifo+elide+batch",
            ServeConfig {
                policy: Policy::FifoElide,
                max_batch: 8,
                ..ServeConfig::default()
            },
        ),
        (
            "affinity",
            ServeConfig {
                policy: Policy::ConfigAffinity,
                ..ServeConfig::default()
            },
        ),
        (
            "affinity+batch",
            ServeConfig {
                policy: Policy::ConfigAffinity,
                max_batch: 8,
                ..ServeConfig::default()
            },
        ),
    ];

    println!(
        "serve_bench: {REQUESTS} requests, {} shape classes, 2 workers/accelerator\n",
        mixed_serving_classes().len()
    );

    let mut results: Vec<(String, ServeMetrics)> = Vec::new();
    for (label, cfg) in &configs {
        let report = runtime.serve(&stream, cfg).expect("serve succeeds");
        assert_eq!(
            report.metrics.check_failures, 0,
            "{label}: functional checks failed"
        );
        assert_eq!(report.metrics.sim_failures, 0, "{label}: simulation failed");
        results.push((label.to_string(), report.metrics));
    }

    let baseline = results[0].1.clone();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, m)| {
            vec![
                label.clone(),
                m.setup_writes.to_string(),
                format!("{:.1}%", 100.0 * m.write_savings_vs(&baseline)),
                m.config_bytes.to_string(),
                m.makespan.to_string(),
                format!("{:.1}", m.throughput_per_mcycle()),
                m.latency.p50.to_string(),
                m.latency.p99.to_string(),
                format!("{:.1}%", 100.0 * m.cache.hit_rate()),
            ]
        })
        .collect();
    print!(
        "{}",
        markdown_table(
            &[
                "policy",
                "setup writes",
                "saved vs fifo",
                "config bytes",
                "makespan (cyc)",
                "req/Mcycle",
                "p50 lat",
                "p99 lat",
                "cache hits",
            ],
            &rows,
        )
    );

    let affinity = &results
        .iter()
        .find(|(label, _)| label == "affinity")
        .expect("affinity row present")
        .1;
    println!(
        "\nconfig-affinity eliminates {:.1}% of setup register writes vs the FIFO baseline",
        100.0 * affinity.write_savings_vs(&baseline)
    );

    let mut json = String::from("{\n");
    for (i, (label, m)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let body = m
            .to_json()
            .lines()
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join("\n");
        json.push_str(&format!("  \"{label}\": {}{comma}\n", body.trim_start()));
    }
    json.push_str("}\n");
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("raw metrics: BENCH_runtime.json");
}
