//! `accfg-lint`: the static-analysis gate over every module this repo
//! compiles — example/bench generators and each serve_bench stream class.
//!
//! Per module it runs, and treats any failure as a finding:
//!
//! 1. the IR verifier (`accfg_ir::verify`);
//! 2. the configuration-discipline check (`accfg::verify_discipline`);
//! 3. the config-write lints (`accfg_analyze::lint_module`) — dead
//!    writes, redundant writes, clobbered launches — on the raw module;
//! 4. the full pass pipeline at every [`OptLevel`] with per-pass
//!    translation validation (`accfg_analyze::pass_validator`) enabled,
//!    so every rewrite must preserve each launch's reaching
//!    configuration state;
//! 5. the lints again on the `OptLevel::All` output — a dead or
//!    redundant write *surviving* the full pipeline is a
//!    missed-optimization report.
//!
//! Prints one row per module (static write executions, the static
//! elidable-write lower bound, per-level validation status) and exits
//! nonzero iff anything fired, which is how CI consumes it.

use accfg::{pipeline, verify_discipline, OptLevel};
use accfg_analyze::{lint_module, pass_validator, LintReport};
use accfg_ir::{verify, Module};
use accfg_targets::AcceleratorDescriptor;
use accfg_workloads::{
    gemmini_ws_ir, layer_sequence_ir, matmul_ir, mixed_platform_classes, mixed_serving_classes,
    shape_heavy_classes, single_invocation_ir, tiled_collapsed_ir, tiled_nested_ir, MatmulLayout,
    MatmulSpec,
};

const LEVELS: [OptLevel; 4] = [
    OptLevel::Base,
    OptLevel::Dedup,
    OptLevel::Overlap,
    OptLevel::All,
];

fn descriptor(name: &str) -> AcceleratorDescriptor {
    match name {
        "gemmini" => AcceleratorDescriptor::gemmini(),
        "opengemm" => AcceleratorDescriptor::opengemm(),
        "gemmini-turbo" => AcceleratorDescriptor::gemmini_turbo(),
        "opengemm-lite" => AcceleratorDescriptor::opengemm_lite(),
        other => panic!("no descriptor named `{other}`"),
    }
}

/// Every module the repo's examples and benches generate, plus one
/// module per unique serve_bench stream class (the exact raw IR the
/// serving runtime compiles for that class).
fn modules() -> Vec<(String, AcceleratorDescriptor, Module)> {
    let mut out = Vec::new();
    for name in ["gemmini", "opengemm"] {
        let desc = descriptor(name);
        let sizes = if name == "gemmini" {
            [64, 128]
        } else {
            [32, 64]
        };
        for size in sizes {
            let spec = if name == "gemmini" {
                MatmulSpec::gemmini_paper(size).expect("paper size")
            } else {
                MatmulSpec::opengemm_paper(size).expect("paper size")
            };
            out.push((
                format!("{name}/matmul_{size}"),
                desc.clone(),
                matmul_ir(&desc, &spec),
            ));
            out.push((
                format!("{name}/tiled_collapsed_{size}"),
                desc.clone(),
                tiled_collapsed_ir(&desc, &spec),
            ));
            out.push((
                format!("{name}/tiled_nested_{size}"),
                desc.clone(),
                tiled_nested_ir(&desc, &spec),
            ));
        }
        // a single-invocation spec: full problem in one tile
        let single = if name == "gemmini" {
            MatmulSpec::gemmini_paper(32).expect("single tile")
        } else {
            MatmulSpec::opengemm_paper(8).expect("single tile")
        };
        assert_eq!(single.invocations(), 1);
        out.push((
            format!("{name}/single_invocation"),
            desc.clone(),
            single_invocation_ir(&desc, &single),
        ));
        let layers: Vec<(MatmulSpec, MatmulLayout)> = (0..3)
            .map(|i| (single, MatmulLayout::at(i * 0x10_0000, &single)))
            .collect();
        out.push((
            format!("{name}/layer_sequence"),
            desc.clone(),
            layer_sequence_ir(&desc, &layers),
        ));
    }
    let gemmini = descriptor("gemmini");
    let ws_spec = MatmulSpec::gemmini_paper(128).expect("paper size");
    out.push((
        "gemmini/gemmini_ws_128".into(),
        gemmini.clone(),
        gemmini_ws_ir(&gemmini, &ws_spec),
    ));
    // every serve_bench stream draws its requests from these classes;
    // the runtime compiles exactly matmul_ir(descriptor, spec) per class
    let mut seen = Vec::new();
    for (mix, classes) in [
        ("mixed", mixed_serving_classes()),
        ("shape_heavy", shape_heavy_classes()),
        ("platform", mixed_platform_classes()),
    ] {
        for class in classes {
            let key = (class.accelerator.clone(), class.spec);
            if class.weight == 0 || seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let desc = descriptor(&class.accelerator);
            out.push((
                format!(
                    "stream/{mix}/{}_{}x{}x{}",
                    class.accelerator, class.spec.m, class.spec.n, class.spec.k
                ),
                desc.clone(),
                matmul_ir(&desc, &class.spec),
            ));
        }
    }
    out
}

/// Lint findings plus the counters the summary row shows.
fn lint(name: &str, stage: &str, m: &Module, findings: &mut usize) -> LintReport {
    let report = lint_module(m);
    for site in &report.sites {
        println!("FINDING {name} [{stage}] {site}");
        *findings += 1;
    }
    report
}

fn main() {
    let mut findings = 0usize;
    println!(
        "{:<42} {:>9} {:>8}  validation",
        "module", "writes", "elidable"
    );
    for (name, desc, module) in modules() {
        if let Err(e) = verify(&module) {
            println!("FINDING {name} [verify] {e}");
            findings += 1;
            continue;
        }
        if let Err(e) = verify_discipline(&module) {
            println!("FINDING {name} [discipline] {e}");
            findings += 1;
        }
        let report = lint(&name, "raw", &module, &mut findings);
        let mut validated = Vec::new();
        for level in LEVELS {
            let mut opt = module.clone();
            let mut pm = pipeline(level, desc.overlap_filter());
            pm.validate_each(pass_validator());
            match pm.run(&mut opt) {
                Ok(_) => validated.push(format!("{level:?}")),
                Err(e) => {
                    println!("FINDING {name} [{level:?}] {e}");
                    findings += 1;
                    continue;
                }
            }
            if level == OptLevel::All {
                // nothing provably dead or redundant may survive the
                // full pipeline: that would be a missed optimization
                lint(&name, "All-output", &opt, &mut findings);
            }
        }
        println!(
            "{:<42} {:>9} {:>8}  {}",
            name,
            report.static_writes,
            report.elidable_bound,
            validated.join("+")
        );
    }
    if findings > 0 {
        println!("\naccfg-lint: {findings} finding(s)");
        std::process::exit(1);
    }
    println!("\naccfg-lint: clean");
}
